//! The evaluation campaign layer: the seeded-bug table campaign that
//! regenerates the paper's Tables 2 and 3, and the parallel bug-hunting
//! engine ([`ParallelCampaign`]) that drives raw programs-per-second
//! throughput.
//!
//! For every seeded bug class the table campaign runs Gauntlet over the
//! class's Figure-5-style trigger program plus a configurable number of
//! random programs, using the technique appropriate to the platform
//! (translation validation for the open P4C pipeline, STF/PTF test replay
//! for the BMv2 and Tofino back ends).  Distinct findings are collected in
//! a [`BugDatabase`]; the report aggregates them into the same rows the
//! paper reports.
//!
//! Both campaigns shard work across `jobs` worker threads.  Every unit of
//! work derives its randomness from its own seed (never from a shared
//! stream) and results are committed in task order, so the output is
//! byte-identical regardless of thread count or schedule.

use crate::bugs::{BugDatabase, BugKind, BugReport, CompilerArea, Platform, Technique};
use crate::corpus::{Corpus, CorpusEntry};
use crate::inject::SeededBug;
use crate::pipeline::{Gauntlet, GauntletOptions};
use gauntlet_telemetry::{json, EventLog, Heartbeat, ProgressSink, Recorder, Stage};
use p4_gen::{GeneratorConfig, RandomProgramGenerator, WeightAdapter};
use p4_ir::{print_program, ConstructCensus, Program};
use p4_mutate::{hunt_mutation_seed, MetamorphicChecker, MetamorphicOptions, MutationCoverage};
use p4_symbolic::{CacheStats, CampaignCache, EpochCache, SessionStats, ValidationSession};
use p4c::coverage::PassCoverage;
use serde::{Deserialize, Serialize};
use smt::PortfolioOptions;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use targets::{Target, TargetRegistry};

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Random programs generated per seeded bug (in addition to the trigger
    /// program).
    pub random_programs_per_bug: usize,
    /// Seed for the random program generator.
    pub seed: u64,
    /// Maximum generated tests per program for black-box back ends.
    pub max_tests: usize,
    /// Also run every random program through the *correct* compiler and
    /// targets, to measure the false-alarm rate (it must be zero).
    pub check_false_alarms: bool,
    /// Worker threads to shard the bug classes across (1 = sequential).
    /// The report is identical for every value.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            random_programs_per_bug: 5,
            seed: 0xC0FFEE,
            max_tests: 8,
            check_false_alarms: true,
            jobs: 1,
        }
    }
}

/// Per-bug-class outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeededBugOutcome {
    pub bug: String,
    pub platform: Platform,
    pub area: CompilerArea,
    pub crash_class: bool,
    pub detected: bool,
    /// How many of the programs (trigger + random) exposed the bug.
    pub detecting_programs: usize,
    pub programs_run: usize,
}

/// The full campaign result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    pub outcomes: Vec<SeededBugOutcome>,
    /// Distinct findings per (platform, crash-like?) — the Table 2 analogue.
    pub by_platform: BTreeMap<String, usize>,
    /// Distinct findings per compiler area — the Table 3 analogue.
    pub by_area: BTreeMap<String, usize>,
    /// Distinct findings per differential attribution (target name or
    /// `"model"`); empty when no target/differential findings occurred.
    pub by_attribution: BTreeMap<String, usize>,
    /// Findings flagged while running the *correct* compiler (must be 0).
    pub false_alarms: usize,
    /// Total distinct bugs detected.
    pub total_detected: usize,
    /// Pass-rule coverage, when the producing hunt was coverage-guided
    /// (rendered by `render_table2` as a coverage block).
    pub coverage: Option<CoverageSummary>,
    /// Mutation statistics, when the producing hunt ran the metamorphic
    /// oracle (rendered by `render_table2` as a mutation block).
    pub mutation: Option<MutationSummary>,
}

impl CampaignReport {
    /// Detected bug count for a platform split into (crash, semantic).
    pub fn platform_counts(&self, platform: Platform) -> (usize, usize) {
        let crash = self
            .by_platform
            .get(&format!("{platform}/crash"))
            .copied()
            .unwrap_or(0);
        let semantic = self
            .by_platform
            .get(&format!("{platform}/semantic"))
            .copied()
            .unwrap_or(0);
        (crash, semantic)
    }

    pub fn area_count(&self, area: CompilerArea) -> usize {
        self.by_area.get(&area.to_string()).copied().unwrap_or(0)
    }
}

/// Everything one seeded bug class contributes to the campaign report.
struct ClassResult {
    outcome: SeededBugOutcome,
    reports: Vec<BugReport>,
    false_alarms: usize,
}

/// Runs Gauntlet over one bug class: the trigger program plus the
/// configured number of random programs, all derived from the class's own
/// seed (so the result is independent of which worker runs it).
fn run_bug_class(config: &CampaignConfig, bug_index: usize, bug: SeededBug) -> ClassResult {
    let gauntlet = Gauntlet::new(GauntletOptions {
        max_tests: config.max_tests,
        ..GauntletOptions::default()
    });
    let mut programs: Vec<Program> = vec![bug.trigger_program()];
    let generator_config = match bug.architecture() {
        "tna" => GeneratorConfig::tofino(),
        _ => GeneratorConfig::default(),
    };
    let mut generator = RandomProgramGenerator::new(
        generator_config,
        config.seed.wrapping_add(bug_index as u64 * 1009),
    );
    for _ in 0..config.random_programs_per_bug {
        programs.push(generator.generate());
    }

    let mut detecting_programs = 0usize;
    let mut false_alarms = 0usize;
    let mut reports: Vec<BugReport> = Vec::new();
    for program in &programs {
        let outcome = run_one(&gauntlet, bug, program);
        if !outcome.is_empty() {
            detecting_programs += 1;
        }
        reports.extend(outcome);

        if config.check_false_alarms {
            false_alarms += count_false_alarms(&gauntlet, bug, program);
        }
    }
    ClassResult {
        outcome: SeededBugOutcome {
            bug: bug.name(),
            platform: bug.platform(),
            area: bug.area(),
            crash_class: bug.is_crash_class(),
            detected: !reports.is_empty(),
            detecting_programs,
            programs_run: programs.len(),
        },
        reports,
        false_alarms,
    }
}

/// Runs the full campaign, sharding bug classes across `config.jobs`
/// worker threads.  Results are aggregated in class order, so the report is
/// identical for every thread count.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let catalogue = SeededBug::catalogue();
    let mut results: Vec<(usize, ClassResult)> = if config.jobs <= 1 {
        catalogue
            .into_iter()
            .enumerate()
            .map(|(index, bug)| (index, run_bug_class(config, index, bug)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<(usize, ClassResult)>();
        std::thread::scope(|scope| {
            for _ in 0..config.jobs.min(catalogue.len()).max(1) {
                let sender = sender.clone();
                let next = &next;
                let catalogue = &catalogue;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&bug) = catalogue.get(index) else {
                        break;
                    };
                    if sender
                        .send((index, run_bug_class(config, index, bug)))
                        .is_err()
                    {
                        break;
                    }
                });
            }
        });
        drop(sender);
        receiver.into_iter().collect()
    };
    results.sort_by_key(|(index, _)| *index);

    let mut database = BugDatabase::new();
    let mut outcomes = Vec::new();
    let mut false_alarms = 0usize;
    for (_, class) in results {
        for report in class.reports {
            database.record(report);
        }
        false_alarms += class.false_alarms;
        outcomes.push(class.outcome);
    }
    let mut report = summarise(&database);
    report.outcomes = outcomes;
    report.false_alarms = false_alarms;
    report
}

/// Aggregates a de-duplicated bug database into the count maps of a
/// [`CampaignReport`] (`outcomes` and `false_alarms` are left for the
/// caller to fill in, when applicable).
fn summarise(database: &BugDatabase) -> CampaignReport {
    let mut by_platform = BTreeMap::new();
    for ((platform, crash_like), count) in database.count_by_platform() {
        let key = format!(
            "{platform}/{}",
            if crash_like { "crash" } else { "semantic" }
        );
        by_platform.insert(key, count);
    }
    let mut by_area = BTreeMap::new();
    for (area, count) in database.count_by_area() {
        by_area.insert(area.to_string(), count);
    }
    CampaignReport {
        outcomes: Vec::new(),
        by_platform,
        by_area,
        by_attribution: database.count_by_attribution(),
        false_alarms: 0,
        total_detected: database.len(),
        coverage: None,
        mutation: None,
    }
}

/// Runs the detection technique appropriate to the seeded bug's platform:
/// the open-compiler pipeline for front/mid-end bugs, the registry-built
/// target for back-end bugs.
fn run_one(gauntlet: &Gauntlet, bug: SeededBug, program: &Program) -> Vec<BugReport> {
    bug.detect(gauntlet, program)
}

/// Runs the same program through the *correct* pipeline; any finding is a
/// false alarm (an interpreter/validator bug in our tooling, paper §5.2).
fn count_false_alarms(gauntlet: &Gauntlet, bug: SeededBug, program: &Program) -> usize {
    let mut reports = match bug.target_name() {
        None => {
            gauntlet
                .check_open_compiler(&p4c::Compiler::reference(), program)
                .reports
        }
        Some(name) => {
            let target = TargetRegistry::builtin()
                .build(name)
                .expect("builtin targets are registered");
            gauntlet.check_target(&*target, program).reports
        }
    };
    // Driver bugs are hunted metamorphically, so the false-alarm discipline
    // extends to the new oracle: the reference compiler must prove every
    // mutant equivalent (a finding here is a mutator or validator bug in
    // our own tooling).
    if matches!(bug, SeededBug::Driver(_)) {
        let mut checker = MetamorphicChecker::new(p4c::Compiler::reference());
        reports.extend(
            gauntlet
                .check_mutants(
                    &mut checker,
                    program,
                    &MetamorphicOptions::default(),
                    p4_mutate::CAMPAIGN_MUTATION_SEED,
                )
                .reports,
        );
    }
    reports
        .iter()
        .filter(|r| !matches!(r.kind, BugKind::InvalidTransformation))
        .count()
}

// ---------------------------------------------------------------------------
// The parallel bug-hunting engine.
// ---------------------------------------------------------------------------

/// Configuration of a [`ParallelCampaign`] hunt over a contiguous seed range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HuntConfig {
    /// Worker threads (`--jobs N`).  1 = sequential.  Output is identical
    /// for every value.
    pub jobs: usize,
    /// First seed of the range.
    pub seed_start: u64,
    /// Number of seeds (one generated program per seed).
    pub seed_count: usize,
    /// Program-generator configuration used for every seed.
    pub generator: GeneratorConfig,
    /// Stop early once this many bug reports have been committed.  Early
    /// stop is deterministic: results commit strictly in seed order, so the
    /// stopping point does not depend on the schedule (workers may *process*
    /// a few extra seeds past it, but never commit them).
    pub bug_quota: Option<usize>,
    /// Validate pass chains incrementally (see
    /// [`GauntletOptions::incremental`]).
    pub incremental: bool,
    /// Delta-debug every committed finding down to a minimal reproducer
    /// (paper §7: all 96 upstream reports were filed as reduced programs).
    /// Reduction runs on the worker that found the bug — sharded across the
    /// pool like the hunt itself — and is deterministic per seed, so
    /// reports stay byte-identical across `jobs` settings.  Only
    /// open-compiler findings are reduced; target-attributed differential
    /// findings are committed as-is.
    pub reduce_reports: bool,
    /// Back ends to run N-way differential testgen on, as
    /// `targets::TargetRegistry` spec strings (e.g. `"bmv2"`,
    /// `"ref-interp"`, or `"bmv2+Bmv2ExitIgnored"` to seed a defect).
    /// Empty (the default) hunts the open compiler only; with `n` specs
    /// every generated program additionally runs through
    /// [`Gauntlet::check_differential`] across all `n` targets, with
    /// majority-vote attribution.
    pub targets: Vec<String>,
    /// Coverage-guided hunting (the `--coverage` knob).  `None` hunts with
    /// static weights, exactly as before.
    pub coverage: Option<CoverageOptions>,
    /// Metamorphic mutation hunting (the `--mutate` knob).  With options
    /// set, every generated program additionally spawns a family of
    /// semantics-preserving mutants whose compiled forms are proved
    /// equivalent to the compiled seed ([`Gauntlet::check_mutants`]); with
    /// [`CoverageOptions::corpus`] also set, replayed corpus entries are
    /// mutated too.  Mutant derivation is a pure function of the seed and
    /// findings commit at the ordered-commit point, so reports stay
    /// byte-identical at any `--jobs`.
    pub mutation: Option<MetamorphicOptions>,
    /// Share one [`CampaignCache`] across the worker pool (the `--cache`
    /// knob), living for the whole campaign: semantics are interpreted and
    /// per-block equivalence queries decided once per campaign no matter
    /// which worker — or which epoch — gets there first.  Growth is bounded
    /// by a deterministic eviction sweep at each epoch barrier
    /// ([`CampaignCache::epoch_barrier`]).  Cached SAT verdicts carry
    /// canonical models, so the rendered report is byte-identical with the
    /// cache on or off, at any `--jobs`.  On by default — this is where the
    /// campaign validate-throughput comes from (see `BENCH_pr9.json`).
    pub epoch_cache: bool,
    /// Race each hard equivalence query across K diverse SAT configurations
    /// once its incremental solve exceeds a conflict budget (the
    /// `--portfolio` knob, see [`smt::PortfolioOptions`]).  Off by default:
    /// generated programs rarely produce miters hard enough to trigger the
    /// race.  Verdict-preserving, so reports are identical either way.
    pub portfolio: bool,
    /// Flight-recorder telemetry (the `--events`/heartbeat knobs).  `None`
    /// (the default) records nothing and pays nothing: every instrumentation
    /// hook in the stack is a single thread-local read.  With options set,
    /// each worker carries a [`gauntlet_telemetry::Recorder`] that is merged
    /// at the epoch barrier into [`HuntReport::telemetry`], wall-clock
    /// events stream to the JSONL log, and a progress heartbeat prints to
    /// stderr.  Strictly observation-only: reports and corpus bytes are
    /// byte-identical with telemetry on or off, at any `--jobs` (pinned by
    /// `tests/telemetry.rs`).
    pub telemetry: Option<TelemetryOptions>,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig {
            jobs: 1,
            seed_start: 0,
            seed_count: 100,
            generator: GeneratorConfig::tiny(),
            bug_quota: None,
            incremental: true,
            reduce_reports: false,
            targets: Vec::new(),
            coverage: None,
            mutation: None,
            epoch_cache: true,
            portfolio: false,
            telemetry: None,
        }
    }
}

impl HuntConfig {
    /// The configuration for one contiguous shard of this hunt's seed
    /// range: seeds `[seed_start + offset, seed_start + offset + count)`,
    /// everything else unchanged.  Because every seed derives its
    /// randomness from itself alone, a shard processes exactly the seeds
    /// the full-range hunt would — this is the fleet's work-splitting
    /// entry point.
    pub fn shard(&self, offset: u64, count: usize) -> HuntConfig {
        HuntConfig {
            seed_start: self.seed_start + offset,
            seed_count: count,
            ..self.clone()
        }
    }
}

/// Options for the flight recorder (see [`HuntConfig::telemetry`]).
#[derive(Clone, Serialize, Deserialize)]
pub struct TelemetryOptions {
    /// Path of the out-of-band JSONL event log (`--events PATH`).  Every
    /// line is one `gauntlet-events-v1` object with a wall-clock `ts_ms`;
    /// the file is explicitly excluded from the deterministic artifacts.
    /// `None` records spans and counters but streams no events.
    pub events: Option<String>,
    /// An already-open event sink, taking precedence over [`events`] when
    /// set.  Fleet workers hand the campaign an [`EventLog`] framed over
    /// their stdout protocol channel this way — the engine streams the same
    /// events whether they land in a file or a pipe.
    ///
    /// [`events`]: TelemetryOptions::events
    pub sink: Option<Arc<EventLog>>,
    /// Print the live progress heartbeat (seeds/sec, bugs found, cache hit
    /// rate, ETA) to stderr.
    pub progress: bool,
    /// Committed seeds between heartbeat lines.
    pub heartbeat_every: usize,
}

impl std::fmt::Debug for TelemetryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual because `EventLog` (a mutex over an arbitrary writer) has
        // no useful `Debug` form.
        f.debug_struct("TelemetryOptions")
            .field("events", &self.events)
            .field("sink", &self.sink.as_ref().map(|_| "EventLog"))
            .field("progress", &self.progress)
            .field("heartbeat_every", &self.heartbeat_every)
            .finish()
    }
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            events: None,
            sink: None,
            progress: true,
            heartbeat_every: 25,
        }
    }
}

/// Options for a coverage-guided hunt: the generate→compile→validate loop
/// is closed by accumulating pass-rule coverage (`p4c::coverage`) plus the
/// construct census of every generated program, re-deriving the generator
/// weights from it once per epoch, and persisting coverage-advancing
/// programs to a corpus.
///
/// Determinism: per-seed coverage is merged strictly in seed order at the
/// ordered-commit point, epochs only start after the previous epoch has
/// fully committed, and the [`WeightAdapter`] is a pure function — so
/// coverage, corpus, and reports are byte-identical at any `--jobs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageOptions {
    /// Seeds per adaptation epoch: weights are re-derived from accumulated
    /// coverage every `adapt_every` committed seeds.
    pub adapt_every: usize,
    /// Steer generator weights toward unfired rules.  Disable to account
    /// coverage without adapting — the unguided baseline the evaluation
    /// compares against.
    pub adapt: bool,
    /// Corpus file path: loaded and replayed before generation starts (a
    /// missing file is an empty corpus), appended with programs that newly
    /// cover a rule, and saved back after the hunt.
    pub corpus: Option<String>,
    /// Feed uncovered cross-pass interaction pairs to the weight adapter
    /// alongside unfired rules (see `p4c::coverage::pass_boundary`).  Pair
    /// *tracking* is always on — the report's `coverage.pairs` block and
    /// corpus pair admission do not depend on this flag — only the steering
    /// signal is gated, so a rule-only baseline stays comparable.
    pub pairs: bool,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        CoverageOptions {
            adapt_every: 25,
            adapt: true,
            corpus: None,
            pairs: true,
        }
    }
}

/// The coverage block of a hunt report (deterministic across `--jobs`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageSummary {
    /// Sorted fired rule keys (`"pass/rule"`).
    pub fired: Vec<String>,
    /// Size of the rule universe (`p4c::coverage::total_rules`).
    pub rules_total: usize,
    /// Distinct `context/kind` construct pairs seen across all programs.
    pub constructs_seen: usize,
    /// Corpus size after the hunt (loaded + newly admitted).
    pub corpus_size: usize,
    /// Entries admitted by this hunt.
    pub corpus_added: usize,
    /// Coverage over time: `(programs committed, distinct rules fired)` at
    /// each epoch boundary.
    pub rules_over_time: Vec<(usize, usize)>,
    /// Sorted observed cross-pass interaction pair keys (`"a->b"`).
    pub pairs: Vec<String>,
    /// Size of the pair universe (`p4c::coverage::total_pairs`).
    pub pairs_total: usize,
}

impl CoverageSummary {
    /// Number of distinct rules fired.
    pub fn rules_fired(&self) -> usize {
        self.fired.len()
    }

    /// Number of distinct cross-pass pairs observed.
    pub fn pairs_fired(&self) -> usize {
        self.pairs.len()
    }

    /// Renders the coverage block (used by both `HuntReport::render` and
    /// `render_table2`).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "coverage: {}/{} pass-rewrite rules fired, {} construct pairs seen",
            self.rules_fired(),
            self.rules_total,
            self.constructs_seen
        );
        let _ = writeln!(
            out,
            "interactions: {}/{} cross-pass rule pairs observed",
            self.pairs_fired(),
            self.pairs_total
        );
        let _ = writeln!(
            out,
            "corpus: {} program(s) ({} added this hunt)",
            self.corpus_size, self.corpus_added
        );
        if !self.rules_over_time.is_empty() {
            let trajectory: Vec<String> = self
                .rules_over_time
                .iter()
                .map(|(programs, rules)| format!("{programs}:{rules}"))
                .collect();
            let _ = writeln!(
                out,
                "coverage over time (programs:rules): {}",
                trajectory.join(" ")
            );
        }
        out
    }
}

/// The mutation block of a hunt report (deterministic across `--jobs`),
/// mirroring [`CoverageSummary`] for the metamorphic dimension: how many
/// mutants were checked, how many convicted the compiler, and which mutator
/// rules of `p4_mutate::ALL_MUTATORS` were exercised.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MutationSummary {
    /// Mutants generated, mutated, and proved (or disproved) equivalent.
    pub mutants_checked: usize,
    /// Committed metamorphic divergence reports.
    pub divergent: usize,
    /// Sorted applied mutator-rule keys (`"mutator/rule"`).
    pub fired: Vec<String>,
    /// Size of the mutator-rule universe (`p4_mutate::total_rules`).
    pub rules_total: usize,
}

impl MutationSummary {
    /// Number of distinct mutator rules applied.
    pub fn rules_fired(&self) -> usize {
        self.fired.len()
    }

    /// Renders the mutation block (used by both `HuntReport::render` and
    /// `render_table2`).
    pub fn render(&self) -> String {
        format!(
            "mutation: {} mutant(s) checked, {} divergent, {}/{} mutator rules applied\n",
            self.mutants_checked,
            self.divergent,
            self.rules_fired(),
            self.rules_total
        )
    }
}

/// The diversity block of a merged fleet report: how the swarm's worker
/// slices each contributed to the de-duplicated bug pool.  Only a fleet
/// coordinator running with worker diversity produces one; a single-process
/// hunt (and a uniform fleet) reports `None`.
///
/// Deterministic: slices are a pure function of the fleet spec (shard index
/// modulo worker count), and the per-slice counts are derived from the
/// merged triage store, so resumed and uninterrupted runs agree.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiversitySummary {
    /// Number of diversity slices (the spec's worker count).
    pub slices: usize,
    /// Distinct de-duplicated bugs whose provenance includes each slice,
    /// keyed by slice label (`"slice-N"`).  Slices that found nothing are
    /// present with a zero count, so yield comparisons read directly.
    pub distinct_bugs: BTreeMap<String, usize>,
}

impl DiversitySummary {
    /// Renders the diversity block (appended to `HuntReport::render` by the
    /// fleet coordinator's merged report).
    pub fn render(&self) -> String {
        let yields: Vec<String> = self
            .distinct_bugs
            .iter()
            .map(|(slice, count)| format!("{slice}:{count}"))
            .collect();
        format!(
            "diversity: {} slice(s); distinct bugs per slice: {}\n",
            self.slices,
            if yields.is_empty() {
                "-".to_string()
            } else {
                yields.join(" ")
            }
        )
    }
}

/// The epoch-cache block of a hunt report: pool-wide memo counters summed
/// over every epoch, plus the per-worker session tallies summed over every
/// worker (the two reconcile at the lookup level — see
/// `tests/perf_cache.rs`).
///
/// Like [`HuntReport::elapsed`] and [`HuntReport::per_worker`] this
/// describes the particular run, not the deterministic result: hit counts
/// depend on how many seeds workers *processed* (which may overshoot a
/// quota stop by a schedule-dependent amount), so the summary is
/// deliberately excluded from [`HuntReport::render`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Epochs that ran with a shared cache (0 when `epoch_cache` is off).
    pub epochs: usize,
    /// Exact pool-wide cache counters, summed across epochs.
    pub stats: CacheStats,
    /// Per-session counters summed over every worker session (translation
    /// validation and metamorphic checkers alike).
    pub sessions: SessionStats,
    /// Queries that escalated to a portfolio race (0 unless
    /// [`HuntConfig::portfolio`] is set and a hard miter appeared).
    pub portfolio_races: u64,
}

/// The findings one seed contributed (clean seeds are not recorded).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedOutcome {
    pub seed: u64,
    pub reports: Vec<BugReport>,
}

/// The result of a [`ParallelCampaign`] run.
///
/// `outcomes`, `programs_checked`, and `total_bugs` are deterministic
/// functions of the configuration; `elapsed`, `per_worker`, and `cache`
/// describe the particular run.
#[derive(Debug, Clone)]
pub struct HuntReport {
    /// Seeds whose program exposed at least one bug, in ascending seed
    /// order.
    pub outcomes: Vec<SeedOutcome>,
    /// Programs committed (equals the seed count unless a quota stopped the
    /// hunt early).
    pub programs_checked: usize,
    /// Total committed bug reports.
    pub total_bugs: usize,
    /// Wall-clock duration of the hunt.
    pub elapsed: Duration,
    /// Programs processed per worker (schedule-dependent; sums to at least
    /// `programs_checked`).
    pub per_worker: Vec<usize>,
    /// Committed findings that could not be reduced despite
    /// [`HuntConfig::reduce_reports`] being set (always 0 when reduction is
    /// off).  Nonzero means an oracle failed to reproduce a finding — a
    /// signature-format drift between the detection pipeline and
    /// `p4-reduce`, worth investigating.
    pub reduction_failures: usize,
    /// The coverage block (present iff [`HuntConfig::coverage`] was set).
    pub coverage: Option<CoverageSummary>,
    /// The mutation block (present iff [`HuntConfig::mutation`] was set).
    pub mutation: Option<MutationSummary>,
    /// The swarm-diversity block.  A single-process hunt never produces
    /// one; the fleet coordinator fills it in on the merged report when the
    /// spec enables worker diversity.
    pub diversity: Option<DiversitySummary>,
    /// Epoch-cache and portfolio counters (present iff
    /// [`HuntConfig::epoch_cache`] or [`HuntConfig::portfolio`] was set).
    /// Run-descriptive like `elapsed`: not part of [`HuntReport::render`].
    pub cache: Option<CacheSummary>,
    /// The aggregated flight recorder (present iff
    /// [`HuntConfig::telemetry`] was set): stage spans, per-pass and
    /// per-rule counters, and the solver-query latency histogram, merged
    /// across every worker at the epoch barriers.  Its *counters* are
    /// schedule-independent; its *timings* are wall-clock, so like
    /// `elapsed` the whole block is excluded from [`HuntReport::render`]
    /// and from the deterministic half of the JSON report.
    pub telemetry: Option<Recorder>,
}

impl HuntReport {
    /// End-to-end throughput in programs per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.programs_checked as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Renders the deterministic portion of the report: one block per
    /// bug-exposing seed.  Byte-identical across `jobs` settings.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "programs checked: {}, seeds with bugs: {}, bug reports: {}",
            self.programs_checked,
            self.outcomes.len(),
            self.total_bugs
        );
        if self.reduction_failures > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} committed finding(s) could not be reduced (oracle mismatch)",
                self.reduction_failures
            );
        }
        for outcome in &self.outcomes {
            let _ = writeln!(out, "seed {}:", outcome.seed);
            for report in &outcome.reports {
                let _ = writeln!(
                    out,
                    "  [{:?}/{}/{}] pass {}: {}{}",
                    report.kind,
                    report.platform,
                    report.area,
                    report.pass.as_deref().unwrap_or("-"),
                    report.message.lines().next().unwrap_or(""),
                    match report.attributed_to.as_deref() {
                        Some(participant) => format!(" [attributed: {participant}]"),
                        None => String::new(),
                    }
                );
                if let Some(stats) = &report.reduction {
                    let _ = writeln!(
                        out,
                        "    minimized: {} -> {} statements ({} oracle calls, {} steps)",
                        stats.initial_statements,
                        stats.final_statements,
                        stats.oracle_calls,
                        stats.accepted_steps
                    );
                }
            }
        }
        if let Some(coverage) = &self.coverage {
            out.push_str(&coverage.render());
        }
        if let Some(mutation) = &self.mutation {
            out.push_str(&mutation.render());
        }
        if let Some(diversity) = &self.diversity {
            out.push_str(&diversity.render());
        }
        out
    }

    /// Aggregates the hunt's committed findings into the count maps of a
    /// [`CampaignReport`] (platform × kind, compiler area, differential
    /// attribution), de-duplicated the same way the table campaign
    /// de-duplicates — so `render_table2`/`render_table3` work on hunt
    /// results too.
    pub fn campaign_summary(&self) -> CampaignReport {
        let mut database = BugDatabase::new();
        for outcome in &self.outcomes {
            for report in &outcome.reports {
                database.record(report.clone());
            }
        }
        let mut report = summarise(&database);
        report.coverage = self.coverage.clone();
        report.mutation = self.mutation.clone();
        report
    }
}

/// Per-worker session counters merged into one pool-wide tally (each worker
/// adds its totals once, when it finishes an epoch).
#[derive(Default, Clone, Copy)]
struct SessionTally {
    sessions: SessionStats,
    portfolio_races: u64,
}

fn add_session_stats(into: &mut SessionStats, stats: SessionStats) {
    into.semantics_hits += stats.semantics_hits;
    into.semantics_misses += stats.semantics_misses;
    into.trivial_checks += stats.trivial_checks;
    into.solver_checks += stats.solver_checks;
    into.cached_checks += stats.cached_checks;
    into.verdict_hits += stats.verdict_hits;
    into.verdict_misses += stats.verdict_misses;
}

/// What one seed contributes to the commit queue.
struct SeedResult {
    reports: Vec<BugReport>,
    /// Coverage observation (present iff the hunt is coverage-guided).
    observed: Option<SeedObservation>,
    /// Mutation observation (present iff the hunt mutates):
    /// `(rules applied, mutants checked)`.
    mutated: Option<(MutationCoverage, usize)>,
}

/// The coverage a seed's program produced, captured on the worker and
/// merged into the shared accumulator at the ordered-commit point.  The
/// program rides along so corpus admission can print it — only the rare
/// coverage-advancing seeds pay for rendering.
struct SeedObservation {
    coverage: PassCoverage,
    census: ConstructCensus,
    program: Program,
}

/// Coverage state guarded by the commit lock: merged strictly in seed
/// order, so corpus admission ("did this program newly cover a rule?") is
/// schedule-independent.
struct GuidedCommit {
    accum: PassCoverage,
    census: ConstructCensus,
    corpus: Corpus,
    corpus_added: usize,
    /// `(programs committed, distinct rules fired)` at each epoch boundary.
    rules_over_time: Vec<(usize, usize)>,
}

impl GuidedCommit {
    /// Merges one committed seed's observation; programs that newly cover a
    /// rule *or* a cross-pass rule pair are admitted to the corpus (with
    /// their *full* fired-rule and fired-pair sets, so the corpus
    /// fingerprints equal the unions over its entries).
    fn commit(&mut self, seed: u64, observation: SeedObservation) {
        let newly_covers = observation
            .coverage
            .fired_keys()
            .iter()
            .any(|key| !self.accum.fired(key))
            || observation
                .coverage
                .fired_pair_keys()
                .iter()
                .any(|key| !self.accum.pair_fired(key));
        if newly_covers {
            self.corpus.entries.push(CorpusEntry {
                seed,
                rules: observation.coverage.fired_keys(),
                pairs: observation.coverage.fired_pair_keys(),
                source: print_program(&observation.program),
            });
            self.corpus_added += 1;
        }
        self.accum.merge(&observation.coverage);
        self.census.merge(&observation.census);
    }
}

/// Mutation state guarded by the commit lock, merged strictly in seed
/// order like [`GuidedCommit`].
#[derive(Default)]
struct MutationAccum {
    coverage: MutationCoverage,
    mutants: usize,
    divergent: usize,
}

/// The flight-recorder runtime of one hunt: the event log, the progress
/// sink, and the pool-wide recorder aggregate.  Everything here is strictly
/// out-of-band — it observes the hunt but never feeds back into it, which
/// is what keeps reports and corpus bytes identical with telemetry on/off.
struct HuntTelemetry {
    events: Option<Arc<EventLog>>,
    progress: ProgressSink,
    heartbeat_every: usize,
    started: Instant,
    aggregate: Mutex<Recorder>,
}

impl HuntTelemetry {
    fn new(options: &TelemetryOptions) -> HuntTelemetry {
        let progress = ProgressSink::new(options.progress);
        // A pre-opened sink (fleet workers framing events over their stdout
        // protocol channel) takes precedence over a file path.
        let events = options.sink.clone().or_else(|| {
            options.events.as_ref().and_then(|path| {
                EventLog::create(path)
                    .map(Arc::new)
                    .map_err(|error| {
                        // Telemetry must never fail a campaign: report the
                        // unusable path and run without an event log.
                        progress.note(&format!(
                            "[gauntlet] cannot open event log `{path}`: {error}"
                        ));
                    })
                    .ok()
            })
        });
        HuntTelemetry {
            events,
            progress,
            heartbeat_every: options.heartbeat_every.max(1),
            started: Instant::now(),
            aggregate: Mutex::new(Recorder::new()),
        }
    }

    fn emit(&self, event: &str, fields: &[(&str, String)]) {
        if let Some(log) = &self.events {
            log.emit(event, fields);
        }
    }

    /// Fold one worker's recorder into the pool-wide aggregate (called at
    /// the epoch barrier; merge is commutative so the aggregate counters
    /// are schedule-independent).
    fn absorb(&self, recorder: &Recorder) {
        self.aggregate
            .lock()
            .expect("telemetry lock")
            .merge(recorder);
    }
}

/// Commit state shared by the hunt workers: results enter `pending` in any
/// order and are committed strictly in task order, which makes early stop
/// (and therefore the whole report) schedule-independent.
struct HuntCommit {
    pending: BTreeMap<usize, SeedResult>,
    next: usize,
    committed: Vec<SeedOutcome>,
    programs_checked: usize,
    bugs: usize,
    /// Committed findings lacking `minimized` although reduction was on.
    reduction_failures: usize,
    stopped: bool,
    /// Coverage accumulation (present iff the hunt is coverage-guided).
    guided: Option<GuidedCommit>,
    /// Mutation accumulation (present iff the hunt mutates).
    mutation: Option<MutationAccum>,
    /// Committed-seed count at which the next heartbeat prints (telemetry
    /// bookkeeping only — never read by the commit logic itself).
    next_heartbeat: usize,
}

impl HuntCommit {
    /// Drains the contiguous prefix of `pending`, committing results in
    /// strict seed order (reports, coverage merge, corpus admission, quota
    /// early stop).  `telemetry` and `epoch_cache` are observation-only:
    /// they emit seed/bug events and the heartbeat but never influence what
    /// commits.
    fn drain(
        &mut self,
        config: &HuntConfig,
        telemetry: Option<&HuntTelemetry>,
        epoch_cache: Option<&Arc<EpochCache>>,
    ) {
        while !self.stopped {
            let commit_index = self.next;
            let Some(result) = self.pending.remove(&commit_index) else {
                break;
            };
            let committed_seed = config.seed_start + self.next as u64;
            self.next += 1;
            self.programs_checked += 1;
            if let Some(observation) = result.observed {
                if let Some(guided) = &mut self.guided {
                    guided.commit(committed_seed, observation);
                }
            }
            if let Some((coverage, mutants)) = result.mutated {
                if let Some(mutation) = &mut self.mutation {
                    mutation.coverage.merge(&coverage);
                    mutation.mutants += mutants;
                }
            }
            let reports = result.reports;
            if let Some(telemetry) = telemetry {
                telemetry.emit(
                    "seed",
                    &[
                        ("seed", committed_seed.to_string()),
                        ("bugs", reports.len().to_string()),
                    ],
                );
                for report in &reports {
                    telemetry.emit(
                        "bug",
                        &[
                            ("seed", committed_seed.to_string()),
                            ("kind", json::string(&format!("{:?}", report.kind))),
                            ("platform", json::string(&report.platform.to_string())),
                            (
                                "pass",
                                match &report.pass {
                                    Some(pass) => json::string(pass),
                                    None => "null".to_string(),
                                },
                            ),
                            (
                                "attributed_to",
                                match &report.attributed_to {
                                    Some(target) => json::string(target),
                                    None => "null".to_string(),
                                },
                            ),
                        ],
                    );
                }
            }
            if !reports.is_empty() {
                if let Some(mutation) = &mut self.mutation {
                    mutation.divergent += reports
                        .iter()
                        .filter(|r| matches!(r.kind, BugKind::Metamorphic))
                        .count();
                }
                self.bugs += reports.len();
                if config.reduce_reports {
                    // Counted over *committed* reports only, so the tally is
                    // schedule-independent.  Differential findings are
                    // exempt (they are never reduced).
                    self.reduction_failures += reports
                        .iter()
                        .filter(|r| r.platform == Platform::P4c && r.minimized.is_none())
                        .count();
                }
                self.committed.push(SeedOutcome {
                    seed: committed_seed,
                    reports,
                });
            }
            if let Some(quota) = config.bug_quota {
                if self.bugs >= quota {
                    self.stopped = true;
                }
            }
            if let Some(telemetry) = telemetry {
                if self.programs_checked >= self.next_heartbeat {
                    self.next_heartbeat = self.programs_checked + telemetry.heartbeat_every;
                    let elapsed = telemetry.started.elapsed().as_secs_f64();
                    let rate = if elapsed > 0.0 {
                        self.programs_checked as f64 / elapsed
                    } else {
                        0.0
                    };
                    let remaining = config.seed_count.saturating_sub(self.programs_checked);
                    let cache_hit_rate = epoch_cache.and_then(|cache| {
                        let stats = cache.stats();
                        let lookups = stats.semantics_lookups() + stats.verdict_lookups();
                        (lookups > 0).then(|| {
                            (stats.semantics_hits + stats.verdict_hits) as f64 / lookups as f64
                        })
                    });
                    telemetry.progress.heartbeat(&Heartbeat {
                        done: self.programs_checked,
                        total: config.seed_count,
                        bugs: self.bugs,
                        seeds_per_sec: rate,
                        cache_hit_rate,
                        eta_secs: (rate > 0.0).then(|| remaining as f64 / rate),
                    });
                }
            }
        }
    }
}

/// A work-sharing campaign over a seed range: each seed deterministically
/// generates one program (its RNG is seeded by the seed alone, never by a
/// shared stream) which is compiled and checked with the full open-compiler
/// pipeline — crash detection, rejection detection, and per-pass
/// translation validation.
///
/// Scheduling is self-balancing: workers claim the next unclaimed seed from
/// a shared counter, so a slow program never stalls the other workers
/// (work-stealing by work-sharing — the queue is the integer range).
pub struct ParallelCampaign {
    config: HuntConfig,
}

impl ParallelCampaign {
    pub fn new(config: HuntConfig) -> ParallelCampaign {
        ParallelCampaign { config }
    }

    pub fn config(&self) -> &HuntConfig {
        &self.config
    }

    /// Runs the hunt against compilers built by `factory` (each worker
    /// builds its own instance, so the compiler need not be `Sync`).
    ///
    /// With [`HuntConfig::coverage`] set the seed range is processed in
    /// *epochs*: the corpus (if any) is replayed first, then each epoch's
    /// generator weights are derived from the coverage committed by every
    /// earlier epoch (plus the replay), and the epoch barrier guarantees
    /// that derivation never races a straggling worker — which keeps
    /// coverage, corpus, and reports byte-identical at any `--jobs`.
    pub fn run<F>(&self, factory: F) -> HuntReport
    where
        F: Fn() -> p4c::Compiler + Send + Sync,
    {
        self.run_with_cache(factory, None)
    }

    /// Like [`Self::run`], but validating through `external` — a
    /// caller-owned [`CampaignCache`] that outlives this run.  Fleet workers
    /// use this to keep one warm cache across every shard they are leased
    /// (workers are long-lived; rebuilding the memos per shard threw the
    /// warm state away).  The cache is consulted only when
    /// [`HuntConfig::epoch_cache`] is on, and the report's [`CacheSummary`]
    /// accounts this run's activity as a snapshot delta, so stats stay
    /// per-run even though the cache is not.
    pub fn run_with_cache<F>(&self, factory: F, external: Option<Arc<CampaignCache>>) -> HuntReport
    where
        F: Fn() -> p4c::Compiler + Send + Sync,
    {
        let config = &self.config;
        // Validate target specs before spawning workers, so a typo fails
        // fast with the list of known targets instead of poisoning a
        // worker thread.
        {
            let registry = TargetRegistry::builtin();
            for spec in &config.targets {
                if let Err(error) = registry.build_spec(spec) {
                    panic!("invalid HuntConfig target spec: {error}");
                }
            }
        }
        let jobs = config.jobs.max(1);
        let start = std::time::Instant::now();

        // The flight recorder, if requested.  Strictly observation-only
        // from here on: nothing below reads telemetry state back.
        let telemetry = config.telemetry.as_ref().map(HuntTelemetry::new);
        if let Some(telemetry) = &telemetry {
            telemetry.emit(
                "campaign_start",
                &[
                    ("jobs", jobs.to_string()),
                    ("seed_start", config.seed_start.to_string()),
                    ("seed_count", config.seed_count.to_string()),
                    ("targets", config.targets.len().to_string()),
                    ("coverage", config.coverage.is_some().to_string()),
                    ("mutation", config.mutation.is_some().to_string()),
                    ("epoch_cache", config.epoch_cache.to_string()),
                    ("portfolio", config.portfolio.to_string()),
                ],
            );
        }
        // A recorder for the main thread captures the sequential corpus
        // replay (compiles, validations, and mutant checks all run here
        // before workers spawn).  Any enclosing recorder is restored at the
        // end of the hunt.
        let enclosing_recorder = telemetry
            .as_ref()
            .and_then(|_| gauntlet_telemetry::install(Recorder::new()));

        // Pre-worker mutation state: the accumulator, plus the outcomes of
        // mutating replayed corpus entries (sequential, in corpus order —
        // part of the determinism contract like the replay itself).
        let mut mutation_accum = config.mutation.as_ref().map(|_| MutationAccum::default());
        let mut replay_outcomes: Vec<SeedOutcome> = Vec::new();
        let mut replay_reduction_failures = 0usize;

        let guided = config.coverage.as_ref().map(|options| {
            let corpus = match &options.corpus {
                Some(path) => Corpus::load_or_empty(path)
                    .unwrap_or_else(|error| panic!("cannot load corpus `{path}`: {error}")),
                None => Corpus::default(),
            };
            let mut guided = GuidedCommit {
                accum: PassCoverage::new(),
                census: ConstructCensus::default(),
                corpus,
                corpus_added: 0,
                rules_over_time: Vec::new(),
            };
            // Replay the corpus first (sequentially — it is small and the
            // replay order is part of the determinism contract): every kept
            // program re-fires its rules, warming the accumulator so the
            // first epoch's weights already steer toward the genuinely
            // uncovered rules.
            let compiler = factory();
            let gauntlet = Gauntlet::new(GauntletOptions {
                incremental: config.incremental,
                ..GauntletOptions::default()
            });
            let mut replay_checker = config
                .mutation
                .as_ref()
                .map(|_| MetamorphicChecker::new(factory()));
            for entry in &guided.corpus.entries {
                let program = p4_parser::parse_program(&entry.source)
                    .expect("corpus entries are parse-checked on load");
                let (compile_result, coverage) =
                    p4c::coverage::with_sink(|| compiler.compile(&program));
                guided.accum.merge(&coverage);
                guided.census.merge(&ConstructCensus::of(&program));
                // Replayed entries are mutated too: the corpus multiplies
                // into mutant families for free on every campaign start.
                // Entries whose seed the hunt itself will process are
                // skipped — the worker mutation-checks that seed's program
                // with the same stream seed, and committing both would
                // duplicate reports (and drain any bug quota twice).
                let hunted_by_worker = entry.seed >= config.seed_start
                    && entry.seed < config.seed_start + config.seed_count as u64;
                if hunted_by_worker {
                    continue;
                }
                if let (Some(options), Some(checker)) = (&config.mutation, &mut replay_checker) {
                    let seed_final = compile_result.ok().map(|r| r.program);
                    let result = match &seed_final {
                        Some(seed_final) => gauntlet.check_mutants_against(
                            checker,
                            seed_final,
                            &program,
                            options,
                            hunt_mutation_seed(entry.seed),
                        ),
                        None => gauntlet.check_mutants(
                            checker,
                            &program,
                            options,
                            hunt_mutation_seed(entry.seed),
                        ),
                    };
                    let accum = mutation_accum.as_mut().expect("mutation accum exists");
                    accum.coverage.merge(&result.coverage);
                    accum.mutants += result.mutants_checked;
                    accum.divergent += result
                        .reports
                        .iter()
                        .filter(|r| matches!(r.kind, BugKind::Metamorphic))
                        .count();
                    let mut reports = result.reports;
                    if config.reduce_reports {
                        // Replayed findings honour the same
                        // every-committed-report-is-reduced contract as
                        // worker findings (all of them are mutation-origin,
                        // so they reduce through the metamorphic oracle).
                        for report in &mut reports {
                            if report.platform != Platform::P4c {
                                continue;
                            }
                            let mut oracle = p4_reduce::MetamorphicOracle::new(
                                factory(),
                                options.clone(),
                                hunt_mutation_seed(entry.seed),
                            );
                            gauntlet.reduce_report(&mut oracle, &program, report);
                        }
                        replay_reduction_failures += reports
                            .iter()
                            .filter(|r| r.platform == Platform::P4c && r.minimized.is_none())
                            .count();
                    }
                    if !reports.is_empty() {
                        replay_outcomes.push(SeedOutcome {
                            seed: entry.seed,
                            reports,
                        });
                    }
                }
            }
            guided
        });

        let replay_bugs: usize = replay_outcomes.iter().map(|o| o.reports.len()).sum();
        let commit = Mutex::new(HuntCommit {
            pending: BTreeMap::new(),
            next: 0,
            committed: replay_outcomes,
            programs_checked: 0,
            bugs: replay_bugs,
            reduction_failures: replay_reduction_failures,
            stopped: matches!(config.bug_quota, Some(quota) if replay_bugs >= quota),
            guided,
            mutation: mutation_accum,
            next_heartbeat: telemetry
                .as_ref()
                .map(|t| t.heartbeat_every)
                .unwrap_or(usize::MAX),
        });
        let processed_counts = Mutex::new(vec![0usize; jobs]);
        let tallies = Mutex::new(SessionTally::default());
        let mut cache_epochs = 0usize;

        // One campaign-lifetime cache (PR 9; previously rebuilt per epoch):
        // the semantics/verdict memos and the hash-consing term manager
        // survive epoch boundaries, bounded by the barrier sweep below.  A
        // caller-provided cache outlives even this run (fleet workers reuse
        // it across shards), so all per-run stats are snapshot deltas.
        let campaign_cache = config
            .epoch_cache
            .then(|| external.unwrap_or_else(|| Arc::new(CampaignCache::new())));
        let cache_base = campaign_cache
            .as_ref()
            .map(|cache| cache.stats())
            .unwrap_or_default();
        let mut cache_epoch_base = cache_base;

        let adapter = WeightAdapter::default();
        let epoch_len = match &config.coverage {
            Some(options) if options.adapt => options.adapt_every.max(1),
            _ => config.seed_count.max(1),
        };
        let mut epoch_start = 0usize;
        while epoch_start < config.seed_count {
            // Derive this epoch's weights from everything committed so far.
            let generator_config = {
                let state = commit.lock().expect("hunt lock");
                if state.stopped {
                    break;
                }
                match (&config.coverage, &state.guided) {
                    (Some(options), Some(guided)) if options.adapt => adapter.adapt_with_pairs(
                        &config.generator,
                        &guided.accum.unfired_keys(),
                        &if options.pairs {
                            guided.accum.unfired_pair_keys()
                        } else {
                            Vec::new()
                        },
                        &guided.census,
                        epoch_start / epoch_len,
                    ),
                    _ => config.generator.clone(),
                }
            };
            let epoch_end = (epoch_start + epoch_len).min(config.seed_count);
            self.run_epoch(
                epoch_start,
                epoch_end,
                &generator_config,
                &factory,
                &commit,
                &processed_counts,
                jobs,
                campaign_cache.as_ref(),
                &tallies,
                telemetry.as_ref(),
            );
            if campaign_cache.is_some() {
                cache_epochs += 1;
            }
            let mut state = commit.lock().expect("hunt lock");
            let programs_checked = state.programs_checked;
            let bugs_so_far = state.bugs;
            if let Some(guided) = &mut state.guided {
                guided
                    .rules_over_time
                    .push((programs_checked, guided.accum.distinct_rules()));
            }
            drop(state);
            if let Some(telemetry) = &telemetry {
                let epoch_index = epoch_start / epoch_len;
                telemetry.emit(
                    "epoch",
                    &[
                        ("epoch", epoch_index.to_string()),
                        ("programs_checked", programs_checked.to_string()),
                        ("bugs", bugs_so_far.to_string()),
                    ],
                );
                if let Some(cache) = &campaign_cache {
                    // This epoch's activity: the cache is campaign-lived,
                    // so the per-epoch view is a snapshot delta.
                    let stats = cache.stats().since(&cache_epoch_base);
                    telemetry.emit(
                        "cache",
                        &[
                            ("epoch", epoch_index.to_string()),
                            ("semantics_hits", stats.semantics_hits.to_string()),
                            ("semantics_misses", stats.semantics_misses.to_string()),
                            ("verdict_hits", stats.verdict_hits.to_string()),
                            ("verdict_misses", stats.verdict_misses.to_string()),
                            ("evicted_entries", cache.evicted_entries().to_string()),
                            ("manager_resets", cache.manager_resets().to_string()),
                        ],
                    );
                }
            }
            if let Some(cache) = &campaign_cache {
                cache_epoch_base = cache.stats();
                // The epoch barrier: evict least-recently-hit generations
                // (and reset the term manager when over the interpretation
                // budget) while no session is live — the worker scope above
                // joined, and next epoch's sessions are created fresh.
                cache.epoch_barrier();
            }
            epoch_start = epoch_end;
        }

        let state = commit.into_inner().expect("hunt lock");
        let mutation = state.mutation.as_ref().map(|accum| MutationSummary {
            mutants_checked: accum.mutants,
            divergent: accum.divergent,
            fired: accum.coverage.fired_keys(),
            rules_total: p4_mutate::total_rules(),
        });
        let coverage = state.guided.map(|guided| {
            if let Some(path) = config.coverage.as_ref().and_then(|o| o.corpus.as_ref()) {
                guided
                    .corpus
                    .save(path)
                    .unwrap_or_else(|error| panic!("cannot save corpus `{path}`: {error}"));
            }
            CoverageSummary {
                fired: guided.accum.fired_keys(),
                rules_total: p4c::coverage::total_rules(),
                constructs_seen: guided.census.distinct(),
                corpus_size: guided.corpus.len(),
                corpus_added: guided.corpus_added,
                rules_over_time: guided.rules_over_time,
                pairs: guided.accum.fired_pair_keys(),
                pairs_total: p4c::coverage::total_pairs(),
            }
        });
        let cache = (config.epoch_cache || config.portfolio).then(|| {
            let tally = tallies.into_inner().expect("tally lock");
            CacheSummary {
                epochs: cache_epochs,
                // This run's activity only: a worker-lifetime cache carries
                // counters from earlier shard runs, which belong to those
                // runs' reports.
                stats: campaign_cache
                    .as_ref()
                    .map(|cache| cache.stats().since(&cache_base))
                    .unwrap_or_default(),
                sessions: tally.sessions,
                portfolio_races: tally.portfolio_races,
            }
        });
        let telemetry_summary = telemetry.map(|telemetry| {
            // Fold in the main thread's recorder (the corpus replay), then
            // restore whatever recorder enclosed this hunt.
            if let Some(recorder) = gauntlet_telemetry::take() {
                telemetry.absorb(&recorder);
            }
            if let Some(previous) = enclosing_recorder {
                gauntlet_telemetry::install(previous);
            }
            telemetry.emit(
                "campaign_end",
                &[
                    ("programs_checked", state.programs_checked.to_string()),
                    ("bugs", state.bugs.to_string()),
                    ("elapsed_ms", start.elapsed().as_millis().to_string()),
                ],
            );
            telemetry.aggregate.into_inner().expect("telemetry lock")
        });
        HuntReport {
            outcomes: state.committed,
            programs_checked: state.programs_checked,
            total_bugs: state.bugs,
            elapsed: start.elapsed(),
            per_worker: processed_counts.into_inner().expect("count lock"),
            reduction_failures: state.reduction_failures,
            coverage,
            mutation,
            diversity: None,
            cache,
            telemetry: telemetry_summary,
        }
    }

    /// Runs the worker pool over seed indices `[epoch_start, epoch_end)`
    /// with a fixed generator configuration, committing into the shared
    /// ordered-commit state.  Returns once every claimed seed has been
    /// processed (the epoch barrier).
    #[allow(clippy::too_many_arguments)]
    fn run_epoch<F>(
        &self,
        epoch_start: usize,
        epoch_end: usize,
        generator_config: &GeneratorConfig,
        factory: &F,
        commit: &Mutex<HuntCommit>,
        processed_counts: &Mutex<Vec<usize>>,
        jobs: usize,
        epoch_cache: Option<&Arc<EpochCache>>,
        tallies: &Mutex<SessionTally>,
        telemetry: Option<&HuntTelemetry>,
    ) where
        F: Fn() -> p4c::Compiler + Send + Sync,
    {
        let config = &self.config;
        let next_task = AtomicUsize::new(epoch_start);
        std::thread::scope(|scope| {
            for worker in 0..jobs {
                let next_task = &next_task;
                scope.spawn(move || {
                    // Per-worker flight recorder, merged into the pool-wide
                    // aggregate when the worker finishes — i.e. at the epoch
                    // barrier, since the scope join *is* the barrier.
                    if telemetry.is_some() {
                        gauntlet_telemetry::install(Recorder::new());
                    }
                    let gauntlet = Gauntlet::new(GauntletOptions {
                        incremental: config.incremental,
                        ..GauntletOptions::default()
                    });
                    let compiler = factory();
                    // Each worker builds its own target instances (targets
                    // are stateless between programs, but not `Sync`).
                    let registry = TargetRegistry::builtin();
                    let diff_targets: Vec<Box<dyn Target>> = config
                        .targets
                        .iter()
                        .map(|spec| registry.build_spec(spec).expect("specs validated above"))
                        .collect();
                    // Translation-validation sessions are created fresh per
                    // program but attached to the pool's shared epoch cache
                    // when caching is on: the memoisation layers (semantics,
                    // verdicts, terms) live in the cache and survive the
                    // session, while the solver stays small — a long-lived
                    // solver accumulates variables and learned clauses
                    // across unrelated programs and measurably *slows down*
                    // (see the cold run of the `trajectory` bench).
                    let mut worker_stats = SessionStats::default();
                    let mut worker_races = 0u64;
                    // One metamorphic checker per worker: its validation
                    // session (semantics cache + incremental solver) is
                    // reused across every seed the worker claims — and
                    // attached to the same epoch cache as the session
                    // above, so the two dimensions share interpretations.
                    // Verdicts are cache-independent, so sharing preserves
                    // the byte-identical-across-jobs contract.
                    let mut mutation_checker =
                        config.mutation.as_ref().map(|_| match epoch_cache {
                            Some(cache) => {
                                MetamorphicChecker::with_cache(factory(), Arc::clone(cache))
                            }
                            None => MetamorphicChecker::new(factory()),
                        });
                    if config.portfolio {
                        if let Some(checker) = &mut mutation_checker {
                            checker.set_portfolio(PortfolioOptions::default());
                        }
                    }
                    let mut processed = 0usize;
                    loop {
                        if commit.lock().expect("hunt lock").stopped {
                            break;
                        }
                        let index = next_task.fetch_add(1, Ordering::Relaxed);
                        if index >= epoch_end {
                            break;
                        }
                        let seed = config.seed_start + index as u64;
                        let mut generator =
                            RandomProgramGenerator::new(generator_config.clone(), seed);
                        let program = gauntlet_telemetry::time(Stage::Gen, || generator.generate());
                        // Fresh session per program (see the policy note
                        // above); `None` preserves the historical
                        // session-per-program path inside the pipeline when
                        // neither knob is set.
                        let mut session: Option<ValidationSession> = match epoch_cache {
                            Some(cache) => Some(ValidationSession::with_cache(Arc::clone(cache))),
                            None if config.portfolio => Some(ValidationSession::new()),
                            None => None,
                        };
                        if config.portfolio {
                            if let Some(session) = &mut session {
                                session.set_portfolio(PortfolioOptions::default());
                            }
                        }
                        // The coverage sink wraps the open-compiler check
                        // only: pass-rule coverage means the front/mid-end
                        // pipeline, and a replayed corpus entry re-fires
                        // exactly the same set through `Compiler::compile`.
                        let (open_outcome, seed_coverage) = if config.coverage.is_some() {
                            let (outcome, coverage) = p4c::coverage::with_sink(|| {
                                gauntlet.check_open_compiler_in(&mut session, &compiler, &program)
                            });
                            (outcome, Some(coverage))
                        } else {
                            (
                                gauntlet.check_open_compiler_in(&mut session, &compiler, &program),
                                None,
                            )
                        };
                        if let Some(session) = &session {
                            add_session_stats(&mut worker_stats, session.stats());
                            worker_races += session.portfolio_races();
                        }
                        let mut reports = open_outcome.reports;
                        if !diff_targets.is_empty() {
                            reports.extend(
                                gauntlet.check_differential(&diff_targets, &program).reports,
                            );
                        }
                        let mutated = match (&config.mutation, &mut mutation_checker) {
                            (Some(options), Some(checker)) => {
                                // Reuse the open-compiler check's compile of
                                // the seed (identically configured compiler,
                                // deterministic pipeline ⇒ identical form);
                                // a rejected/crashed seed falls back to the
                                // checker's own compile, which then skips.
                                let result = match &open_outcome.compiled {
                                    Some(seed_final) => gauntlet.check_mutants_against(
                                        checker,
                                        seed_final,
                                        &program,
                                        options,
                                        hunt_mutation_seed(seed),
                                    ),
                                    None => gauntlet.check_mutants(
                                        checker,
                                        &program,
                                        options,
                                        hunt_mutation_seed(seed),
                                    ),
                                };
                                reports.extend(result.reports);
                                Some((result.coverage, result.mutants_checked))
                            }
                            _ => None,
                        };
                        if config.reduce_reports
                            && !reports.is_empty()
                            // Once the quota stop is set nothing further can
                            // ever commit, so skip the (expensive) reduction
                            // of findings that are guaranteed to be dropped.
                            && !commit.lock().expect("hunt lock").stopped
                        {
                            // Reduce right here on the finding worker: the
                            // result is a pure function of (program, report,
                            // budget), so sharding does not disturb the
                            // byte-identical-across-jobs contract.  Only
                            // open-compiler findings reduce through the
                            // compiler oracles; differential findings are
                            // committed as-is.
                            for report in &mut reports {
                                if report.platform != Platform::P4c {
                                    continue;
                                }
                                // Mutation-origin findings (divergences,
                                // and crashes/rejections that fire only on
                                // a mutant — the seed program compiles
                                // clean, so the open-compiler oracles can
                                // never reproduce them) reduce through
                                // their own oracle: same mutation stream as
                                // the detection above, so a candidate is
                                // accepted only when the identical finding
                                // reproduces.
                                let mut oracle: Box<dyn p4_reduce::Oracle> =
                                    if matches!(report.technique, Technique::MetamorphicMutation) {
                                        let options = config
                                            .mutation
                                            .clone()
                                            .expect("metamorphic reports imply mutation config");
                                        Box::new(p4_reduce::MetamorphicOracle::new(
                                            factory(),
                                            options,
                                            hunt_mutation_seed(seed),
                                        ))
                                    } else {
                                        Gauntlet::open_compiler_oracle(report, factory())
                                    };
                                gauntlet.reduce_report(&mut *oracle, &program, report);
                            }
                        }
                        processed += 1;

                        let observed = seed_coverage.map(|coverage| SeedObservation {
                            coverage,
                            census: ConstructCensus::of(&program),
                            program,
                        });
                        let mut state = commit.lock().expect("hunt lock");
                        state.pending.insert(
                            index,
                            SeedResult {
                                reports,
                                observed,
                                mutated,
                            },
                        );
                        state.drain(config, telemetry, epoch_cache);
                    }
                    processed_counts.lock().expect("count lock")[worker] += processed;
                    let mut tally = tallies.lock().expect("tally lock");
                    add_session_stats(&mut tally.sessions, worker_stats);
                    tally.portfolio_races += worker_races;
                    if let Some(checker) = &mutation_checker {
                        add_session_stats(&mut tally.sessions, checker.session_stats());
                        tally.portfolio_races += checker.portfolio_races();
                    }
                    drop(tally);
                    if let Some(telemetry) = telemetry {
                        if let Some(recorder) = gauntlet_telemetry::take() {
                            telemetry.absorb(&recorder);
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small campaign: every bug class must be detected by its trigger
    /// program and the correct pipeline must produce no false alarms.  This
    /// is the core claim of the reproduction (Tables 2 and 3 have the right
    /// shape), so it runs as a regular test despite being a little slower.
    #[test]
    fn trigger_only_campaign_detects_every_class_with_no_false_alarms() {
        let config = CampaignConfig {
            random_programs_per_bug: 0,
            check_false_alarms: true,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&config);
        assert_eq!(report.false_alarms, 0, "correct pipeline flagged a bug");
        for outcome in &report.outcomes {
            assert!(
                outcome.detected,
                "seeded bug {} was not detected",
                outcome.bug
            );
        }
        // Table 2 shape: bugs on every platform, both kinds on P4C.
        let (p4c_crash, p4c_semantic) = report.platform_counts(Platform::P4c);
        assert!(p4c_crash >= 2);
        assert!(p4c_semantic >= 5);
        assert!(report.platform_counts(Platform::Bmv2).1 >= 2);
        assert!(report.platform_counts(Platform::Tofino).1 >= 2);
        // Table 3 shape: front end ≥ mid end, and back end bugs exist.
        assert!(
            report.area_count(CompilerArea::FrontEnd) >= report.area_count(CompilerArea::MidEnd)
        );
        assert!(report.area_count(CompilerArea::BackEnd) >= 3);
    }

    /// The table campaign must produce the identical report when sharded
    /// across threads.
    #[test]
    fn table_campaign_report_is_independent_of_jobs() {
        let base = CampaignConfig {
            random_programs_per_bug: 0,
            check_false_alarms: false,
            ..CampaignConfig::default()
        };
        let sequential = run_campaign(&CampaignConfig {
            jobs: 1,
            ..base.clone()
        });
        let parallel = run_campaign(&CampaignConfig { jobs: 4, ..base });
        assert_eq!(
            format!("{:?}", sequential.outcomes),
            format!("{:?}", parallel.outcomes)
        );
        assert_eq!(sequential.by_platform, parallel.by_platform);
        assert_eq!(sequential.by_area, parallel.by_area);
        assert_eq!(sequential.total_detected, parallel.total_detected);
    }

    /// Core determinism claim of the parallel engine: the same seed range
    /// produces byte-identical bug reports at `--jobs 1` and `--jobs 4`.
    #[test]
    fn hunt_reports_are_byte_identical_across_jobs() {
        // Hunt a seeded-buggy compiler so the reports are non-empty.
        let factory = || {
            let bug = SeededBug::catalogue()
                .into_iter()
                .find(|b| b.platform() == Platform::P4c && !b.is_crash_class())
                .expect("catalogue has a P4C semantic bug");
            bug.build_compiler()
        };
        let base = HuntConfig {
            seed_start: 0,
            seed_count: 40,
            ..HuntConfig::default()
        };
        let sequential = ParallelCampaign::new(HuntConfig {
            jobs: 1,
            ..base.clone()
        })
        .run(factory);
        let parallel = ParallelCampaign::new(HuntConfig { jobs: 4, ..base }).run(factory);
        assert_eq!(sequential.render(), parallel.render());
        assert_eq!(sequential.programs_checked, 40);
        assert!(
            sequential.total_bugs > 0,
            "a buggy compiler hunted over 40 programs should be caught at least once"
        );
    }

    /// Deterministic early stop: the quota cuts the commit sequence at the
    /// same seed regardless of thread count.
    #[test]
    fn hunt_quota_early_stop_is_deterministic() {
        let factory = || {
            let bug = SeededBug::catalogue()
                .into_iter()
                .find(|b| b.platform() == Platform::P4c && !b.is_crash_class())
                .expect("catalogue has a P4C semantic bug");
            bug.build_compiler()
        };
        let base = HuntConfig {
            seed_start: 0,
            seed_count: 60,
            bug_quota: Some(2),
            ..HuntConfig::default()
        };
        let sequential = ParallelCampaign::new(HuntConfig {
            jobs: 1,
            ..base.clone()
        })
        .run(factory);
        let parallel = ParallelCampaign::new(HuntConfig { jobs: 3, ..base }).run(factory);
        assert_eq!(sequential.render(), parallel.render());
        assert!(sequential.total_bugs >= 2);
        assert!(sequential.programs_checked <= 60);
    }

    /// The hunt must stay silent on the reference compiler (no false
    /// alarms), mirroring the paper's §5.2 discipline.
    #[test]
    fn hunt_on_the_reference_compiler_finds_nothing() {
        let config = HuntConfig {
            jobs: 2,
            seed_start: 500,
            seed_count: 12,
            ..HuntConfig::default()
        };
        let report = ParallelCampaign::new(config).run(p4c::Compiler::reference);
        let real: Vec<_> = report
            .outcomes
            .iter()
            .flat_map(|o| &o.reports)
            .filter(|r| !matches!(r.kind, BugKind::InvalidTransformation))
            .collect();
        assert!(
            real.is_empty(),
            "false alarms on the reference compiler: {real:#?}"
        );
        assert_eq!(report.programs_checked, 12);
    }
}
