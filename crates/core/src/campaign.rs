//! The evaluation campaign: the code that regenerates the paper's Tables 2
//! and 3.
//!
//! For every seeded bug class the campaign runs Gauntlet over the class's
//! Figure-5-style trigger program plus a configurable number of random
//! programs, using the technique appropriate to the platform (translation
//! validation for the open P4C pipeline, STF/PTF test replay for the BMv2
//! and Tofino back ends).  Distinct findings are collected in a
//! [`BugDatabase`]; the report aggregates them into the same rows the paper
//! reports.

use crate::bugs::{BugDatabase, BugKind, BugReport, CompilerArea, Platform};
use crate::inject::SeededBug;
use crate::pipeline::{Gauntlet, GauntletOptions};
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_ir::Program;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Random programs generated per seeded bug (in addition to the trigger
    /// program).
    pub random_programs_per_bug: usize,
    /// Seed for the random program generator.
    pub seed: u64,
    /// Maximum generated tests per program for black-box back ends.
    pub max_tests: usize,
    /// Also run every random program through the *correct* compiler and
    /// targets, to measure the false-alarm rate (it must be zero).
    pub check_false_alarms: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            random_programs_per_bug: 5,
            seed: 0xC0FFEE,
            max_tests: 8,
            check_false_alarms: true,
        }
    }
}

/// Per-bug-class outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeededBugOutcome {
    pub bug: String,
    pub platform: Platform,
    pub area: CompilerArea,
    pub crash_class: bool,
    pub detected: bool,
    /// How many of the programs (trigger + random) exposed the bug.
    pub detecting_programs: usize,
    pub programs_run: usize,
}

/// The full campaign result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    pub outcomes: Vec<SeededBugOutcome>,
    /// Distinct findings per (platform, crash-like?) — the Table 2 analogue.
    pub by_platform: BTreeMap<String, usize>,
    /// Distinct findings per compiler area — the Table 3 analogue.
    pub by_area: BTreeMap<String, usize>,
    /// Findings flagged while running the *correct* compiler (must be 0).
    pub false_alarms: usize,
    /// Total distinct bugs detected.
    pub total_detected: usize,
}

impl CampaignReport {
    /// Detected bug count for a platform split into (crash, semantic).
    pub fn platform_counts(&self, platform: Platform) -> (usize, usize) {
        let crash = self.by_platform.get(&format!("{platform}/crash")).copied().unwrap_or(0);
        let semantic = self.by_platform.get(&format!("{platform}/semantic")).copied().unwrap_or(0);
        (crash, semantic)
    }

    pub fn area_count(&self, area: CompilerArea) -> usize {
        self.by_area.get(&area.to_string()).copied().unwrap_or(0)
    }
}

/// Runs the full campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let gauntlet = Gauntlet::new(GauntletOptions { max_tests: config.max_tests });
    let mut database = BugDatabase::new();
    let mut outcomes = Vec::new();
    let mut false_alarms = 0usize;

    for (bug_index, bug) in SeededBug::catalogue().into_iter().enumerate() {
        let mut programs: Vec<Program> = vec![bug.trigger_program()];
        let generator_config = match bug.architecture() {
            "tna" => GeneratorConfig::tofino(),
            _ => GeneratorConfig::default(),
        };
        let mut generator = RandomProgramGenerator::new(
            generator_config,
            config.seed.wrapping_add(bug_index as u64 * 1009),
        );
        for _ in 0..config.random_programs_per_bug {
            programs.push(generator.generate());
        }

        let mut detecting_programs = 0usize;
        let mut class_reports: Vec<BugReport> = Vec::new();
        for program in &programs {
            let outcome = run_one(&gauntlet, bug, program);
            if !outcome.is_empty() {
                detecting_programs += 1;
            }
            class_reports.extend(outcome);

            if config.check_false_alarms {
                false_alarms += count_false_alarms(&gauntlet, bug, program);
            }
        }
        let detected = !class_reports.is_empty();
        for report in class_reports {
            database.record(report);
        }
        outcomes.push(SeededBugOutcome {
            bug: bug.name(),
            platform: bug.platform(),
            area: bug.area(),
            crash_class: bug.is_crash_class(),
            detected,
            detecting_programs,
            programs_run: programs.len(),
        });
    }

    let mut by_platform = BTreeMap::new();
    for ((platform, crash_like), count) in database.count_by_platform() {
        let key = format!("{platform}/{}", if crash_like { "crash" } else { "semantic" });
        by_platform.insert(key, count);
    }
    let mut by_area = BTreeMap::new();
    for (area, count) in database.count_by_area() {
        by_area.insert(area.to_string(), count);
    }
    CampaignReport {
        outcomes,
        by_platform,
        by_area,
        false_alarms,
        total_detected: database.len(),
    }
}

/// Runs the detection technique appropriate to the seeded bug's platform.
fn run_one(gauntlet: &Gauntlet, bug: SeededBug, program: &Program) -> Vec<BugReport> {
    match bug.platform() {
        Platform::P4c => {
            let compiler = bug.build_compiler();
            gauntlet.check_open_compiler(&compiler, program).reports
        }
        Platform::Bmv2 => {
            let compiler = bug.build_compiler();
            gauntlet.check_bmv2(&compiler, program, bug.backend_bug()).reports
        }
        Platform::Tofino => {
            let backend = match bug.backend_bug() {
                Some(backend_bug) => targets::TofinoBackend::with_bug(backend_bug),
                None => targets::TofinoBackend::new(),
            };
            gauntlet.check_tofino(&backend, program).reports
        }
    }
}

/// Runs the same program through the *correct* pipeline; any finding is a
/// false alarm (an interpreter/validator bug in our tooling, paper §5.2).
fn count_false_alarms(gauntlet: &Gauntlet, bug: SeededBug, program: &Program) -> usize {
    let reports = match bug.platform() {
        Platform::P4c => {
            gauntlet.check_open_compiler(&p4c::Compiler::reference(), program).reports
        }
        Platform::Bmv2 => gauntlet.check_bmv2(&p4c::Compiler::reference(), program, None).reports,
        Platform::Tofino => gauntlet.check_tofino(&targets::TofinoBackend::new(), program).reports,
    };
    reports
        .iter()
        .filter(|r| !matches!(r.kind, BugKind::InvalidTransformation))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small campaign: every bug class must be detected by its trigger
    /// program and the correct pipeline must produce no false alarms.  This
    /// is the core claim of the reproduction (Tables 2 and 3 have the right
    /// shape), so it runs as a regular test despite being a little slower.
    #[test]
    fn trigger_only_campaign_detects_every_class_with_no_false_alarms() {
        let config = CampaignConfig {
            random_programs_per_bug: 0,
            check_false_alarms: true,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&config);
        assert_eq!(report.false_alarms, 0, "correct pipeline flagged a bug");
        for outcome in &report.outcomes {
            assert!(outcome.detected, "seeded bug {} was not detected", outcome.bug);
        }
        // Table 2 shape: bugs on every platform, both kinds on P4C.
        let (p4c_crash, p4c_semantic) = report.platform_counts(Platform::P4c);
        assert!(p4c_crash >= 2);
        assert!(p4c_semantic >= 5);
        assert!(report.platform_counts(Platform::Bmv2).1 >= 2);
        assert!(report.platform_counts(Platform::Tofino).1 >= 2);
        // Table 3 shape: front end ≥ mid end, and back end bugs exist.
        assert!(report.area_count(CompilerArea::FrontEnd) >= report.area_count(CompilerArea::MidEnd));
        assert!(report.area_count(CompilerArea::BackEnd) >= 3);
    }
}
