//! Bug report types and de-duplication.
//!
//! Gauntlet classifies findings the way the paper does (§2.1): *crash bugs*
//! (abnormal termination of a pass, including incorrect rejections of valid
//! programs), *semantic bugs* (the compiled program's behaviour differs from
//! the input program's), plus the auxiliary *invalid transformation*
//! category (§7.2) for emitted intermediate programs that no longer parse.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The kind of bug a finding represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// The compiler crashed (assertion violation / panic).
    Crash,
    /// The compiler rejected a valid program with an error message.
    Rejection,
    /// The compiled program behaves differently from the input program.
    Semantic,
    /// An intermediate program emitted by the compiler no longer re-parses.
    InvalidTransformation,
    /// The compiled forms of a program and one of its semantics-preserving
    /// mutants diverge (`p4-mutate`'s EMI-style oracle, paper §8).  A
    /// miscompilation like [`BugKind::Semantic`], but convicted without
    /// ever comparing against the input program — which is what lets it see
    /// defects per-pass translation validation cannot.
    Metamorphic,
}

impl BugKind {
    /// The paper's two headline categories fold rejections of valid programs
    /// into the crash count (they are detected the same way: no oracle
    /// needed beyond "the input was valid").
    pub fn is_crash_like(self) -> bool {
        matches!(self, BugKind::Crash | BugKind::Rejection)
    }

    /// Inverse of the `Debug` form `gauntlet-report-v1` serializes.
    pub fn from_name(name: &str) -> Option<BugKind> {
        [
            BugKind::Crash,
            BugKind::Rejection,
            BugKind::Semantic,
            BugKind::InvalidTransformation,
            BugKind::Metamorphic,
        ]
        .into_iter()
        .find(|kind| format!("{kind:?}") == name)
    }
}

/// Which compiler/back end platform a bug was found in (Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Platform {
    P4c,
    Bmv2,
    Tofino,
    /// The reference-interpreter back end (`targets::RefInterpTarget`).
    RefInterp,
    /// The test-generation model itself: in N-way differential testing,
    /// when every target agrees and the model is the odd one out, the
    /// defect lives in the shared front/mid end or in our own oracle.
    Model,
}

impl Platform {
    /// All platforms, in Table 2 column order.
    pub fn all() -> [Platform; 5] {
        [
            Platform::P4c,
            Platform::Bmv2,
            Platform::Tofino,
            Platform::RefInterp,
            Platform::Model,
        ]
    }

    /// Resolves a target's platform label (see
    /// `targets::Target::platform_label`, which must return the `Debug`
    /// form of the matching variant).
    pub fn for_label(label: &str) -> Option<Platform> {
        Platform::all()
            .into_iter()
            .find(|platform| format!("{platform:?}") == label)
    }

    /// Inverse of the `Display` form `gauntlet-report-v1` serializes
    /// (`"P4C"`, `"BMv2"`, ...).
    pub fn from_display(name: &str) -> Option<Platform> {
        Platform::all()
            .into_iter()
            .find(|platform| platform.to_string() == name)
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::P4c => write!(f, "P4C"),
            Platform::Bmv2 => write!(f, "BMv2"),
            Platform::Tofino => write!(f, "Tofino"),
            Platform::RefInterp => write!(f, "RefIntp"),
            Platform::Model => write!(f, "Model"),
        }
    }
}

/// Where in the compiler the bug lives (Table 3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompilerArea {
    FrontEnd,
    MidEnd,
    BackEnd,
}

impl CompilerArea {
    /// Inverse of the `Display` form `gauntlet-report-v1` serializes
    /// (`"Front End"`, ...).
    pub fn from_display(name: &str) -> Option<CompilerArea> {
        [
            CompilerArea::FrontEnd,
            CompilerArea::MidEnd,
            CompilerArea::BackEnd,
        ]
        .into_iter()
        .find(|area| area.to_string() == name)
    }
}

impl std::fmt::Display for CompilerArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompilerArea::FrontEnd => write!(f, "Front End"),
            CompilerArea::MidEnd => write!(f, "Mid End"),
            CompilerArea::BackEnd => write!(f, "Back End"),
        }
    }
}

/// Which of Gauntlet's techniques produced the finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    RandomGeneration,
    TranslationValidation,
    SymbolicExecution,
    /// Semantics-preserving mutation with end-to-end equivalence of the
    /// compiled seed/mutant pair (`p4-mutate`).
    MetamorphicMutation,
}

impl Technique {
    /// Inverse of the `Debug` form `gauntlet-report-v1` serializes.
    pub fn from_name(name: &str) -> Option<Technique> {
        [
            Technique::RandomGeneration,
            Technique::TranslationValidation,
            Technique::SymbolicExecution,
            Technique::MetamorphicMutation,
        ]
        .into_iter()
        .find(|technique| format!("{technique:?}") == name)
    }
}

/// One finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugReport {
    pub kind: BugKind,
    pub platform: Platform,
    pub area: CompilerArea,
    pub technique: Technique,
    /// The pass (or back-end stage) the bug is attributed to, when known.
    pub pass: Option<String>,
    /// Human-readable description / crash message / counterexample summary.
    pub message: String,
    /// Which participant of an N-way differential run this finding is
    /// attributed to by majority vote: a registry target name
    /// (`"bmv2"`, ...) or `"model"` when every target out-votes the
    /// test-generation oracle.  Single-target checks record the target that
    /// observed the finding.  `None` for open-compiler findings.
    pub attributed_to: Option<String>,
    /// The delta-debugged minimal reproducer (printed P4 source), when the
    /// campaign ran with reduction enabled.  The minimized program
    /// typechecks and reproduces the same [`BugReport::dedup_key`] through
    /// the oracle it was reduced under — the paper's reporting workflow
    /// (§7) filed exactly such reduced programs upstream.
    pub minimized: Option<String>,
    /// Statistics of the reduction run that produced `minimized`
    /// (wall-clock excluded, so reports stay schedule-independent).
    pub reduction: Option<p4_reduce::ReductionStats>,
}

impl BugReport {
    /// A finding with no attached reproducer reduction.
    pub fn new(
        kind: BugKind,
        platform: Platform,
        area: CompilerArea,
        technique: Technique,
        pass: Option<String>,
        message: String,
    ) -> BugReport {
        BugReport {
            kind,
            platform,
            area,
            technique,
            pass,
            message,
            attributed_to: None,
            minimized: None,
            reduction: None,
        }
    }

    /// Sets the differential-attribution tag (builder style).
    pub fn attributed_to(mut self, participant: impl Into<String>) -> BugReport {
        self.attributed_to = Some(participant.into());
        self
    }

    /// The key used to consider two findings "the same bug": same kind, same
    /// platform, same pass, and the same leading line of the message — the
    /// same rule the authors used with P4C's distinct assertion messages
    /// (§7.3).
    pub fn dedup_key(&self) -> String {
        let first_line = self.message.lines().next().unwrap_or("");
        format!(
            "{:?}|{:?}|{}|{}",
            self.kind,
            self.platform,
            self.pass.as_deref().unwrap_or("-"),
            first_line
        )
    }
}

/// A de-duplicating collection of findings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BugDatabase {
    bugs: BTreeMap<String, BugReport>,
    /// How many raw findings mapped onto each distinct bug.
    duplicates: BTreeMap<String, usize>,
}

impl BugDatabase {
    pub fn new() -> BugDatabase {
        BugDatabase::default()
    }

    /// Records a finding; returns true if it is a new distinct bug.
    pub fn record(&mut self, report: BugReport) -> bool {
        let key = report.dedup_key();
        let new = !self.bugs.contains_key(&key);
        *self.duplicates.entry(key.clone()).or_insert(0) += 1;
        self.bugs.entry(key).or_insert(report);
        new
    }

    pub fn len(&self) -> usize {
        self.bugs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bugs.is_empty()
    }

    pub fn reports(&self) -> impl Iterator<Item = &BugReport> {
        self.bugs.values()
    }

    /// Count of distinct bugs by (platform, crash-like vs semantic).
    pub fn count_by_platform(&self) -> BTreeMap<(Platform, bool), usize> {
        let mut counts = BTreeMap::new();
        for report in self.bugs.values() {
            *counts
                .entry((report.platform, report.kind.is_crash_like()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Count of distinct bugs by differential attribution (target name or
    /// `"model"`); findings without an attribution are not counted.
    pub fn count_by_attribution(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for report in self.bugs.values() {
            if let Some(participant) = &report.attributed_to {
                *counts.entry(participant.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Count of distinct bugs by compiler area.
    pub fn count_by_area(&self) -> BTreeMap<CompilerArea, usize> {
        let mut counts = BTreeMap::new();
        for report in self.bugs.values() {
            *counts.entry(report.area).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kind: BugKind, pass: &str, message: &str) -> BugReport {
        BugReport::new(
            kind,
            Platform::P4c,
            CompilerArea::FrontEnd,
            Technique::TranslationValidation,
            Some(pass.into()),
            message.into(),
        )
    }

    #[test]
    fn duplicate_findings_collapse() {
        let mut db = BugDatabase::new();
        assert!(db.record(report(
            BugKind::Crash,
            "SimplifyDefUse",
            "assertion failed: x"
        )));
        assert!(!db.record(report(
            BugKind::Crash,
            "SimplifyDefUse",
            "assertion failed: x"
        )));
        assert!(db.record(report(BugKind::Crash, "Predication", "assertion failed: x")));
        assert!(db.record(report(
            BugKind::Semantic,
            "SimplifyDefUse",
            "assertion failed: x"
        )));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn platform_and_area_counts() {
        let mut db = BugDatabase::new();
        db.record(report(BugKind::Crash, "A", "m1"));
        db.record(report(BugKind::Semantic, "B", "m2"));
        let by_platform = db.count_by_platform();
        assert_eq!(by_platform.get(&(Platform::P4c, true)), Some(&1));
        assert_eq!(by_platform.get(&(Platform::P4c, false)), Some(&1));
        assert_eq!(db.count_by_area().get(&CompilerArea::FrontEnd), Some(&2));
    }

    #[test]
    fn rejections_count_as_crash_like() {
        assert!(BugKind::Rejection.is_crash_like());
        assert!(!BugKind::Semantic.is_crash_like());
    }

    #[test]
    fn enum_parsers_invert_their_serialized_forms() {
        for kind in [
            BugKind::Crash,
            BugKind::Rejection,
            BugKind::Semantic,
            BugKind::InvalidTransformation,
            BugKind::Metamorphic,
        ] {
            assert_eq!(BugKind::from_name(&format!("{kind:?}")), Some(kind));
        }
        for platform in Platform::all() {
            assert_eq!(
                Platform::from_display(&platform.to_string()),
                Some(platform)
            );
        }
        for area in [
            CompilerArea::FrontEnd,
            CompilerArea::MidEnd,
            CompilerArea::BackEnd,
        ] {
            assert_eq!(CompilerArea::from_display(&area.to_string()), Some(area));
        }
        for technique in [
            Technique::RandomGeneration,
            Technique::TranslationValidation,
            Technique::SymbolicExecution,
            Technique::MetamorphicMutation,
        ] {
            assert_eq!(
                Technique::from_name(&format!("{technique:?}")),
                Some(technique)
            );
        }
        assert_eq!(BugKind::from_name("NotAKind"), None);
        assert_eq!(Platform::from_display("p4c"), None);
    }
}
