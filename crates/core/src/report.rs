//! Rendering campaign results in the shape of the paper's tables.

use crate::bugs::{CompilerArea, Platform};
use crate::campaign::CampaignReport;
use std::fmt::Write;

/// Renders the Table 2 analogue: detected bugs per platform, split into
/// crash and semantic bugs.
pub fn render_table2(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 (reproduction): distinct seeded bugs detected");
    let _ = writeln!(out, "{:<12} {:>8} {:>10} {:>8}", "Bug Type", "P4C", "BMv2", "Tofino");
    let platforms = [Platform::P4c, Platform::Bmv2, Platform::Tofino];
    for (label, crash_like) in [("Crash", true), ("Semantic", false)] {
        let mut row = format!("{label:<12}");
        for platform in platforms {
            let (crash, semantic) = report.platform_counts(platform);
            let value = if crash_like { crash } else { semantic };
            let _ = write!(row, " {value:>8}");
        }
        let _ = writeln!(out, "{row}");
    }
    let total: usize = report.total_detected;
    let _ = writeln!(out, "{:<12} {total:>8}", "Total");
    out
}

/// Renders the Table 3 analogue: detected bugs by compiler area.
pub fn render_table3(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 (reproduction): distinct seeded bugs by compiler area");
    let _ = writeln!(out, "{:<12} {:>8}", "Location", "Bugs");
    for area in [CompilerArea::FrontEnd, CompilerArea::MidEnd, CompilerArea::BackEnd] {
        let _ = writeln!(out, "{:<12} {:>8}", area.to_string(), report.area_count(area));
    }
    let _ = writeln!(out, "{:<12} {:>8}", "Total", report.total_detected);
    out
}

/// Renders the per-class detection table (which class, which technique
/// family, detected or not).
pub fn render_detection_matrix(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>10} {:>10} {:>10}",
        "Seeded bug class", "Platform", "Area", "Kind", "Detected"
    );
    for outcome in &report.outcomes {
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>10} {:>10} {:>10}",
            outcome.bug,
            outcome.platform.to_string(),
            outcome.area.to_string(),
            if outcome.crash_class { "crash" } else { "semantic" },
            if outcome.detected {
                format!("yes ({}/{})", outcome.detecting_programs, outcome.programs_run)
            } else {
                "NO".to_string()
            }
        );
    }
    let _ = writeln!(out, "False alarms on the correct pipeline: {}", report.false_alarms);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SeededBugOutcome;
    use std::collections::BTreeMap;

    fn sample_report() -> CampaignReport {
        let mut by_platform = BTreeMap::new();
        by_platform.insert("P4C/crash".to_string(), 3);
        by_platform.insert("P4C/semantic".to_string(), 7);
        by_platform.insert("BMv2/semantic".to_string(), 2);
        by_platform.insert("Tofino/crash".to_string(), 1);
        by_platform.insert("Tofino/semantic".to_string(), 3);
        let mut by_area = BTreeMap::new();
        by_area.insert("Front End".to_string(), 8);
        by_area.insert("Mid End".to_string(), 2);
        by_area.insert("Back End".to_string(), 6);
        CampaignReport {
            outcomes: vec![SeededBugOutcome {
                bug: "ExitSkipsCopyOut".into(),
                platform: Platform::P4c,
                area: CompilerArea::FrontEnd,
                crash_class: false,
                detected: true,
                detecting_programs: 1,
                programs_run: 1,
            }],
            by_platform,
            by_area,
            false_alarms: 0,
            total_detected: 16,
        }
    }

    #[test]
    fn table2_contains_platform_columns() {
        let text = render_table2(&sample_report());
        assert!(text.contains("P4C"));
        assert!(text.contains("Tofino"));
        assert!(text.contains("Crash"));
        assert!(text.contains("Semantic"));
    }

    #[test]
    fn table3_lists_all_areas() {
        let text = render_table3(&sample_report());
        assert!(text.contains("Front End"));
        assert!(text.contains("Mid End"));
        assert!(text.contains("Back End"));
        assert!(text.contains("16"));
    }

    #[test]
    fn detection_matrix_mentions_each_class() {
        let text = render_detection_matrix(&sample_report());
        assert!(text.contains("ExitSkipsCopyOut"));
        assert!(text.contains("yes (1/1)"));
    }
}
