//! Rendering campaign results in the shape of the paper's tables.

use crate::bugs::{CompilerArea, Platform};
use crate::campaign::{CampaignReport, HuntReport};
use std::fmt::Write;

/// Renders the Table 2 analogue: detected bugs per platform, split into
/// crash and semantic bugs, with per-platform and per-kind totals plus the
/// grand total (the paper's Table 2 carries both margins).  The platform
/// columns cover every registered back end (including the reference
/// interpreter) plus the `Model` column for findings the N-way differential
/// vote pinned on the test-generation oracle itself; when the report
/// carries differential attributions, a per-target attribution block
/// follows the table.
pub fn render_table2(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 (reproduction): distinct seeded bugs detected");
    let platforms = Platform::all();
    let mut header = format!("{:<12}", "Bug Type");
    for platform in platforms {
        let _ = write!(header, " {:>8}", platform.to_string());
    }
    let _ = writeln!(out, "{header} {:>8}", "Total");
    for (label, crash_like) in [("Crash", true), ("Semantic", false)] {
        let mut row = format!("{label:<12}");
        let mut row_total = 0usize;
        for platform in platforms {
            let (crash, semantic) = report.platform_counts(platform);
            let value = if crash_like { crash } else { semantic };
            row_total += value;
            let _ = write!(row, " {value:>8}");
        }
        let _ = writeln!(out, "{row} {row_total:>8}");
    }
    let mut total_row = format!("{:<12}", "Total");
    let mut grand_total = 0usize;
    for platform in platforms {
        let (crash, semantic) = report.platform_counts(platform);
        let platform_total = crash + semantic;
        grand_total += platform_total;
        let _ = write!(total_row, " {platform_total:>8}");
    }
    let _ = writeln!(out, "{total_row} {grand_total:>8}");
    if !report.by_attribution.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Per-target attribution (differential/testgen majority vote):"
        );
        for (participant, count) in &report.by_attribution {
            let _ = writeln!(out, "{participant:<12} {count:>8}");
        }
    }
    if let Some(coverage) = &report.coverage {
        let _ = writeln!(out);
        out.push_str(&coverage.render());
    }
    if let Some(mutation) = &report.mutation {
        let _ = writeln!(out);
        out.push_str(&mutation.render());
    }
    out
}

/// Renders the Table 3 analogue: detected bugs by compiler area.
pub fn render_table3(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3 (reproduction): distinct seeded bugs by compiler area"
    );
    let _ = writeln!(out, "{:<12} {:>8}", "Location", "Bugs");
    for area in [
        CompilerArea::FrontEnd,
        CompilerArea::MidEnd,
        CompilerArea::BackEnd,
    ] {
        let _ = writeln!(
            out,
            "{:<12} {:>8}",
            area.to_string(),
            report.area_count(area)
        );
    }
    let _ = writeln!(out, "{:<12} {:>8}", "Total", report.total_detected);
    out
}

/// Renders the per-class detection table (which class, which technique
/// family, detected or not).
pub fn render_detection_matrix(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>10} {:>10} {:>10}",
        "Seeded bug class", "Platform", "Area", "Kind", "Detected"
    );
    for outcome in &report.outcomes {
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>10} {:>10} {:>10}",
            outcome.bug,
            outcome.platform.to_string(),
            outcome.area.to_string(),
            if outcome.crash_class {
                "crash"
            } else {
                "semantic"
            },
            if outcome.detected {
                format!(
                    "yes ({}/{})",
                    outcome.detecting_programs, outcome.programs_run
                )
            } else {
                "NO".to_string()
            }
        );
    }
    let _ = writeln!(
        out,
        "False alarms on the correct pipeline: {}",
        report.false_alarms
    );
    out
}

/// Median of a sorted slice (mean of the middle pair for even lengths).
fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Renders the reduction summary of a hunt: one row per bug class (kind +
/// attributed pass) with the median size reduction and oracle cost — the
/// shape of the paper's reporting appendix, where every filed bug came with
/// a minimal reproducer.
pub fn render_reduction_summary(report: &HuntReport) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    // class label -> (ratios %, initial sizes, final sizes, oracle calls)
    let mut classes: BTreeMap<String, Vec<(f64, f64, f64, f64)>> = BTreeMap::new();
    let mut unreduced = 0usize;
    for outcome in &report.outcomes {
        for bug in &outcome.reports {
            let Some(stats) = &bug.reduction else {
                unreduced += 1;
                continue;
            };
            let class = format!("{:?}/{}", bug.kind, bug.pass.as_deref().unwrap_or("-"));
            classes.entry(class).or_default().push((
                stats.statement_ratio() * 100.0,
                stats.initial_statements as f64,
                stats.final_statements as f64,
                stats.oracle_calls as f64,
            ));
        }
    }
    let _ = writeln!(
        out,
        "Reduction summary: minimized reproducers per bug class"
    );
    let _ = writeln!(
        out,
        "{:<44} {:>6} {:>10} {:>10} {:>10} {:>12}",
        "Bug class (kind/pass)", "n", "med init", "med final", "med size%", "med oracle"
    );
    let mut all_ratios: Vec<f64> = Vec::new();
    for (class, rows) in &classes {
        let mut ratios: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let mut initials: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let mut finals: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let mut calls: Vec<f64> = rows.iter().map(|r| r.3).collect();
        for list in [&mut ratios, &mut initials, &mut finals, &mut calls] {
            list.sort_by(|a, b| a.partial_cmp(b).expect("finite stats"));
        }
        all_ratios.extend(&ratios);
        let _ = writeln!(
            out,
            "{:<44} {:>6} {:>10.1} {:>10.1} {:>9.1}% {:>12.1}",
            class,
            rows.len(),
            median(&initials),
            median(&finals),
            median(&ratios),
            median(&calls)
        );
    }
    all_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite stats"));
    if all_ratios.is_empty() {
        let _ = writeln!(
            out,
            "overall: no minimized reports ({unreduced} finding(s) without reduction)"
        );
    } else {
        let _ = writeln!(
            out,
            "overall: {} minimized report(s), median size {:.1}% of the original{}",
            all_ratios.len(),
            median(&all_ratios),
            if unreduced > 0 {
                format!(", {unreduced} report(s) not reduced")
            } else {
                String::new()
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SeededBugOutcome;
    use std::collections::BTreeMap;

    fn sample_report() -> CampaignReport {
        let mut by_platform = BTreeMap::new();
        by_platform.insert("P4C/crash".to_string(), 3);
        by_platform.insert("P4C/semantic".to_string(), 7);
        by_platform.insert("BMv2/semantic".to_string(), 2);
        by_platform.insert("Tofino/crash".to_string(), 1);
        by_platform.insert("Tofino/semantic".to_string(), 3);
        let mut by_area = BTreeMap::new();
        by_area.insert("Front End".to_string(), 8);
        by_area.insert("Mid End".to_string(), 2);
        by_area.insert("Back End".to_string(), 6);
        CampaignReport {
            outcomes: vec![SeededBugOutcome {
                bug: "ExitSkipsCopyOut".into(),
                platform: Platform::P4c,
                area: CompilerArea::FrontEnd,
                crash_class: false,
                detected: true,
                detecting_programs: 1,
                programs_run: 1,
            }],
            by_platform,
            by_area,
            by_attribution: BTreeMap::new(),
            false_alarms: 0,
            total_detected: 16,
            coverage: None,
            mutation: None,
        }
    }

    #[test]
    fn table2_contains_platform_columns() {
        let text = render_table2(&sample_report());
        assert!(text.contains("P4C"));
        assert!(text.contains("Tofino"));
        assert!(text.contains("Crash"));
        assert!(text.contains("Semantic"));
    }

    /// The total row must carry per-platform totals under their columns and
    /// the grand total in the margin — not a single aggregate number.
    #[test]
    fn table2_total_row_has_per_platform_totals() {
        let text = render_table2(&sample_report());
        let total_line = text
            .lines()
            .find(|line| line.starts_with("Total"))
            .expect("table has a total row");
        let values: Vec<usize> = total_line
            .split_whitespace()
            .skip(1)
            .map(|v| v.parse().expect("numeric total"))
            .collect();
        // P4C 3+7, BMv2 0+2, Tofino 1+3, RefInterp 0, Model 0, grand 16
        // (matches total_detected).
        assert_eq!(values, vec![10, 2, 4, 0, 0, 16]);
        // The per-kind margin column is present as well.
        let crash_line = text
            .lines()
            .find(|line| line.starts_with("Crash"))
            .expect("crash row");
        let crash: Vec<usize> = crash_line
            .split_whitespace()
            .skip(1)
            .map(|v| v.parse().expect("numeric count"))
            .collect();
        assert_eq!(crash, vec![3, 0, 1, 0, 0, 4]);
    }

    /// Differential attributions render as a per-target block after the
    /// platform table (and the block is absent when there are none).
    #[test]
    fn table2_renders_per_target_attribution() {
        let mut report = sample_report();
        assert!(!render_table2(&report).contains("attribution"));
        report.by_attribution.insert("bmv2".to_string(), 2);
        report.by_attribution.insert("model".to_string(), 1);
        let text = render_table2(&report);
        assert!(text.contains("Per-target attribution"), "{text}");
        let bmv2_line = text
            .lines()
            .find(|line| line.starts_with("bmv2"))
            .expect("bmv2 attribution row");
        assert!(bmv2_line.trim().ends_with('2'), "{bmv2_line}");
        assert!(text.lines().any(|line| line.starts_with("model")), "{text}");
    }

    #[test]
    fn reduction_summary_reports_medians_per_class() {
        use crate::bugs::{BugKind, BugReport, Technique};
        use crate::campaign::SeedOutcome;
        use std::time::Duration;
        let report = |final_statements: usize| {
            let mut bug = BugReport::new(
                BugKind::Semantic,
                Platform::P4c,
                CompilerArea::FrontEnd,
                Technique::TranslationValidation,
                Some("SimplifyDefUse".into()),
                "semantic difference in block `ingress`:".into(),
            );
            bug.minimized = Some("<program>".into());
            bug.reduction = Some(p4_reduce::ReductionStats {
                initial_statements: 50,
                final_statements,
                initial_nodes: 120,
                final_nodes: final_statements * 2,
                oracle_calls: 40,
                typecheck_rejections: 5,
                accepted_steps: 7,
                rounds: 2,
            });
            bug
        };
        let hunt = HuntReport {
            outcomes: vec![
                SeedOutcome {
                    seed: 1,
                    reports: vec![report(10)],
                },
                SeedOutcome {
                    seed: 2,
                    reports: vec![report(20)],
                },
            ],
            programs_checked: 2,
            total_bugs: 2,
            reduction_failures: 0,
            elapsed: Duration::from_secs(1),
            per_worker: vec![2],
            coverage: None,
            mutation: None,
            diversity: None,
            cache: None,
            telemetry: None,
        };
        let text = render_reduction_summary(&hunt);
        assert!(text.contains("Semantic/SimplifyDefUse"), "{text}");
        // Median of 20% and 40% is 30%.
        assert!(text.contains("30.0%"), "{text}");
        assert!(text.contains("2 minimized report(s)"), "{text}");
    }

    #[test]
    fn table3_lists_all_areas() {
        let text = render_table3(&sample_report());
        assert!(text.contains("Front End"));
        assert!(text.contains("Mid End"));
        assert!(text.contains("Back End"));
        assert!(text.contains("16"));
    }

    #[test]
    fn detection_matrix_mentions_each_class() {
        let text = render_detection_matrix(&sample_report());
        assert!(text.contains("ExitSkipsCopyOut"));
        assert!(text.contains("yes (1/1)"));
    }
}
