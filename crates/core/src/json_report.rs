//! The machine-readable campaign report: `gauntlet-report-v1`.
//!
//! [`HuntReport::to_json`] renders the whole report as one versioned JSON
//! document with two top-level halves:
//!
//! * `"result"` — the deterministic outcome: bugs (with attribution and
//!   reduction statistics), the aggregated table-2/3 summary, and the
//!   coverage/mutation blocks.  A pure function of the
//!   [`HuntConfig`](crate::campaign::HuntConfig):
//!   byte-identical at any `--jobs`, with or without telemetry, cache, or
//!   portfolio (also available alone via
//!   [`HuntReport::deterministic_json`], which the determinism tests pin).
//! * `"run"` — everything that describes the particular execution and is
//!   therefore excluded from [`HuntReport::render`]: `elapsed`, the
//!   per-worker loads, the [`CacheSummary`], and the telemetry flight
//!   recorder.
//!
//! Every `render_*` table is derivable from the document: `render` needs
//! only `result.outcomes` + the coverage/mutation blocks, and
//! `render_table2`/`render_table3` need only `result.summary` — a property
//! `tests/golden_report.rs` proves by re-rendering the tables from the
//! parsed JSON alone.
//!
//! The workspace's `serde` shim is a no-op, so the document is hand-written
//! with a fixed key order (the same discipline as the committed
//! `BENCH_*.json` trajectory files) using `gauntlet_telemetry::json` for
//! escaping.

use crate::bugs::{BugKind, BugReport, CompilerArea, Platform, Technique};
use crate::campaign::{
    CacheSummary, CoverageSummary, DiversitySummary, HuntReport, MutationSummary, SeedOutcome,
};
use gauntlet_telemetry::json;
use gauntlet_telemetry::json::Json;
use p4_symbolic::{CacheStats, SessionStats};
use std::collections::BTreeMap;
use std::time::Duration;

/// Schema tag of the JSON report document.
pub const REPORT_SCHEMA: &str = "gauntlet-report-v1";

fn json_opt_string(value: &Option<String>) -> String {
    match value {
        Some(text) => json::string(text),
        None => "null".to_string(),
    }
}

fn json_counter_map(map: &BTreeMap<String, usize>) -> String {
    let mut out = String::from("{");
    for (index, (key, value)) in map.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json::string(key), value));
    }
    out.push('}');
    out
}

fn json_string_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (index, item) in items.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&json::string(item));
    }
    out.push(']');
    out
}

/// Serialize one [`BugReport`] in the `gauntlet-report-v1` layout.  Public
/// because the fleet's `TriageStore` persists first-seen reports in exactly
/// this form (so triage bytes match report bytes).
pub fn bug_report_json(report: &BugReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"kind\":{}",
        json::string(&format!("{:?}", report.kind))
    ));
    out.push_str(&format!(
        ",\"platform\":{}",
        json::string(&report.platform.to_string())
    ));
    out.push_str(&format!(
        ",\"area\":{}",
        json::string(&report.area.to_string())
    ));
    out.push_str(&format!(
        ",\"technique\":{}",
        json::string(&format!("{:?}", report.technique))
    ));
    out.push_str(&format!(",\"pass\":{}", json_opt_string(&report.pass)));
    out.push_str(&format!(",\"message\":{}", json::string(&report.message)));
    out.push_str(&format!(
        ",\"attributed_to\":{}",
        json_opt_string(&report.attributed_to)
    ));
    out.push_str(&format!(
        ",\"minimized\":{}",
        json_opt_string(&report.minimized)
    ));
    match &report.reduction {
        Some(stats) => out.push_str(&format!(
            ",\"reduction\":{{\"initial_statements\":{},\"final_statements\":{},\"initial_nodes\":{},\"final_nodes\":{},\"oracle_calls\":{},\"typecheck_rejections\":{},\"accepted_steps\":{},\"rounds\":{}}}",
            stats.initial_statements,
            stats.final_statements,
            stats.initial_nodes,
            stats.final_nodes,
            stats.oracle_calls,
            stats.typecheck_rejections,
            stats.accepted_steps,
            stats.rounds
        )),
        None => out.push_str(",\"reduction\":null"),
    }
    out.push('}');
    out
}

fn coverage_json(coverage: &CoverageSummary) -> String {
    let mut trajectory = String::from("[");
    for (index, (programs, rules)) in coverage.rules_over_time.iter().enumerate() {
        if index > 0 {
            trajectory.push(',');
        }
        trajectory.push_str(&format!("[{programs},{rules}]"));
    }
    trajectory.push(']');
    format!(
        "{{\"fired\":{},\"rules_total\":{},\"constructs_seen\":{},\"corpus_size\":{},\"corpus_added\":{},\"rules_over_time\":{},\"pairs\":{},\"pairs_total\":{}}}",
        json_string_array(&coverage.fired),
        coverage.rules_total,
        coverage.constructs_seen,
        coverage.corpus_size,
        coverage.corpus_added,
        trajectory,
        json_string_array(&coverage.pairs),
        coverage.pairs_total
    )
}

fn diversity_json(diversity: &DiversitySummary) -> String {
    format!(
        "{{\"slices\":{},\"distinct_bugs\":{}}}",
        diversity.slices,
        json_counter_map(&diversity.distinct_bugs)
    )
}

fn mutation_json(mutation: &MutationSummary) -> String {
    format!(
        "{{\"mutants_checked\":{},\"divergent\":{},\"fired\":{},\"rules_total\":{}}}",
        mutation.mutants_checked,
        mutation.divergent,
        json_string_array(&mutation.fired),
        mutation.rules_total
    )
}

/// Render a [`CacheSummary`] as its `gauntlet-report-v1` `run.cache`
/// object.  Public because fleet fragments embed the same shape (a worker
/// reports its shard's cache counters through the frame protocol and the
/// coordinator sums them into the merged summary).
pub fn cache_json(cache: &CacheSummary) -> String {
    format!(
        "{{\"epochs\":{},\"stats\":{{\"semantics_hits\":{},\"semantics_misses\":{},\"verdict_hits\":{},\"verdict_misses\":{}}},\"sessions\":{{\"semantics_hits\":{},\"semantics_misses\":{},\"trivial_checks\":{},\"solver_checks\":{},\"cached_checks\":{},\"verdict_hits\":{},\"verdict_misses\":{}}},\"portfolio_races\":{}}}",
        cache.epochs,
        cache.stats.semantics_hits,
        cache.stats.semantics_misses,
        cache.stats.verdict_hits,
        cache.stats.verdict_misses,
        cache.sessions.semantics_hits,
        cache.sessions.semantics_misses,
        cache.sessions.trivial_checks,
        cache.sessions.solver_checks,
        cache.sessions.cached_checks,
        cache.sessions.verdict_hits,
        cache.sessions.verdict_misses,
        cache.portfolio_races
    )
}

/// Parse a `run.cache`-shaped object back into a [`CacheSummary`] — the
/// inverse of [`cache_json`].  Fleet workers embed this shape in fragment
/// bodies; the coordinator parses and sums the blocks at merge time.
pub fn cache_summary_from_json(value: &Json) -> Result<CacheSummary, String> {
    fn counter(value: &Json, key: &str) -> Result<u64, String> {
        req(value, key)?
            .as_u64()
            .ok_or_else(|| format!("`{key}` is not an integer"))
    }
    let stats = req(value, "stats")?;
    let sessions = req(value, "sessions")?;
    Ok(CacheSummary {
        epochs: usize_field(value, "epochs")?,
        stats: CacheStats {
            semantics_hits: counter(stats, "semantics_hits")?,
            semantics_misses: counter(stats, "semantics_misses")?,
            verdict_hits: counter(stats, "verdict_hits")?,
            verdict_misses: counter(stats, "verdict_misses")?,
        },
        sessions: SessionStats {
            semantics_hits: counter(sessions, "semantics_hits")?,
            semantics_misses: counter(sessions, "semantics_misses")?,
            trivial_checks: counter(sessions, "trivial_checks")?,
            solver_checks: counter(sessions, "solver_checks")?,
            cached_checks: counter(sessions, "cached_checks")?,
            verdict_hits: counter(sessions, "verdict_hits")?,
            verdict_misses: counter(sessions, "verdict_misses")?,
        },
        portfolio_races: counter(value, "portfolio_races")?,
    })
}

fn req<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
    value.get(key).ok_or_else(|| format!("missing `{key}`"))
}

fn usize_field(value: &Json, key: &str) -> Result<usize, String> {
    req(value, key)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("`{key}` is not an integer"))
}

fn string_field(value: &Json, key: &str) -> Result<String, String> {
    req(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{key}` is not a string"))
}

fn opt_string_field(value: &Json, key: &str) -> Result<Option<String>, String> {
    match req(value, key)? {
        Json::Null => Ok(None),
        other => other
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` is not a string or null")),
    }
}

fn string_array_field(value: &Json, key: &str) -> Result<Vec<String>, String> {
    let items = req(value, key)?
        .as_array()
        .ok_or_else(|| format!("`{key}` is not an array"))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` holds a non-string"))
        })
        .collect()
}

/// Parse one bug report from its `gauntlet-report-v1` object form — the
/// exact inverse of [`bug_report_json`] (round-trip pinned by test).
pub fn bug_report_from_json(value: &Json) -> Result<BugReport, String> {
    let kind_name = string_field(value, "kind")?;
    let kind = BugKind::from_name(&kind_name).ok_or_else(|| format!("bad kind `{kind_name}`"))?;
    let platform_name = string_field(value, "platform")?;
    let platform = Platform::from_display(&platform_name)
        .ok_or_else(|| format!("bad platform `{platform_name}`"))?;
    let area_name = string_field(value, "area")?;
    let area =
        CompilerArea::from_display(&area_name).ok_or_else(|| format!("bad area `{area_name}`"))?;
    let technique_name = string_field(value, "technique")?;
    let technique = Technique::from_name(&technique_name)
        .ok_or_else(|| format!("bad technique `{technique_name}`"))?;
    let reduction = match req(value, "reduction")? {
        Json::Null => None,
        stats => Some(p4_reduce::ReductionStats {
            initial_statements: usize_field(stats, "initial_statements")?,
            final_statements: usize_field(stats, "final_statements")?,
            initial_nodes: usize_field(stats, "initial_nodes")?,
            final_nodes: usize_field(stats, "final_nodes")?,
            oracle_calls: usize_field(stats, "oracle_calls")?,
            typecheck_rejections: usize_field(stats, "typecheck_rejections")?,
            accepted_steps: usize_field(stats, "accepted_steps")?,
            rounds: usize_field(stats, "rounds")?,
        }),
    };
    Ok(BugReport {
        kind,
        platform,
        area,
        technique,
        pass: opt_string_field(value, "pass")?,
        message: string_field(value, "message")?,
        attributed_to: opt_string_field(value, "attributed_to")?,
        minimized: opt_string_field(value, "minimized")?,
        reduction,
    })
}

/// Parse the `outcomes` array of a `result` document.
pub fn outcomes_from_json(value: &Json) -> Result<Vec<SeedOutcome>, String> {
    let items = value.as_array().ok_or("`outcomes` is not an array")?;
    items
        .iter()
        .map(|outcome| {
            let seed = req(outcome, "seed")?
                .as_u64()
                .ok_or("`seed` is not an integer")?;
            let reports = req(outcome, "reports")?
                .as_array()
                .ok_or("`reports` is not an array")?
                .iter()
                .map(bug_report_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SeedOutcome { seed, reports })
        })
        .collect()
}

/// Parse a `coverage` block.
pub fn coverage_from_json(value: &Json) -> Result<CoverageSummary, String> {
    let trajectory = req(value, "rules_over_time")?
        .as_array()
        .ok_or("`rules_over_time` is not an array")?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().ok_or("trajectory entry is not a pair")?;
            match pair {
                [programs, rules] => Ok((
                    programs.as_u64().ok_or("bad trajectory count")? as usize,
                    rules.as_u64().ok_or("bad trajectory count")? as usize,
                )),
                _ => Err("trajectory entry is not a pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    // `pairs`/`pairs_total` are absent from pre-pair-tracking documents;
    // tolerate that instead of rejecting the whole report.
    let pairs = match value.get("pairs") {
        Some(_) => string_array_field(value, "pairs")?,
        None => Vec::new(),
    };
    let pairs_total = match value.get("pairs_total") {
        Some(_) => usize_field(value, "pairs_total")?,
        None => 0,
    };
    Ok(CoverageSummary {
        fired: string_array_field(value, "fired")?,
        rules_total: usize_field(value, "rules_total")?,
        constructs_seen: usize_field(value, "constructs_seen")?,
        corpus_size: usize_field(value, "corpus_size")?,
        corpus_added: usize_field(value, "corpus_added")?,
        rules_over_time: trajectory,
        pairs,
        pairs_total,
    })
}

/// Parse a `diversity` block.
pub fn diversity_from_json(value: &Json) -> Result<DiversitySummary, String> {
    let map = req(value, "distinct_bugs")?;
    let entries = map
        .as_object()
        .ok_or("`distinct_bugs` is not an object")?
        .iter()
        .map(|(slice, count)| {
            count
                .as_u64()
                .map(|n| (slice.clone(), n as usize))
                .ok_or_else(|| format!("`distinct_bugs.{slice}` is not an integer"))
        })
        .collect::<Result<BTreeMap<_, _>, String>>()?;
    Ok(DiversitySummary {
        slices: usize_field(value, "slices")?,
        distinct_bugs: entries,
    })
}

/// Parse a `mutation` block.
pub fn mutation_from_json(value: &Json) -> Result<MutationSummary, String> {
    Ok(MutationSummary {
        mutants_checked: usize_field(value, "mutants_checked")?,
        divergent: usize_field(value, "divergent")?,
        fired: string_array_field(value, "fired")?,
        rules_total: usize_field(value, "rules_total")?,
    })
}

/// Reconstruct a [`HuntReport`] from the deterministic `result` half of a
/// `gauntlet-report-v1` document (either the bare [`deterministic_json`]
/// object or the `result` field of a full [`to_json`] document).
///
/// Only the deterministic fields are recovered: `elapsed` is zero,
/// `per_worker` is empty, and the run-descriptive `cache`/`telemetry`
/// blocks are `None` — which is exactly what `render`, `render_table2`, and
/// `render_table3` need.  The round trip
/// `report.deterministic_json()` → parse → `hunt_result_from_json` →
/// `.deterministic_json()` is byte-identical (pinned by test), which is the
/// property the fleet merge relies on.
///
/// [`deterministic_json`]: HuntReport::deterministic_json
/// [`to_json`]: HuntReport::to_json
pub fn hunt_result_from_json(value: &Json) -> Result<HuntReport, String> {
    let result = match value.get("result") {
        Some(result) => result,
        None => value,
    };
    let coverage = match req(result, "coverage")? {
        Json::Null => None,
        block => Some(coverage_from_json(block)?),
    };
    let mutation = match req(result, "mutation")? {
        Json::Null => None,
        block => Some(mutation_from_json(block)?),
    };
    // Absent from pre-diversity documents; tolerate like `coverage.pairs`.
    let diversity = match result.get("diversity") {
        None | Some(Json::Null) => None,
        Some(block) => Some(diversity_from_json(block)?),
    };
    let outcomes = outcomes_from_json(req(result, "outcomes")?)?;
    let total_bugs = usize_field(result, "total_bugs")?;
    Ok(HuntReport {
        outcomes,
        programs_checked: usize_field(result, "programs_checked")?,
        total_bugs,
        elapsed: Duration::ZERO,
        per_worker: Vec::new(),
        reduction_failures: usize_field(result, "reduction_failures")?,
        coverage,
        mutation,
        diversity,
        cache: None,
        telemetry: None,
    })
}

impl HuntReport {
    /// The deterministic half of the report as one JSON object: outcomes
    /// (with full bug reports and reduction statistics), the aggregated
    /// table summary, and the coverage/mutation blocks.  Byte-identical at
    /// any `--jobs` and with telemetry/cache/portfolio on or off — the
    /// machine-readable counterpart of [`HuntReport::render`].
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"programs_checked\":{}", self.programs_checked));
        out.push_str(&format!(",\"seeds_with_bugs\":{}", self.outcomes.len()));
        out.push_str(&format!(",\"total_bugs\":{}", self.total_bugs));
        out.push_str(&format!(
            ",\"reduction_failures\":{}",
            self.reduction_failures
        ));
        out.push_str(",\"outcomes\":[");
        for (index, outcome) in self.outcomes.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"seed\":{},\"reports\":[", outcome.seed));
            for (report_index, report) in outcome.reports.iter().enumerate() {
                if report_index > 0 {
                    out.push(',');
                }
                out.push_str(&bug_report_json(report));
            }
            out.push_str("]}");
        }
        out.push(']');
        let summary = self.campaign_summary();
        out.push_str(&format!(
            ",\"summary\":{{\"by_platform\":{},\"by_area\":{},\"by_attribution\":{},\"total_detected\":{}}}",
            json_counter_map(&summary.by_platform),
            json_counter_map(&summary.by_area),
            json_counter_map(&summary.by_attribution),
            summary.total_detected
        ));
        match &self.coverage {
            Some(coverage) => out.push_str(&format!(",\"coverage\":{}", coverage_json(coverage))),
            None => out.push_str(",\"coverage\":null"),
        }
        match &self.mutation {
            Some(mutation) => out.push_str(&format!(",\"mutation\":{}", mutation_json(mutation))),
            None => out.push_str(",\"mutation\":null"),
        }
        match &self.diversity {
            Some(diversity) => {
                out.push_str(&format!(",\"diversity\":{}", diversity_json(diversity)))
            }
            None => out.push_str(",\"diversity\":null"),
        }
        out.push('}');
        out
    }

    /// The full `gauntlet-report-v1` document: the deterministic `result`
    /// half plus the run-descriptive `run` half (elapsed, per-worker loads,
    /// cache counters, telemetry flight recorder).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{},\"result\":{}",
            json::string(REPORT_SCHEMA),
            self.deterministic_json()
        );
        out.push_str(&format!(
            ",\"run\":{{\"elapsed_us\":{}",
            self.elapsed.as_micros()
        ));
        out.push_str(",\"per_worker\":[");
        for (index, processed) in self.per_worker.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&processed.to_string());
        }
        out.push(']');
        match &self.cache {
            Some(cache) => out.push_str(&format!(",\"cache\":{}", cache_json(cache))),
            None => out.push_str(",\"cache\":null"),
        }
        match &self.telemetry {
            Some(recorder) => out.push_str(&format!(",\"telemetry\":{}", recorder.to_json())),
            None => out.push_str(",\"telemetry\":null"),
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::HuntConfig;
    use crate::campaign::ParallelCampaign;

    /// The JSON document must parse, carry the schema tag, and agree with
    /// the struct fields on the headline counts — on a real (small) hunt.
    #[test]
    fn report_json_round_trips_through_the_parser() {
        let hunt = ParallelCampaign::new(HuntConfig {
            seed_count: 4,
            epoch_cache: false,
            ..HuntConfig::default()
        })
        .run(p4c::Compiler::reference);
        let parsed = json::parse(&hunt.to_json()).expect("report JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some(REPORT_SCHEMA)
        );
        let result = parsed.get("result").expect("result half");
        assert_eq!(
            result.get("programs_checked").and_then(|n| n.as_u64()),
            Some(hunt.programs_checked as u64)
        );
        assert_eq!(
            result.get("total_bugs").and_then(|n| n.as_u64()),
            Some(hunt.total_bugs as u64)
        );
        let run = parsed.get("run").expect("run half");
        assert_eq!(
            run.get("elapsed_us").and_then(|n| n.as_u64()),
            Some(hunt.elapsed.as_micros() as u64)
        );
        assert_eq!(run.get("cache"), Some(&json::Json::Null));
        assert_eq!(run.get("telemetry"), Some(&json::Json::Null));
        // And the result half is exactly the deterministic document.
        assert_eq!(
            json::parse(&hunt.deterministic_json()).expect("deterministic half parses"),
            *result
        );
    }

    /// `deterministic_json` → parse → `hunt_result_from_json` →
    /// `deterministic_json` must be byte-identical: the fleet merge ships
    /// report fragments as JSON and reconstructs `HuntReport`s on the far
    /// side, so the parse direction must lose nothing deterministic.
    #[test]
    fn deterministic_half_round_trips_through_the_struct() {
        let hunt = ParallelCampaign::new(HuntConfig {
            seed_count: 8,
            epoch_cache: false,
            coverage: Some(crate::campaign::CoverageOptions {
                adapt: false,
                ..Default::default()
            }),
            mutation: Some(p4_mutate::MetamorphicOptions {
                mutants_per_seed: 1,
                ..Default::default()
            }),
            ..HuntConfig::default()
        })
        .run(|| {
            crate::inject::SeededBug::catalogue()
                .into_iter()
                .find(|b| b.platform() == Platform::P4c && !b.is_crash_class())
                .expect("catalogue has a P4C semantic bug")
                .build_compiler()
        });
        assert!(hunt.total_bugs > 0, "seeded hunt must find something");
        let bytes = hunt.deterministic_json();
        let parsed = json::parse(&bytes).expect("parses");
        let rebuilt = hunt_result_from_json(&parsed).expect("reconstructs");
        assert_eq!(rebuilt.deterministic_json(), bytes);
        // The full document's `result` field reconstructs identically.
        let full = json::parse(&hunt.to_json()).expect("full document parses");
        let from_full = hunt_result_from_json(&full).expect("reconstructs from full");
        assert_eq!(from_full.deterministic_json(), bytes);
        // And the rebuilt report renders the same tables.
        assert_eq!(rebuilt.render(), hunt.render());
    }
}
