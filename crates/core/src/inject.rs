//! Bug injection: the unified catalogue of seeded defects and, for every
//! class, a hand-written trigger program modelled on the paper's Figure 5.
//!
//! The evaluation cannot re-discover 2020-era p4c bugs, so it measures
//! Gauntlet's ability to *detect* seeded bugs of the classes the paper
//! documents.  Each [`SeededBug`] knows which platform it lives in, which
//! compiler area it belongs to, whether it manifests as a crash or a
//! miscompilation, how to build the seeded compiler/back end, and a trigger
//! program that is guaranteed to exercise the defective code path (random
//! programs may or may not hit it, exactly as in the original campaign).

use crate::bugs::{BugReport, CompilerArea, Platform};
use crate::pipeline::Gauntlet;
use p4_ir::builder;
use p4_ir::{
    ActionDecl, ActionRef, BinOp, Block, Declaration, Direction, Expr, FunctionDecl, KeyElement,
    MatchKind, Param, Program, Statement, TableDecl, Type,
};
use p4_mutate::{MetamorphicChecker, MetamorphicOptions, CAMPAIGN_MUTATION_SEED};
use p4c::{Compiler, DriverBugClass, FrontEndBugClass, PassArea};
use serde::{Deserialize, Serialize};
use targets::{BackEndBugClass, TargetRegistry};

/// A seeded defect in either the shared front/mid end or one of the back
/// ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeededBug {
    FrontEnd(FrontEndBugClass),
    /// A driver-level defect applied before the first snapshot — invisible
    /// to per-pass translation validation, detectable only by the
    /// metamorphic mutation oracle (`p4-mutate`).
    Driver(DriverBugClass),
    BackEnd(BackEndBugClass),
}

impl SeededBug {
    /// The full catalogue.
    pub fn catalogue() -> Vec<SeededBug> {
        let mut bugs: Vec<SeededBug> = FrontEndBugClass::all()
            .into_iter()
            .map(SeededBug::FrontEnd)
            .collect();
        bugs.extend(DriverBugClass::all().into_iter().map(SeededBug::Driver));
        bugs.extend(BackEndBugClass::all().into_iter().map(SeededBug::BackEnd));
        bugs
    }

    /// The platform the bug is observed on (Table 2 column).
    pub fn platform(self) -> Platform {
        match self {
            SeededBug::FrontEnd(_) | SeededBug::Driver(_) => Platform::P4c,
            SeededBug::BackEnd(bug) => match bug.backend() {
                targets::Backend::Bmv2 => Platform::Bmv2,
                targets::Backend::Tofino => Platform::Tofino,
            },
        }
    }

    /// The compiler area the defect lives in (Table 3 row).
    pub fn area(self) -> CompilerArea {
        match self {
            SeededBug::FrontEnd(bug) => match bug.area() {
                PassArea::FrontEnd => CompilerArea::FrontEnd,
                PassArea::MidEnd => CompilerArea::MidEnd,
                PassArea::BackEnd => CompilerArea::BackEnd,
            },
            // Pre-snapshot corruption happens while the front end builds
            // the IR the pipeline consumes.
            SeededBug::Driver(_) => CompilerArea::FrontEnd,
            SeededBug::BackEnd(_) => CompilerArea::BackEnd,
        }
    }

    /// Whether the defect manifests as a crash/rejection.
    pub fn is_crash_class(self) -> bool {
        match self {
            SeededBug::FrontEnd(bug) => bug.is_crash_class(),
            SeededBug::Driver(_) => false,
            SeededBug::BackEnd(bug) => bug.is_crash_class(),
        }
    }

    /// Short stable identifier used in reports.
    pub fn name(self) -> String {
        match self {
            SeededBug::FrontEnd(bug) => format!("{bug:?}"),
            SeededBug::Driver(bug) => format!("{bug:?}"),
            SeededBug::BackEnd(bug) => format!("{bug:?}"),
        }
    }

    /// Builds the compiler used when this bug is seeded.  Back-end bugs use
    /// the reference (correct) front/mid end.
    pub fn build_compiler(self) -> Compiler {
        let mut compiler = Compiler::reference();
        match self {
            SeededBug::FrontEnd(bug) => {
                let replaced = compiler.replace_pass(bug.faulty_pass());
                debug_assert!(replaced, "bug class must map onto an existing pass");
            }
            SeededBug::Driver(bug) => {
                compiler.seed_input_corruption(bug);
            }
            SeededBug::BackEnd(_) => {}
        }
        compiler
    }

    /// The back-end defect to seed into the target, if any.
    pub fn backend_bug(self) -> Option<BackEndBugClass> {
        match self {
            SeededBug::BackEnd(bug) => Some(bug),
            SeededBug::FrontEnd(_) | SeededBug::Driver(_) => None,
        }
    }

    /// The registry name of the back end this bug is observed on (`None`
    /// for front/mid-end bugs, which are checked on the open compiler).
    pub fn target_name(self) -> Option<&'static str> {
        match self {
            SeededBug::BackEnd(bug) => Some(bug.backend().target_name()),
            SeededBug::FrontEnd(_) | SeededBug::Driver(_) => None,
        }
    }

    /// Runs the detection technique appropriate to this bug's platform:
    /// crash detection + translation validation on the open compiler for
    /// front/mid-end bugs, generic target-trait testgen (through the
    /// builtin [`TargetRegistry`]) for back-end bugs.
    pub fn detect(self, gauntlet: &Gauntlet, program: &p4_ir::Program) -> Vec<BugReport> {
        if matches!(self, SeededBug::Driver(_)) {
            // The technique that can see pre-snapshot corruption: the
            // metamorphic mutation oracle, with the fixed campaign seed so
            // detection and the reduction oracle derive the same mutants.
            let mut checker = MetamorphicChecker::new(self.build_compiler());
            return gauntlet
                .check_mutants(
                    &mut checker,
                    program,
                    &MetamorphicOptions::default(),
                    CAMPAIGN_MUTATION_SEED,
                )
                .reports;
        }
        match self.target_name() {
            None => {
                gauntlet
                    .check_open_compiler(&self.build_compiler(), program)
                    .reports
            }
            Some(name) => {
                let target = TargetRegistry::builtin()
                    .build_seeded(name, self.backend_bug())
                    .expect("builtin targets are registered");
                gauntlet.check_target(&*target, program).reports
            }
        }
    }

    /// A program known to exercise the defective code path (Figure-5 style).
    pub fn trigger_program(self) -> Program {
        match self {
            SeededBug::FrontEnd(bug) => front_end_trigger(bug),
            SeededBug::Driver(bug) => driver_trigger(bug),
            SeededBug::BackEnd(bug) => back_end_trigger(bug),
        }
    }

    /// The architecture random programs should target when hunting this bug.
    pub fn architecture(self) -> &'static str {
        match self.platform() {
            Platform::Tofino => "tna",
            _ => "v1model",
        }
    }

    /// Builds the reduction oracle matching this class: the technique that
    /// detects the bug is the technique that must keep reproducing it while
    /// `p4-reduce` shrinks the trigger program.
    pub fn oracle(self, max_tests: usize) -> Box<dyn p4_reduce::Oracle> {
        use p4_reduce::{CrashOracle, MetamorphicOracle, SemanticOracle, TestgenOracle};
        match self {
            SeededBug::FrontEnd(bug) if bug.is_crash_class() => {
                Box::new(CrashOracle::new(self.build_compiler()))
            }
            SeededBug::FrontEnd(_) => Box::new(SemanticOracle::new(self.build_compiler())),
            SeededBug::Driver(_) => Box::new(MetamorphicOracle::new(
                self.build_compiler(),
                MetamorphicOptions::default(),
                CAMPAIGN_MUTATION_SEED,
            )),
            SeededBug::BackEnd(bug) => {
                let target = TargetRegistry::builtin()
                    .build_seeded(bug.backend().target_name(), Some(bug))
                    .expect("builtin targets are registered");
                Box::new(TestgenOracle::new(target, max_tests))
            }
        }
    }
}

fn hdr(parts: &[&str]) -> Expr {
    Expr::dotted(parts)
}

fn front_end_trigger(bug: FrontEndBugClass) -> Program {
    match bug {
        // Figure 5a / the snowball family: a final write through an inout
        // parameter that a careless def-use analysis considers dead.
        FrontEndBugClass::DefUseDropsParameterWrites => builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::assign(hdr(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            ]),
        ),
        // Figure 5b: `(1 << hdr.h.c) + 8w2`.
        FrontEndBugClass::TypeInferenceShiftCrash => builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                hdr(&["hdr", "h", "a"]),
                Expr::cast(
                    Type::bits(8),
                    Expr::binary(
                        BinOp::Add,
                        Expr::binary(BinOp::Shl, Expr::int(1), hdr(&["hdr", "h", "c"])),
                        Expr::uint(2, 8),
                    ),
                ),
            )]),
        ),
        // Figure 5c: a slice of a cast that the faulty pass refuses.
        FrontEndBugClass::StrengthReductionRejectsSlices => builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                hdr(&["hdr", "h", "a"]),
                Expr::slice(Expr::cast(Type::bits(16), hdr(&["meta", "tmp"])), 7, 0),
            )]),
        ),
        FrontEndBugClass::StrengthReductionOrIdentity => builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                hdr(&["hdr", "h", "a"]),
                Expr::binary(BinOp::BitOr, hdr(&["hdr", "h", "b"]), Expr::uint(0xff, 8)),
            )]),
        ),
        FrontEndBugClass::ConstantFoldingNoWraparound => builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                hdr(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Add, Expr::uint(250, 8), Expr::uint(10, 8)),
            )]),
        ),
        // Figure 5d: a slice of a variable passed inout while a disjoint
        // slice is assigned inside the action.
        FrontEndBugClass::SliceAssignmentDeleted => {
            let action = ActionDecl {
                name: "a".into(),
                params: vec![Param::new(Direction::InOut, "val", Type::bits(7))],
                body: Block::new(vec![Statement::Assign {
                    lhs: Expr::slice(hdr(&["hdr", "h", "a"]), 0, 0),
                    rhs: Expr::uint(0, 1),
                }]),
            };
            builder::v1model_program(
                vec![Declaration::Action(action)],
                Block::new(vec![Statement::Call(p4_ir::CallExpr::new(
                    vec!["a".into()],
                    vec![Expr::slice(hdr(&["hdr", "h", "a"]), 7, 1)],
                ))]),
            )
        }
        // Figure 5e-flavoured: two writes to the same field followed by a
        // copy; the stale value must not be propagated.
        FrontEndBugClass::CopyPropagationStaleValue => builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(2, 8)),
                Statement::assign(hdr(&["hdr", "h", "b"]), hdr(&["hdr", "h", "a"])),
            ]),
        ),
        // Figure 5f: `action a(inout bit<16> val) { val = 3; exit; }`.
        FrontEndBugClass::ExitSkipsCopyOut => {
            let action = ActionDecl {
                name: "a".into(),
                params: vec![Param::new(Direction::InOut, "val", Type::bits(16))],
                body: Block::new(vec![
                    Statement::assign(Expr::path("val"), Expr::uint(3, 16)),
                    Statement::Exit,
                ]),
            };
            builder::v1model_program(
                vec![Declaration::Action(action)],
                Block::new(vec![Statement::call(
                    vec!["a"],
                    vec![hdr(&["hdr", "eth", "eth_type"])],
                )]),
            )
        }
        // Aliasing arguments make the copy-out order observable.
        FrontEndBugClass::ArgumentOrderReversed => {
            let action = ActionDecl {
                name: "two".into(),
                params: vec![
                    Param::new(Direction::InOut, "x", Type::bits(8)),
                    Param::new(Direction::InOut, "y", Type::bits(8)),
                ],
                body: Block::new(vec![
                    Statement::assign(
                        Expr::path("x"),
                        Expr::binary(BinOp::Add, Expr::path("x"), Expr::uint(1, 8)),
                    ),
                    Statement::assign(
                        Expr::path("y"),
                        Expr::binary(BinOp::Add, Expr::path("y"), Expr::uint(2, 8)),
                    ),
                ]),
            };
            builder::v1model_program(
                vec![Declaration::Action(action)],
                Block::new(vec![Statement::call(
                    vec!["two"],
                    vec![hdr(&["hdr", "h", "a"]), hdr(&["hdr", "h", "a"])],
                )]),
            )
        }
        FrontEndBugClass::InlineCrashOnConditional => {
            let function = FunctionDecl {
                name: "pick".into(),
                return_type: Type::bits(8),
                params: vec![Param::new(Direction::In, "x", Type::bits(8))],
                body: Block::new(vec![
                    Statement::if_then(
                        Expr::binary(BinOp::Eq, Expr::path("x"), Expr::uint(0, 8)),
                        Statement::Block(Block::new(vec![Statement::Return(Some(Expr::uint(
                            7, 8,
                        )))])),
                    ),
                    Statement::Return(Some(Expr::path("x"))),
                ]),
            };
            let mut program = builder::v1model_program(
                vec![],
                Block::new(vec![Statement::assign(
                    hdr(&["hdr", "h", "a"]),
                    Expr::call(vec!["pick"], vec![hdr(&["hdr", "h", "b"])]),
                )]),
            );
            program
                .declarations
                .insert(0, Declaration::Function(function));
            program
        }
        FrontEndBugClass::PredicationSwapsBranches
        | FrontEndBugClass::PredicationUnconditionalElse => {
            // A table-bound action with a conditional assignment.
            let action = ActionDecl {
                name: "cond_set".into(),
                params: vec![],
                body: Block::new(vec![Statement::if_else(
                    Expr::binary(BinOp::Lt, hdr(&["hdr", "h", "a"]), Expr::uint(10, 8)),
                    Statement::Block(Block::new(vec![Statement::assign(
                        hdr(&["hdr", "h", "b"]),
                        Expr::uint(1, 8),
                    )])),
                    Statement::Block(Block::new(vec![Statement::assign(
                        hdr(&["hdr", "h", "b"]),
                        Expr::uint(2, 8),
                    )])),
                )]),
            };
            let table = TableDecl {
                name: "t".into(),
                keys: vec![KeyElement {
                    expr: hdr(&["hdr", "h", "a"]),
                    match_kind: MatchKind::Exact,
                }],
                actions: vec![ActionRef::new("cond_set"), ActionRef::new("NoAction")],
                default_action: ActionRef::new("NoAction"),
            };
            builder::v1model_program(
                vec![
                    Declaration::Action(builder::no_action()),
                    Declaration::Action(action),
                    Declaration::Table(table),
                ],
                Block::new(vec![Statement::call(vec!["t", "apply"], vec![])]),
            )
        }
    }
}

/// A trigger for the driver corruption: the ingress block *ends* with a
/// meaningful write, which the corruption silently drops from every
/// snapshot.  Detection needs a mutant whose tail differs (an opaque guard
/// appended at the end, the final write block-wrapped or reordered away) so
/// the corruption damages seed and mutant differently.
fn driver_trigger(bug: DriverBugClass) -> Program {
    match bug {
        DriverBugClass::SnapshotDropsFinalWrite => builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(hdr(&["meta", "flag"]), Expr::uint(1, 8)),
                Statement::assign(
                    hdr(&["hdr", "h", "b"]),
                    Expr::binary(BinOp::Add, hdr(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                ),
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(7, 8)),
            ]),
        ),
    }
}

fn back_end_trigger(bug: BackEndBugClass) -> Program {
    match bug {
        BackEndBugClass::Bmv2ExitIgnored => builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        ),
        BackEndBugClass::Bmv2SliceWritesWholeField => builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(hdr(&["hdr", "h", "a"]), 7, 4),
                rhs: Expr::uint(0x5, 4),
            }]),
        ),
        BackEndBugClass::TofinoSliceLoweringCrash => builder::tna_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(hdr(&["hdr", "h", "a"]), 3, 0),
                rhs: Expr::uint(1, 4),
            }]),
        ),
        BackEndBugClass::TofinoSaturationWraps => builder::tna_program(
            vec![],
            Block::new(vec![Statement::assign(
                hdr(&["hdr", "h", "a"]),
                Expr::binary(BinOp::SatAdd, hdr(&["hdr", "h", "b"]), Expr::uint(255, 8)),
            )]),
        ),
        BackEndBugClass::TofinoExitIgnored => builder::tna_program(
            vec![],
            Block::new(vec![
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(hdr(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        ),
        BackEndBugClass::TofinoValidityAlwaysTrue => builder::tna_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::call(vec!["hdr", "h", "isValid"], vec![]),
                Statement::assign(hdr(&["meta", "flag"]), Expr::uint(1, 8)),
                Statement::assign(hdr(&["meta", "flag"]), Expr::uint(2, 8)),
            )]),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_check::check_program;

    #[test]
    fn catalogue_spans_all_platforms_and_areas() {
        let catalogue = SeededBug::catalogue();
        assert!(catalogue.len() >= 18);
        assert!(catalogue.iter().any(|b| b.platform() == Platform::P4c));
        assert!(catalogue.iter().any(|b| b.platform() == Platform::Bmv2));
        assert!(catalogue.iter().any(|b| b.platform() == Platform::Tofino));
        assert!(catalogue.iter().any(|b| b.area() == CompilerArea::FrontEnd));
        assert!(catalogue.iter().any(|b| b.area() == CompilerArea::MidEnd));
        assert!(catalogue.iter().any(|b| b.area() == CompilerArea::BackEnd));
        assert!(catalogue.iter().any(|b| b.is_crash_class()));
        assert!(catalogue.iter().any(|b| !b.is_crash_class()));
    }

    #[test]
    fn all_trigger_programs_are_well_typed() {
        for bug in SeededBug::catalogue() {
            let program = bug.trigger_program();
            let errors = check_program(&program);
            assert!(
                errors.is_empty(),
                "{}: trigger program is ill-typed: {errors:#?}",
                bug.name()
            );
        }
    }

    #[test]
    fn trigger_programs_compile_cleanly_on_the_reference_compiler() {
        for bug in SeededBug::catalogue() {
            let program = bug.trigger_program();
            let compiler = Compiler::reference();
            assert!(
                compiler.compile(&program).is_ok(),
                "{}: reference compiler rejects the trigger program",
                bug.name()
            );
        }
    }

    /// The contract that makes reduction sound: for every seeded bug class,
    /// the signature the `p4-reduce` oracle computes for the trigger
    /// program is exactly the `dedup_key` of the report the detection
    /// pipeline files.  This pins the two crates' signature formats
    /// together (they cannot share code without a dependency cycle).
    #[test]
    fn oracle_signatures_match_pipeline_dedup_keys() {
        let gauntlet = Gauntlet::default();
        for bug in SeededBug::catalogue() {
            let program = bug.trigger_program();
            let reports = bug.detect(&gauntlet, &program);
            assert!(!reports.is_empty(), "{}: trigger not detected", bug.name());
            let mut oracle = bug.oracle(gauntlet.options.max_tests);
            let signatures = oracle.signatures(&program);
            for report in &reports {
                assert!(
                    signatures.contains(&report.dedup_key()),
                    "{}: dedup key `{}` not among oracle signatures {:?}",
                    bug.name(),
                    report.dedup_key(),
                    signatures
                );
            }
        }
    }

    #[test]
    fn seeded_compilers_replace_the_right_pass() {
        for bug in SeededBug::catalogue() {
            let compiler = bug.build_compiler();
            assert_eq!(
                compiler.pass_names().len(),
                p4c::passes::default_pass_names().len()
            );
        }
    }
}
