//! The persistent hunt corpus: programs that advanced pass-rule coverage.
//!
//! A coverage-guided hunt keeps every generated program that newly covered
//! a rewrite rule (see `p4c::coverage`).  The corpus is replayed first on
//! the next campaign start, so accumulated coverage — and therefore the
//! adapted generator weights — survive across runs, the same way a fuzzing
//! corpus seeds later sessions.
//!
//! Programs are persisted through the in-tree printer/parser pair (the
//! serde shims are no-op derives in this offline environment, so the
//! canonical `print_program` text *is* the serialized form; every entry is
//! round-trip checked on load).  The on-disk format is line-based:
//!
//! ```text
//! # gauntlet-corpus v1
//! %% entry seed=42
//! % rules=ConstantFolding/fold_arith,Predication/predicate_then
//! % pairs=ConstantFolding/fold_arith->Predication/predicate_then
//! <program text>
//! %% end
//! ```
//!
//! `rules=` records the full fired-rule set of the entry's compile, so the
//! union over all entries is the corpus's coverage fingerprint — replaying
//! the corpus alone must reproduce exactly that set (guarded by the plateau
//! regression test in `tests/coverage.rs`).  `pairs=` records the compile's
//! cross-pass interaction pairs the same way; corpora written before pair
//! tracking simply lack the line and load with empty pair sets.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// One kept program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The generator seed that produced the program.
    pub seed: u64,
    /// Every rule key (`"pass/rule"`) the program's compile fired.
    pub rules: Vec<String>,
    /// Every cross-pass pair key (`"a->b"`) the program's compile observed.
    pub pairs: Vec<String>,
    /// The printed program (parseable by `p4_parser`).
    pub source: String,
}

/// An ordered collection of kept programs (admission order is preserved:
/// loaded entries first, then new entries in commit order — which makes the
/// serialized corpus byte-identical across `--jobs` settings).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    pub entries: Vec<CorpusEntry>,
}

const HEADER: &str = "# gauntlet-corpus v1";

impl Corpus {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The union of every entry's fired rules, sorted and de-duplicated —
    /// the coverage fingerprint replaying the corpus must reproduce.
    pub fn fingerprint(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self
            .entries
            .iter()
            .flat_map(|entry| entry.rules.iter().map(String::as_str))
            .collect();
        set.into_iter().map(String::from).collect()
    }

    /// The union of every entry's interaction pairs, sorted and
    /// de-duplicated — the pair half of the coverage fingerprint.
    pub fn pair_fingerprint(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self
            .entries
            .iter()
            .flat_map(|entry| entry.pairs.iter().map(String::as_str))
            .collect();
        set.into_iter().map(String::from).collect()
    }

    /// Serializes the corpus to its text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        for entry in &self.entries {
            let _ = writeln!(out, "%% entry seed={}", entry.seed);
            let _ = writeln!(out, "% rules={}", entry.rules.join(","));
            let _ = writeln!(out, "% pairs={}", entry.pairs.join(","));
            out.push_str(&entry.source);
            if !entry.source.ends_with('\n') {
                out.push('\n');
            }
            let _ = writeln!(out, "%% end");
        }
        out
    }

    /// Parses the text format, round-trip checking every program through
    /// the parser (a corrupt entry is an error, not a silent skip — a
    /// truncated corpus would silently lose coverage).
    pub fn from_text(text: &str) -> Result<Corpus, String> {
        let mut lines = text.lines().peekable();
        match lines.next() {
            Some(line) if line == HEADER => {}
            other => return Err(format!("missing corpus header, found {other:?}")),
        }
        let mut entries = Vec::new();
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            let Some(seed_text) = line.strip_prefix("%% entry seed=") else {
                return Err(format!("expected `%% entry seed=`, found `{line}`"));
            };
            let seed: u64 = seed_text
                .parse()
                .map_err(|e| format!("bad seed `{seed_text}`: {e}"))?;
            let rules = match lines.next() {
                Some(rules_line) => match rules_line.strip_prefix("% rules=") {
                    Some("") => Vec::new(),
                    Some(list) => list.split(',').map(String::from).collect(),
                    None => return Err(format!("expected `% rules=`, found `{rules_line}`")),
                },
                None => return Err("truncated corpus entry (missing rules)".into()),
            };
            // Optional `% pairs=` line (corpora written before pair tracking
            // do not have one; program text never starts with `% pairs=`).
            let pairs = match lines.peek().and_then(|line| line.strip_prefix("% pairs=")) {
                Some(list) => {
                    lines.next();
                    if list.is_empty() {
                        Vec::new()
                    } else {
                        list.split(',').map(String::from).collect()
                    }
                }
                None => Vec::new(),
            };
            let mut source = String::new();
            let mut terminated = false;
            for body_line in lines.by_ref() {
                if body_line == "%% end" {
                    terminated = true;
                    break;
                }
                source.push_str(body_line);
                source.push('\n');
            }
            if !terminated {
                return Err(format!("truncated corpus entry for seed {seed}"));
            }
            if let Err(error) = p4_parser::parse_program(&source) {
                return Err(format!(
                    "corpus entry for seed {seed} does not parse: {error}"
                ));
            }
            entries.push(CorpusEntry {
                seed,
                rules,
                pairs,
                source,
            });
        }
        Ok(Corpus { entries })
    }

    /// Loads a corpus file.  Parse failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Corpus> {
        let text = std::fs::read_to_string(path)?;
        Corpus::from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads a corpus, treating a missing file as an empty corpus (a fresh
    /// campaign) and failing fast on a corrupt one.
    pub fn load_or_empty(path: impl AsRef<Path>) -> io::Result<Corpus> {
        match Corpus::load(&path) {
            Ok(corpus) => Ok(corpus),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(Corpus::default()),
            Err(error) => Err(error),
        }
    }

    /// Writes the corpus to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::{builder, print_program};

    fn sample() -> Corpus {
        Corpus {
            entries: vec![
                CorpusEntry {
                    seed: 7,
                    rules: vec![
                        "ConstantFolding/fold_arith".into(),
                        "FlattenBlocks/splice_block".into(),
                    ],
                    pairs: vec!["ConstantFolding/fold_arith->FlattenBlocks/splice_block".into()],
                    source: print_program(&builder::trivial_program()),
                },
                CorpusEntry {
                    seed: 9,
                    rules: vec!["ConstantFolding/fold_arith".into()],
                    pairs: Vec::new(),
                    source: print_program(&builder::trivial_program()),
                },
            ],
        }
    }

    #[test]
    fn corpus_round_trips_through_the_text_format() {
        let corpus = sample();
        let text = corpus.to_text();
        let back = Corpus::from_text(&text).expect("round trip");
        assert_eq!(back, corpus);
        // Serialization is deterministic (byte-identical re-render).
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn fingerprint_is_the_sorted_union_of_entry_rules() {
        assert_eq!(
            sample().fingerprint(),
            vec![
                "ConstantFolding/fold_arith".to_string(),
                "FlattenBlocks/splice_block".to_string()
            ]
        );
    }

    #[test]
    fn pair_fingerprint_is_the_sorted_union_of_entry_pairs() {
        assert_eq!(
            sample().pair_fingerprint(),
            vec!["ConstantFolding/fold_arith->FlattenBlocks/splice_block".to_string()]
        );
    }

    /// Corpora written before pair tracking have no `% pairs=` line; they
    /// load with empty pair sets instead of failing.
    #[test]
    fn legacy_corpora_without_pair_lines_still_load() {
        let program = print_program(&builder::trivial_program());
        let legacy = format!(
            "{HEADER}\n%% entry seed=3\n% rules=ConstantFolding/fold_arith\n{program}%% end\n"
        );
        let corpus = Corpus::from_text(&legacy).expect("legacy format loads");
        assert_eq!(corpus.entries.len(), 1);
        assert_eq!(corpus.entries[0].rules.len(), 1);
        assert!(corpus.entries[0].pairs.is_empty());
    }

    #[test]
    fn corrupt_corpora_are_rejected() {
        assert!(Corpus::from_text("not a corpus").is_err());
        let mut truncated = sample().to_text();
        truncated.truncate(truncated.len() - 8);
        assert!(Corpus::from_text(&truncated).is_err());
        let bad_program = format!("{HEADER}\n%% entry seed=1\n% rules=\nnot p4 at all\n%% end\n");
        assert!(Corpus::from_text(&bad_program).is_err());
    }

    #[test]
    fn missing_files_load_as_empty() {
        let corpus = Corpus::load_or_empty("/nonexistent/corpus.txt").expect("missing is empty");
        assert!(corpus.is_empty());
    }
}
