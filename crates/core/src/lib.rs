//! # gauntlet-core — the Gauntlet compiler bug-finding pipeline
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: random program generation (`p4-gen`), the nanopass
//! compiler under test (`p4c`), symbolic interpretation / translation
//! validation / test-case generation (`p4-symbolic` over the `smt` solver),
//! and the simulated back ends (`targets`).
//!
//! * [`pipeline`] — the three detection techniques (crash detection,
//!   translation validation, symbolic-execution testing) glued into one
//!   [`Gauntlet`] tool (paper Figures 2 and 4);
//! * [`bugs`] — finding classification and de-duplication (crash vs
//!   semantic vs invalid transformation; platform; compiler area);
//! * [`inject`] — the seeded-bug catalogue with Figure-5-style trigger
//!   programs, replacing the real 2020-era compiler bugs the paper found;
//! * [`campaign`] — the evaluation campaign that regenerates the shape of
//!   the paper's Tables 2 and 3;
//! * [`report`] — text rendering of the campaign results;
//! * [`json_report`] — the versioned machine-readable `gauntlet-report-v1`
//!   JSON document from which every rendered table is derivable.
//!
//! Test-case reduction (`p4-reduce`) plugs in underneath: campaigns run
//! with reduction enabled attach a delta-debugged minimal reproducer to
//! every finding, reproducing the paper's reporting workflow (§7).

pub mod bugs;
pub mod campaign;
pub mod corpus;
pub mod inject;
pub mod json_report;
pub mod pipeline;
pub mod report;

pub use bugs::{BugDatabase, BugKind, BugReport, CompilerArea, Platform, Technique};
pub use campaign::{
    run_campaign, CacheSummary, CampaignConfig, CampaignReport, CoverageOptions, CoverageSummary,
    DiversitySummary, HuntConfig, HuntReport, MutationSummary, ParallelCampaign, SeedOutcome,
    SeededBugOutcome, TelemetryOptions,
};
pub use corpus::{Corpus, CorpusEntry};
pub use inject::SeededBug;
pub use json_report::{
    bug_report_from_json, bug_report_json, cache_json, cache_summary_from_json, coverage_from_json,
    diversity_from_json, hunt_result_from_json, mutation_from_json, outcomes_from_json,
    REPORT_SCHEMA,
};
pub use p4_symbolic::{CacheBudget, CacheStats, CampaignCache, SessionStats};

pub use p4_mutate::{
    hunt_mutation_seed, MetamorphicChecker, MetamorphicOptions, CAMPAIGN_MUTATION_SEED,
};
pub use pipeline::{Gauntlet, GauntletOptions, MutationOutcome, ProgramOutcome};
pub use report::{render_detection_matrix, render_reduction_summary, render_table2, render_table3};
