//! The Gauntlet pipeline: the three techniques glued together.
//!
//! * crash detection — compile a (random) program and catch abnormal
//!   termination (paper §4, Figure 2 left side);
//! * translation validation — re-parse and symbolically compare the program
//!   emitted after every modifying pass, pinpointing the faulty pass
//!   (paper §5, Figure 2);
//! * symbolic-execution testing — generate input/output tests from the
//!   input program's semantics and replay them on black-box back ends
//!   (paper §6, Figure 4), either one target at a time
//!   ([`Gauntlet::check_target`]) or N-way differential across every
//!   registered target with majority-vote attribution
//!   ([`Gauntlet::check_differential`]).

use crate::bugs::{BugKind, BugReport, CompilerArea, Platform, Technique};
use p4_ir::Program;
use p4_mutate::{
    MetamorphicChecker, MetamorphicFinding, MetamorphicFindingKind, MetamorphicOptions,
    MutationCoverage,
};
use p4_reduce::{CrashOracle, Oracle, Reducer, ReducerConfig, SemanticOracle};
use p4_symbolic::{
    check_equivalence, generate_tests, Equivalence, EquivalenceError, ValidationSession,
};
use p4c::{CompileError, CompileResult, Compiler, PassArea};
use smt::Value;
use std::collections::{BTreeMap, BTreeSet};
use targets::{drive_target, testgen_options, Target, TargetError, TargetFinding};

/// The result of putting one program through one platform's pipeline.
#[derive(Debug, Clone, Default)]
pub struct ProgramOutcome {
    pub reports: Vec<BugReport>,
    /// True when the program compiled and every check passed.
    pub clean: bool,
    /// The fully lowered program, when compilation succeeded (open-compiler
    /// checks only).  Campaign workers hand it to
    /// [`Gauntlet::check_mutants_against`] so the metamorphic dimension
    /// does not recompile the seed.
    pub compiled: Option<Program>,
}

impl ProgramOutcome {
    fn with_reports(reports: Vec<BugReport>) -> ProgramOutcome {
        ProgramOutcome {
            clean: reports.is_empty(),
            reports,
            compiled: None,
        }
    }
}

fn area_of(pass_area: PassArea) -> CompilerArea {
    match pass_area {
        PassArea::FrontEnd => CompilerArea::FrontEnd,
        PassArea::MidEnd => CompilerArea::MidEnd,
        PassArea::BackEnd => CompilerArea::BackEnd,
    }
}

/// Looks up the area of a pass by name in the reference pipeline (used when
/// a semantic bug is attributed to a pass).
fn area_of_pass(pass_name: &str) -> CompilerArea {
    for pass in p4c::passes::default_pipeline() {
        if pass.name() == pass_name {
            return area_of(pass.area());
        }
    }
    CompilerArea::FrontEnd
}

/// Options for a Gauntlet run.
#[derive(Debug, Clone)]
pub struct GauntletOptions {
    /// Maximum tests generated per program for black-box back ends.
    pub max_tests: usize,
    /// Validate the pass chain incrementally: interpret each snapshot once
    /// (adjacent checks share it) and decide all queries with one
    /// incremental solver.  Disable to force the paper's naive
    /// re-interpret-and-re-bitblast-per-pair behaviour, e.g. for the
    /// before/after comparison in the `gen_throughput` bench.
    pub incremental: bool,
    /// Budget for [`Gauntlet::reduce_report`] (and campaigns that enable
    /// report reduction).
    pub reducer: ReducerConfig,
}

impl Default for GauntletOptions {
    fn default() -> Self {
        GauntletOptions {
            max_tests: 8,
            incremental: true,
            reducer: ReducerConfig::default(),
        }
    }
}

/// The Gauntlet tool.
#[derive(Debug, Default)]
pub struct Gauntlet {
    pub options: GauntletOptions,
}

impl Gauntlet {
    pub fn new(options: GauntletOptions) -> Gauntlet {
        Gauntlet { options }
    }

    /// Builds the bug oracle matching a finding from the open-compiler
    /// pipeline: crash-like findings re-run only the compiler driver (the
    /// cheap oracle); semantic and invalid-transformation findings re-run
    /// per-pass translation validation, sharing one incremental
    /// [`ValidationSession`] across all shrink steps.
    pub fn open_compiler_oracle(report: &BugReport, compiler: Compiler) -> Box<dyn Oracle> {
        if report.kind.is_crash_like() {
            Box::new(CrashOracle::new(compiler))
        } else {
            Box::new(SemanticOracle::new(compiler))
        }
    }

    /// Delta-debugs `program` down to a minimal reproducer of `report` and
    /// attaches the result (`minimized` + `reduction` stats) to the report.
    ///
    /// The oracle must match the finding (see [`Gauntlet::open_compiler_oracle`]
    /// and `SeededBug::oracle`); a candidate is only ever accepted when it
    /// reproduces the *same* [`BugReport::dedup_key`], so reduction cannot
    /// drift onto a different bug.  Returns false when the program does not
    /// reproduce the report through the given oracle.
    pub fn reduce_report(
        &self,
        oracle: &mut dyn Oracle,
        program: &Program,
        report: &mut BugReport,
    ) -> bool {
        let target = report.dedup_key();
        let reducer = Reducer::new(self.options.reducer.clone());
        match reducer.reduce(oracle, program, &target) {
            Some(reduction) => {
                report.minimized = Some(p4_ir::print_program(&reduction.program));
                report.reduction = Some(reduction.stats);
                true
            }
            None => false,
        }
    }

    /// Technique 1 + 2 against an open compiler (P4C): compile, report
    /// crashes, then translation-validate every pass.
    pub fn check_open_compiler(&self, compiler: &Compiler, program: &Program) -> ProgramOutcome {
        self.check_open_compiler_in(&mut None, compiler, program)
    }

    /// [`Gauntlet::check_open_compiler`] with an explicit (optional)
    /// validation session: campaign workers hold one session per epoch —
    /// attached to the pool's shared `p4_symbolic::EpochCache` — so
    /// semantics and verdicts memoise across every program the pool checks.
    /// With `None` the per-program session policy of
    /// [`Gauntlet::validate_translation`] applies unchanged.
    pub fn check_open_compiler_in(
        &self,
        session: &mut Option<ValidationSession>,
        compiler: &Compiler,
        program: &Program,
    ) -> ProgramOutcome {
        match compiler.compile(program) {
            Err(CompileError::Crash {
                pass,
                area,
                message,
            }) => ProgramOutcome::with_reports(vec![BugReport::new(
                BugKind::Crash,
                Platform::P4c,
                area_of(area),
                Technique::RandomGeneration,
                Some(pass),
                message,
            )]),
            Err(CompileError::Rejected { pass, diagnostics }) => {
                // The program was validated by the reference checker before
                // generation, so a rejection means the compiler incorrectly
                // refuses a valid program.
                ProgramOutcome::with_reports(vec![BugReport::new(
                    BugKind::Rejection,
                    Platform::P4c,
                    area_of_pass(&pass),
                    Technique::RandomGeneration,
                    Some(pass),
                    diagnostics.join("; "),
                )])
            }
            Ok(result) => {
                let reports = match session {
                    Some(_) => self.validate_translation_in(session, &result),
                    None => self.validate_translation(&result),
                };
                let mut outcome = ProgramOutcome::with_reports(reports);
                outcome.compiled = Some(result.program);
                outcome
            }
        }
    }

    /// Translation validation over the per-pass snapshots of a successful
    /// compilation (paper §5.2).
    ///
    /// With [`GauntletOptions::incremental`] set (the default), the chain
    /// p₀ ≡ p₁ ≡ … ≡ pₙ is validated through one [`ValidationSession`]:
    /// every snapshot is interpreted once and serves as both the right-hand
    /// side of one check and the left-hand side of the next, and all
    /// equivalence queries share one incremental solver.
    pub fn validate_translation(&self, result: &CompileResult) -> Vec<BugReport> {
        let mut session = if self.options.incremental {
            Some(ValidationSession::new())
        } else {
            None
        };
        self.validate_translation_in(&mut session, result)
    }

    /// Translation validation with an explicit (optional) session, allowing
    /// callers to share incremental state across *programs* as well as
    /// across the passes of one program.
    pub fn validate_translation_in(
        &self,
        session: &mut Option<ValidationSession>,
        result: &CompileResult,
    ) -> Vec<BugReport> {
        let mut reports = Vec::new();
        for (before, after) in result.pass_pairs() {
            // Re-parse the emitted program; a parse failure is an invalid
            // transformation (§7.2).
            if let Err(error) = p4_parser::parse_program(&after.printed) {
                reports.push(BugReport::new(
                    BugKind::InvalidTransformation,
                    Platform::P4c,
                    area_of(after.area),
                    Technique::TranslationValidation,
                    Some(after.pass_name.clone()),
                    format!("emitted program no longer parses: {error}"),
                ));
                continue;
            }
            let verdict = match session.as_mut() {
                Some(session) => session.check_pair(&before.program, &after.program),
                None => check_equivalence(&before.program, &after.program),
            };
            match verdict {
                Ok(Equivalence::Equal) => {}
                Ok(Equivalence::NotEqual(counterexample)) => {
                    reports.push(BugReport::new(
                        BugKind::Semantic,
                        Platform::P4c,
                        area_of(after.area),
                        Technique::TranslationValidation,
                        Some(after.pass_name.clone()),
                        format!("{counterexample}"),
                    ));
                }
                Err(EquivalenceError::StructureMismatch { block, detail }) => {
                    reports.push(BugReport::new(
                        BugKind::InvalidTransformation,
                        Platform::P4c,
                        area_of(after.area),
                        Technique::TranslationValidation,
                        Some(after.pass_name.clone()),
                        format!("structure mismatch in `{block}`: {detail}"),
                    ));
                }
                Err(EquivalenceError::Interpreter(_)) => {
                    // The interpreter cannot handle this program: skip, as the
                    // paper does for unsupported constructs (§8).
                }
            }
        }
        reports
    }

    /// The second bug-finding dimension — metamorphic mutation testing
    /// (`p4-mutate`, the EMI-style oracle of paper §8): derive
    /// semantics-preserving mutants of `program`, compile seed and every
    /// mutant with the checker's compiler, and prove `compile(mutant) ≡
    /// compile(seed)` end-to-end through the checker's hash-consed
    /// incremental `ValidationSession`.  A divergence is reported as
    /// [`BugKind::Metamorphic`], de-duplicated by the (ddmin-minimised)
    /// mutator chain plus the diverging output field; compiler crashes and
    /// rejections on a mutant are reported under their own kinds so they
    /// collapse with the same defect found by plain crash detection.
    ///
    /// `seed` seeds the mutation streams: the same `(program, options,
    /// seed)` triple yields byte-identical reports on any worker, which is
    /// how `HuntConfig::mutation` folds this into the ordered-commit
    /// determinism contract.
    pub fn check_mutants(
        &self,
        checker: &mut MetamorphicChecker,
        program: &Program,
        options: &MetamorphicOptions,
        seed: u64,
    ) -> MutationOutcome {
        let outcome = p4_reduce::metamorphic_findings(checker, program, options, seed);
        MutationOutcome {
            reports: outcome.findings.iter().map(metamorphic_report).collect(),
            coverage: outcome.coverage,
            mutants_checked: outcome.mutants_checked,
        }
    }

    /// [`Gauntlet::check_mutants`] with the seed's compiled form supplied by
    /// the caller (see [`ProgramOutcome::compiled`]) — saves one full
    /// pipeline run per hunted program.
    pub fn check_mutants_against(
        &self,
        checker: &mut MetamorphicChecker,
        seed_final: &Program,
        program: &Program,
        options: &MetamorphicOptions,
        seed: u64,
    ) -> MutationOutcome {
        let outcome =
            p4_reduce::metamorphic_findings_against(checker, seed_final, program, options, seed);
        MutationOutcome {
            reports: outcome.findings.iter().map(metamorphic_report).collect(),
            coverage: outcome.coverage,
            mutants_checked: outcome.mutants_checked,
        }
    }

    /// Technique 3 against one black-box back end: compile for the target,
    /// generate tests from the input program's symbolic semantics, replay
    /// them, and package divergences as bug reports.  Works uniformly for
    /// every [`Target`] implementation — back ends are selected through the
    /// `targets::TargetRegistry`, not compile-time branching.
    pub fn check_target(&self, target: &dyn Target, program: &Program) -> ProgramOutcome {
        let _telemetry = gauntlet_telemetry::Span::begin(gauntlet_telemetry::Stage::Testgen);
        let platform = target_platform(target);
        let reports = drive_target(target, program, self.options.max_tests)
            .into_iter()
            .map(|finding| finding_report(finding, platform).attributed_to(target.name()))
            .collect();
        ProgramOutcome::with_reports(reports)
    }

    /// N-way differential testgen (the multi-backend scenario of the
    /// paper's campaign): generate tests once from the input program's
    /// semantics, replay every test on *all* given targets, and
    /// majority-vote per output field to attribute which participant —
    /// one of the targets, or the test-generation model itself —
    /// disagrees.
    ///
    /// Per (test, field) the voters are the model's expected value plus
    /// every target's observed value; participants outside the strict
    /// majority are suspects.  When no strict majority exists the model is
    /// trusted (its semantics are the specification) and every dissenting
    /// target is a suspect.  When a strict majority of targets out-votes
    /// the model, the finding is attributed to `"model"` — with all targets
    /// consuming the same front/mid end output, that points at the shared
    /// compiler stages or at our own oracle (the false-alarm discipline of
    /// §5.2).
    pub fn check_differential(
        &self,
        targets: &[Box<dyn Target>],
        program: &Program,
    ) -> ProgramOutcome {
        let _telemetry = gauntlet_telemetry::Span::begin(gauntlet_telemetry::Stage::Testgen);
        let mut reports = Vec::new();
        // Compile on every target.  Crashes are findings; restriction
        // rejections (and crash-only targets) just drop out of the vote.
        let mut runnable = Vec::new();
        for target in targets {
            match target.compile(program) {
                Ok(artifact) => {
                    if target.capabilities().semantic_tests {
                        runnable.push((target, artifact));
                    }
                }
                Err(TargetError::Crash { pass, message }) => {
                    reports.push(
                        finding_report(
                            TargetFinding::Crash { pass, message },
                            target_platform(&**target),
                        )
                        .attributed_to(target.name()),
                    );
                }
                Err(TargetError::Rejected { .. }) => {}
            }
        }
        if runnable.is_empty() {
            return ProgramOutcome::with_reports(reports);
        }
        // One test suite, generated from the model, replayed everywhere —
        // which is only sound when every voting target shares the same
        // capabilities (test block, undefined-read policy).  A mixed pool
        // would replay tests generated under one target's policy on targets
        // with another, misattributing every resulting divergence, so fail
        // fast instead.
        let caps = runnable[0].0.capabilities();
        for (target, _) in &runnable[1..] {
            assert_eq!(
                target.capabilities(),
                caps,
                "differential targets must share capabilities: `{}` differs from `{}`",
                target.name(),
                runnable[0].0.name()
            );
        }
        let options = testgen_options(&caps, self.options.max_tests);
        let tests = match generate_tests(program, &options) {
            Ok(tests) => tests,
            Err(_) => return ProgramOutcome::with_reports(reports),
        };

        let mut suspects: BTreeMap<usize, Suspect> = BTreeMap::new();
        for test in &tests {
            // Observed values per target: `None` entries abstain (skipped).
            let observations: Vec<Option<BTreeMap<String, Value>>> = runnable
                .iter()
                .map(|(_, artifact)| match artifact.run_test(test) {
                    targets::TestOutcome::Pass => Some(BTreeMap::new()),
                    targets::TestOutcome::Mismatch(mismatches) => Some(
                        mismatches
                            .into_iter()
                            .map(|m| (m.field, m.actual))
                            .collect(),
                    ),
                    targets::TestOutcome::Skipped(_) => None,
                })
                .collect();
            // Fields where at least one target diverged from the model.
            let contested: BTreeSet<&str> = observations
                .iter()
                .flatten()
                .flat_map(|fields| fields.keys().map(String::as_str))
                .collect();
            let mut failed_this_test: BTreeSet<usize> = BTreeSet::new();
            for field in contested {
                let Some(expected) = test.expected.get(field) else {
                    continue;
                };
                // One vote per participant; targets that pass a field vote
                // with the model (the harness compared them equal).
                let mut votes: Vec<(usize, &Value)> = vec![(MODEL, expected)];
                for (index, observation) in observations.iter().enumerate() {
                    if let Some(fields) = observation {
                        votes.push((index, fields.get(field).unwrap_or(expected)));
                    }
                }
                for (participant, value) in losers(&votes) {
                    failed_this_test.insert(participant);
                    let consensus = consensus_of(&votes, participant);
                    suspects
                        .entry(participant)
                        .or_default()
                        .observe(field, &consensus, value);
                }
            }
            for participant in failed_this_test {
                suspects.entry(participant).or_default().failing_tests += 1;
            }
        }

        // Deterministic report order: targets in input order, model last.
        for (participant, suspect) in &suspects {
            // `consensus` is what the other participants agreed on;
            // `observed` is the suspect's own value (for the MODEL suspect,
            // its "observation" is the expected output it computed).
            let Some((field, consensus, observed)) = &suspect.first else {
                continue;
            };
            let report = if *participant == MODEL {
                BugReport::new(
                    BugKind::Semantic,
                    Platform::Model,
                    // Every target consumes the shared front/mid end's
                    // output, so a target majority against the model points
                    // at those shared stages (or at the oracle itself).
                    CompilerArea::MidEnd,
                    Technique::SymbolicExecution,
                    None,
                    format!(
                        "differential mismatch on `{field}`: target consensus {consensus:?}, model expected {observed:?} ({} of {} tests failed)",
                        suspect.failing_tests,
                        tests.len()
                    ),
                )
                .attributed_to("model")
            } else {
                let target = runnable[*participant].0.as_ref();
                BugReport::new(
                    BugKind::Semantic,
                    target_platform(target),
                    CompilerArea::BackEnd,
                    Technique::SymbolicExecution,
                    None,
                    format!(
                        "{} differential mismatch on `{field}`: consensus {consensus:?}, observed {observed:?} ({} of {} tests failed, {}-way)",
                        target.harness(),
                        suspect.failing_tests,
                        tests.len(),
                        runnable.len()
                    ),
                )
                .attributed_to(target.name())
            };
            reports.push(report);
        }
        ProgramOutcome::with_reports(reports)
    }
}

/// The result of checking one seed program's mutant family
/// ([`Gauntlet::check_mutants`]).
#[derive(Debug, Clone, Default)]
pub struct MutationOutcome {
    pub reports: Vec<BugReport>,
    /// Which mutation rules were applied while building the family
    /// (reported by campaigns next to pass-rewrite coverage).
    pub coverage: MutationCoverage,
    /// Mutants that actually mutated and were checked.
    pub mutants_checked: usize,
}

/// Packages a metamorphic finding as a [`BugReport`].  First message lines
/// stay in lock-step with `p4_reduce::metamorphic_signature`, which the
/// seeded-bug signature test pins.
fn metamorphic_report(finding: &MetamorphicFinding) -> BugReport {
    match finding.kind {
        MetamorphicFindingKind::Divergence => BugReport::new(
            BugKind::Metamorphic,
            Platform::P4c,
            // The end-to-end oracle cannot localise a pass; like the paper's
            // EMI discussion, findings point at the shared front end until a
            // human (or reduction) narrows them down.
            CompilerArea::FrontEnd,
            Technique::MetamorphicMutation,
            None,
            format!("{}\n{}", finding.headline(), finding.detail),
        ),
        MetamorphicFindingKind::Crash => BugReport::new(
            BugKind::Crash,
            Platform::P4c,
            finding
                .pass
                .as_deref()
                .map(area_of_pass)
                .unwrap_or(CompilerArea::FrontEnd),
            Technique::MetamorphicMutation,
            finding.pass.clone(),
            format!(
                "{}\n  via mutation chain `{}`",
                finding.detail,
                finding.chain_key()
            ),
        ),
        MetamorphicFindingKind::Rejection => BugReport::new(
            BugKind::Rejection,
            Platform::P4c,
            finding
                .pass
                .as_deref()
                .map(area_of_pass)
                .unwrap_or(CompilerArea::FrontEnd),
            Technique::MetamorphicMutation,
            finding.pass.clone(),
            format!(
                "{}\n  via mutation chain `{}`",
                finding.detail,
                finding.chain_key()
            ),
        ),
    }
}

/// The sentinel participant index of the test-generation model.
const MODEL: usize = usize::MAX;

/// Per-suspect accumulator for differential attribution.
#[derive(Default)]
struct Suspect {
    failing_tests: usize,
    /// First divergence seen: (field, consensus value, suspect's value).
    first: Option<(String, Value, Value)>,
}

impl Suspect {
    fn observe(&mut self, field: &str, consensus: &Value, value: &Value) {
        if self.first.is_none() {
            self.first = Some((field.to_string(), consensus.clone(), value.clone()));
        }
    }
}

/// Canonical form of a vote value, congruent with the comparison rule of
/// `harness::compare_outputs`: everything (booleans included — the harness
/// substitutes `Bool(false)` for fields missing from an observation, which
/// must group with a genuine zero) is compared as a 128-bit vector.
fn vote_key(value: &Value) -> String {
    format!("{:?}", value.as_bv().resize(128))
}

/// The participants voted out by strict majority; on a tie, the model is
/// trusted and every participant disagreeing with it loses.
fn losers<'a>(votes: &[(usize, &'a Value)]) -> Vec<(usize, &'a Value)> {
    let mut tally: BTreeMap<String, usize> = BTreeMap::new();
    for (_, value) in votes {
        *tally.entry(vote_key(value)).or_insert(0) += 1;
    }
    let majority = tally
        .iter()
        .max_by_key(|(_, count)| **count)
        .filter(|(_, count)| **count * 2 > votes.len())
        .map(|(key, _)| key.clone());
    let reference = match majority {
        Some(key) => key,
        // No strict majority: the model's semantics are the specification.
        None => {
            let model_value = votes
                .iter()
                .find(|(participant, _)| *participant == MODEL)
                .map(|(_, value)| vote_key(value))
                .unwrap_or_default();
            model_value
        }
    };
    votes
        .iter()
        .filter(|(_, value)| vote_key(value) != reference)
        .map(|(participant, value)| (*participant, *value))
        .collect()
}

/// The consensus value a suspect diverged from (majority of the others).
fn consensus_of(votes: &[(usize, &Value)], suspect: usize) -> Value {
    let mut tally: BTreeMap<String, (usize, Value)> = BTreeMap::new();
    for (participant, value) in votes {
        if *participant == suspect {
            continue;
        }
        let entry = tally
            .entry(vote_key(value))
            .or_insert_with(|| (0, (*value).clone()));
        entry.0 += 1;
    }
    tally
        .into_values()
        .max_by_key(|(count, _)| *count)
        .map(|(_, value)| value)
        .unwrap_or(Value::Bool(false))
}

/// Resolves a target's platform, panicking with guidance when a custom
/// target uses a label `gauntlet-core` has no variant for (see the
/// "Adding a new target" section of the README).
fn target_platform(target: &dyn Target) -> Platform {
    Platform::for_label(target.platform_label()).unwrap_or_else(|| {
        panic!(
            "target `{}` reports unknown platform label `{}`; add a Platform variant or reuse an existing label",
            target.name(),
            target.platform_label()
        )
    })
}

/// Packages a [`TargetFinding`] as a [`BugReport`] on `platform`.
fn finding_report(finding: TargetFinding, platform: Platform) -> BugReport {
    match finding {
        TargetFinding::Crash { pass, message } => BugReport::new(
            BugKind::Crash,
            platform,
            CompilerArea::BackEnd,
            Technique::RandomGeneration,
            Some(pass),
            message,
        ),
        TargetFinding::Semantic { message } => BugReport::new(
            BugKind::Semantic,
            platform,
            CompilerArea::BackEnd,
            Technique::SymbolicExecution,
            None,
            message,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4c::FrontEndBugClass;
    use targets::{BackEndBugClass, Bmv2Target, TargetRegistry, TofinoBackend};

    #[test]
    fn reference_compiler_is_clean_on_the_skeleton_programs() {
        let gauntlet = Gauntlet::default();
        let compiler = Compiler::reference();
        for program in [builder::trivial_program(), {
            let (locals, apply) = builder::figure3_table_control();
            builder::v1model_program(locals, apply)
        }] {
            let outcome = gauntlet.check_open_compiler(&compiler, &program);
            assert!(outcome.clean, "false alarm: {:#?}", outcome.reports);
        }
    }

    #[test]
    fn seeded_defuse_bug_is_reported_as_a_semantic_bug_in_the_right_pass() {
        let gauntlet = Gauntlet::default();
        let mut compiler = Compiler::reference();
        compiler.replace_pass(FrontEndBugClass::DefUseDropsParameterWrites.faulty_pass());
        let outcome = gauntlet.check_open_compiler(&compiler, &builder::trivial_program());
        assert!(!outcome.clean);
        let report = &outcome.reports[0];
        assert_eq!(report.kind, BugKind::Semantic);
        assert_eq!(report.pass.as_deref(), Some("SimplifyDefUse"));
    }

    /// Reduction through the pipeline API: a padded trigger program shrinks
    /// while still reproducing the identical dedup key.
    #[test]
    fn reduce_report_attaches_a_minimized_reproducer() {
        use p4_ir::{Block, Expr, Statement};
        let gauntlet = Gauntlet::default();
        let build = || {
            let mut compiler = Compiler::reference();
            compiler.replace_pass(FrontEndBugClass::DefUseDropsParameterWrites.faulty_pass());
            compiler
        };
        let mut statements: Vec<Statement> = (0..8)
            .map(|i| Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(i, 8)))
            .collect();
        statements.push(Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::uint(1, 8),
        ));
        let program = builder::v1model_program(vec![], Block::new(statements));
        let outcome = gauntlet.check_open_compiler(&build(), &program);
        assert!(!outcome.clean);
        let mut report = outcome.reports[0].clone();
        let target = report.dedup_key();
        let mut oracle = Gauntlet::open_compiler_oracle(&report, build());
        assert!(gauntlet.reduce_report(&mut *oracle, &program, &mut report));
        let stats = report.reduction.expect("stats attached");
        assert!(
            stats.final_statements < stats.initial_statements,
            "{stats:?}"
        );
        // The minimized source re-parses and still reproduces the same key.
        let minimized =
            p4_parser::parse_program(report.minimized.as_deref().expect("minimized attached"))
                .expect("minimized reproducer parses");
        assert!(oracle.reproduces(&minimized, &target));
    }

    /// The metamorphic dimension pays for itself exactly where translation
    /// validation is provably blind: corruption applied before the first
    /// snapshot makes every pass pair self-consistent, yet the mutant
    /// family convicts the compiler end-to-end.
    #[test]
    fn metamorphic_check_convicts_pre_snapshot_corruption_tv_misses() {
        use p4_ir::{Block, Expr, Statement};
        let trigger = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(7, 8)),
            ]),
        );
        let build = || {
            let mut compiler = Compiler::reference();
            compiler.seed_input_corruption(p4c::DriverBugClass::SnapshotDropsFinalWrite);
            compiler
        };
        let gauntlet = Gauntlet::default();
        // Crash detection + per-pass translation validation: silent.
        let open = gauntlet.check_open_compiler(&build(), &trigger);
        assert!(open.clean, "TV must be blind here: {:#?}", open.reports);
        // Metamorphic mutation: convicted.
        let mut checker = MetamorphicChecker::new(build());
        let outcome = gauntlet.check_mutants(
            &mut checker,
            &trigger,
            &MetamorphicOptions::default(),
            p4_mutate::CAMPAIGN_MUTATION_SEED,
        );
        assert!(outcome.mutants_checked > 0);
        let divergence = outcome
            .reports
            .iter()
            .find(|r| r.kind == BugKind::Metamorphic)
            .unwrap_or_else(|| panic!("no metamorphic finding: {:#?}", outcome.reports));
        assert_eq!(divergence.platform, Platform::P4c);
        assert!(
            divergence.message.starts_with("mutation chain `"),
            "{}",
            divergence.message
        );
        // And the reference compiler stays metamorphically clean (the
        // false-alarm discipline of §5.2 applies to the new oracle too).
        let mut reference = MetamorphicChecker::new(Compiler::reference());
        let clean = gauntlet.check_mutants(
            &mut reference,
            &trigger,
            &MetamorphicOptions::default(),
            p4_mutate::CAMPAIGN_MUTATION_SEED,
        );
        assert!(clean.reports.is_empty(), "{:#?}", clean.reports);
    }

    fn exit_program() -> Program {
        use p4_ir::{Block, Expr, Statement};
        builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        )
    }

    #[test]
    fn bmv2_backend_bug_is_reported_via_the_target_trait() {
        let program = exit_program();
        let gauntlet = Gauntlet::default();
        let clean = gauntlet.check_target(&Bmv2Target::new(), &program);
        assert!(clean.clean);
        let buggy = gauntlet.check_target(
            &Bmv2Target::with_bug(BackEndBugClass::Bmv2ExitIgnored),
            &program,
        );
        assert!(!buggy.clean);
        assert_eq!(buggy.reports[0].platform, Platform::Bmv2);
        assert_eq!(buggy.reports[0].attributed_to.as_deref(), Some("bmv2"));
    }

    #[test]
    fn tofino_crash_and_semantic_bugs_are_reported() {
        use p4_ir::{BinOp, Block, Expr, Statement};
        let gauntlet = Gauntlet::default();
        // Semantic: saturating add lowered to wrapping add.
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::SatAdd,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(255, 8),
                ),
            )]),
        );
        let clean = gauntlet.check_target(&TofinoBackend::new(), &program);
        assert!(clean.clean, "false alarm: {:#?}", clean.reports);
        let buggy = gauntlet.check_target(
            &TofinoBackend::with_bug(BackEndBugClass::TofinoSaturationWraps),
            &program,
        );
        assert!(!buggy.clean);
        assert_eq!(buggy.reports[0].kind, BugKind::Semantic);

        // Crash: slice lowering assertion.
        let slice_program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                rhs: Expr::uint(1, 4),
            }]),
        );
        let crash = gauntlet.check_target(
            &TofinoBackend::with_bug(BackEndBugClass::TofinoSliceLoweringCrash),
            &slice_program,
        );
        assert!(!crash.clean);
        assert_eq!(crash.reports[0].kind, BugKind::Crash);
        assert_eq!(crash.reports[0].platform, Platform::Tofino);
    }

    fn three_way(specs: [&str; 3]) -> Vec<Box<dyn Target>> {
        let registry = TargetRegistry::builtin();
        specs
            .iter()
            .map(|spec| registry.build_spec(spec).expect("builtin spec"))
            .collect()
    }

    #[test]
    fn differential_attributes_the_one_seeded_target() {
        let gauntlet = Gauntlet::default();
        let program = exit_program();
        let targets = three_way(["bmv2+Bmv2ExitIgnored", "tofino", "ref-interp"]);
        let outcome = gauntlet.check_differential(&targets, &program);
        assert!(!outcome.clean);
        assert!(
            outcome
                .reports
                .iter()
                .all(|r| r.attributed_to.as_deref() == Some("bmv2")),
            "{:#?}",
            outcome.reports
        );
        assert_eq!(outcome.reports[0].platform, Platform::Bmv2);
    }

    #[test]
    fn differential_is_clean_when_all_targets_agree_with_the_model() {
        let gauntlet = Gauntlet::default();
        let outcome = gauntlet.check_differential(
            &three_way(["bmv2", "tofino", "ref-interp"]),
            &exit_program(),
        );
        assert!(outcome.clean, "{:#?}", outcome.reports);
    }

    #[test]
    fn differential_attributes_to_the_model_when_targets_are_unanimous() {
        let gauntlet = Gauntlet::default();
        // Every target ignores `exit`, so they all agree with each other
        // and unanimously out-vote the model's expectation.
        let targets = three_way([
            "bmv2+Bmv2ExitIgnored",
            "tofino+TofinoExitIgnored",
            "ref-interp+Bmv2ExitIgnored",
        ]);
        let outcome = gauntlet.check_differential(&targets, &exit_program());
        assert!(!outcome.clean);
        assert_eq!(outcome.reports.len(), 1, "{:#?}", outcome.reports);
        assert_eq!(outcome.reports[0].attributed_to.as_deref(), Some("model"));
        assert_eq!(outcome.reports[0].platform, Platform::Model);
        // Value order in the message: the exit-dropping targets keep
        // executing and observe 2, while the model expects 1.
        assert!(
            outcome.reports[0]
                .message
                .contains("target consensus Bv(8w2), model expected Bv(8w1)"),
            "{}",
            outcome.reports[0].message
        );
    }
}
