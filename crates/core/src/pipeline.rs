//! The Gauntlet pipeline: the three techniques glued together.
//!
//! * crash detection — compile a (random) program and catch abnormal
//!   termination (paper §4, Figure 2 left side);
//! * translation validation — re-parse and symbolically compare the program
//!   emitted after every modifying pass, pinpointing the faulty pass
//!   (paper §5, Figure 2);
//! * symbolic-execution testing — generate input/output tests from the
//!   input program's semantics and replay them on a black-box back end
//!   (paper §6, Figure 4).

use crate::bugs::{BugKind, BugReport, CompilerArea, Platform, Technique};
use p4_ir::Program;
use p4_reduce::{CrashOracle, Oracle, Reducer, ReducerConfig, SemanticOracle};
use p4_symbolic::{
    check_equivalence, generate_tests, Equivalence, EquivalenceError, TestGenOptions,
    ValidationSession,
};
use p4c::{CompileError, CompileResult, Compiler, PassArea};
use targets::{run_ptf, run_stf, Bmv2Target, TofinoBackend, TofinoError};

/// The result of putting one program through one platform's pipeline.
#[derive(Debug, Clone, Default)]
pub struct ProgramOutcome {
    pub reports: Vec<BugReport>,
    /// True when the program compiled and every check passed.
    pub clean: bool,
}

impl ProgramOutcome {
    fn with_reports(reports: Vec<BugReport>) -> ProgramOutcome {
        ProgramOutcome {
            clean: reports.is_empty(),
            reports,
        }
    }
}

fn area_of(pass_area: PassArea) -> CompilerArea {
    match pass_area {
        PassArea::FrontEnd => CompilerArea::FrontEnd,
        PassArea::MidEnd => CompilerArea::MidEnd,
        PassArea::BackEnd => CompilerArea::BackEnd,
    }
}

/// Looks up the area of a pass by name in the reference pipeline (used when
/// a semantic bug is attributed to a pass).
fn area_of_pass(pass_name: &str) -> CompilerArea {
    for pass in p4c::passes::default_pipeline() {
        if pass.name() == pass_name {
            return area_of(pass.area());
        }
    }
    CompilerArea::FrontEnd
}

/// Options for a Gauntlet run.
#[derive(Debug, Clone)]
pub struct GauntletOptions {
    /// Maximum tests generated per program for black-box back ends.
    pub max_tests: usize,
    /// Validate the pass chain incrementally: interpret each snapshot once
    /// (adjacent checks share it) and decide all queries with one
    /// incremental solver.  Disable to force the paper's naive
    /// re-interpret-and-re-bitblast-per-pair behaviour, e.g. for the
    /// before/after comparison in the `gen_throughput` bench.
    pub incremental: bool,
    /// Budget for [`Gauntlet::reduce_report`] (and campaigns that enable
    /// report reduction).
    pub reducer: ReducerConfig,
}

impl Default for GauntletOptions {
    fn default() -> Self {
        GauntletOptions {
            max_tests: 8,
            incremental: true,
            reducer: ReducerConfig::default(),
        }
    }
}

/// The Gauntlet tool.
#[derive(Debug, Default)]
pub struct Gauntlet {
    pub options: GauntletOptions,
}

impl Gauntlet {
    pub fn new(options: GauntletOptions) -> Gauntlet {
        Gauntlet { options }
    }

    /// Builds the bug oracle matching a finding from the open-compiler
    /// pipeline: crash-like findings re-run only the compiler driver (the
    /// cheap oracle); semantic and invalid-transformation findings re-run
    /// per-pass translation validation, sharing one incremental
    /// [`ValidationSession`] across all shrink steps.
    pub fn open_compiler_oracle(report: &BugReport, compiler: Compiler) -> Box<dyn Oracle> {
        if report.kind.is_crash_like() {
            Box::new(CrashOracle::new(compiler))
        } else {
            Box::new(SemanticOracle::new(compiler))
        }
    }

    /// Delta-debugs `program` down to a minimal reproducer of `report` and
    /// attaches the result (`minimized` + `reduction` stats) to the report.
    ///
    /// The oracle must match the finding (see [`Gauntlet::open_compiler_oracle`]
    /// and `SeededBug::oracle`); a candidate is only ever accepted when it
    /// reproduces the *same* [`BugReport::dedup_key`], so reduction cannot
    /// drift onto a different bug.  Returns false when the program does not
    /// reproduce the report through the given oracle.
    pub fn reduce_report(
        &self,
        oracle: &mut dyn Oracle,
        program: &Program,
        report: &mut BugReport,
    ) -> bool {
        let target = report.dedup_key();
        let reducer = Reducer::new(self.options.reducer.clone());
        match reducer.reduce(oracle, program, &target) {
            Some(reduction) => {
                report.minimized = Some(p4_ir::print_program(&reduction.program));
                report.reduction = Some(reduction.stats);
                true
            }
            None => false,
        }
    }

    /// Technique 1 + 2 against an open compiler (P4C): compile, report
    /// crashes, then translation-validate every pass.
    pub fn check_open_compiler(&self, compiler: &Compiler, program: &Program) -> ProgramOutcome {
        match compiler.compile(program) {
            Err(CompileError::Crash {
                pass,
                area,
                message,
            }) => ProgramOutcome::with_reports(vec![BugReport::new(
                BugKind::Crash,
                Platform::P4c,
                area_of(area),
                Technique::RandomGeneration,
                Some(pass),
                message,
            )]),
            Err(CompileError::Rejected { pass, diagnostics }) => {
                // The program was validated by the reference checker before
                // generation, so a rejection means the compiler incorrectly
                // refuses a valid program.
                ProgramOutcome::with_reports(vec![BugReport::new(
                    BugKind::Rejection,
                    Platform::P4c,
                    area_of_pass(&pass),
                    Technique::RandomGeneration,
                    Some(pass),
                    diagnostics.join("; "),
                )])
            }
            Ok(result) => ProgramOutcome::with_reports(self.validate_translation(&result)),
        }
    }

    /// Translation validation over the per-pass snapshots of a successful
    /// compilation (paper §5.2).
    ///
    /// With [`GauntletOptions::incremental`] set (the default), the chain
    /// p₀ ≡ p₁ ≡ … ≡ pₙ is validated through one [`ValidationSession`]:
    /// every snapshot is interpreted once and serves as both the right-hand
    /// side of one check and the left-hand side of the next, and all
    /// equivalence queries share one incremental solver.
    pub fn validate_translation(&self, result: &CompileResult) -> Vec<BugReport> {
        let mut session = if self.options.incremental {
            Some(ValidationSession::new())
        } else {
            None
        };
        self.validate_translation_in(&mut session, result)
    }

    /// Translation validation with an explicit (optional) session, allowing
    /// callers to share incremental state across *programs* as well as
    /// across the passes of one program.
    pub fn validate_translation_in(
        &self,
        session: &mut Option<ValidationSession>,
        result: &CompileResult,
    ) -> Vec<BugReport> {
        let mut reports = Vec::new();
        for (before, after) in result.pass_pairs() {
            // Re-parse the emitted program; a parse failure is an invalid
            // transformation (§7.2).
            if let Err(error) = p4_parser::parse_program(&after.printed) {
                reports.push(BugReport::new(
                    BugKind::InvalidTransformation,
                    Platform::P4c,
                    area_of(after.area),
                    Technique::TranslationValidation,
                    Some(after.pass_name.clone()),
                    format!("emitted program no longer parses: {error}"),
                ));
                continue;
            }
            let verdict = match session.as_mut() {
                Some(session) => session.check_pair(&before.program, &after.program),
                None => check_equivalence(&before.program, &after.program),
            };
            match verdict {
                Ok(Equivalence::Equal) => {}
                Ok(Equivalence::NotEqual(counterexample)) => {
                    reports.push(BugReport::new(
                        BugKind::Semantic,
                        Platform::P4c,
                        area_of(after.area),
                        Technique::TranslationValidation,
                        Some(after.pass_name.clone()),
                        format!("{counterexample}"),
                    ));
                }
                Err(EquivalenceError::StructureMismatch { block, detail }) => {
                    reports.push(BugReport::new(
                        BugKind::InvalidTransformation,
                        Platform::P4c,
                        area_of(after.area),
                        Technique::TranslationValidation,
                        Some(after.pass_name.clone()),
                        format!("structure mismatch in `{block}`: {detail}"),
                    ));
                }
                Err(EquivalenceError::Interpreter(_)) => {
                    // The interpreter cannot handle this program: skip, as the
                    // paper does for unsupported constructs (§8).
                }
            }
        }
        reports
    }

    /// Technique 3 against the BMv2 back end: compile with the shared
    /// front/mid end, then replay generated tests on the (possibly seeded)
    /// target.
    pub fn check_bmv2(
        &self,
        compiler: &Compiler,
        program: &Program,
        target_bug: Option<targets::BackEndBugClass>,
    ) -> ProgramOutcome {
        let compiled = match compiler.compile(program) {
            Ok(result) => result.program,
            Err(_) => return ProgramOutcome::with_reports(Vec::new()),
        };
        let options = TestGenOptions {
            max_tests: self.options.max_tests,
            ..TestGenOptions::default()
        };
        let tests = match generate_tests(program, &options) {
            Ok(tests) => tests,
            Err(_) => return ProgramOutcome::with_reports(Vec::new()),
        };
        let target = match target_bug {
            Some(bug) => Bmv2Target::with_bug(compiled, bug),
            None => Bmv2Target::new(compiled),
        };
        let report = run_stf(&target, &tests);
        let mut reports = Vec::new();
        if report.found_semantic_bug() {
            let first = &report.mismatches[0];
            reports.push(BugReport::new(
                BugKind::Semantic,
                Platform::Bmv2,
                CompilerArea::BackEnd,
                Technique::SymbolicExecution,
                None,
                format!(
                    "STF mismatch on `{}`: expected {:?}, observed {:?} ({} of {} tests failed)",
                    first.field,
                    first.expected,
                    first.actual,
                    report.mismatches.len(),
                    report.total
                ),
            ));
        }
        ProgramOutcome::with_reports(reports)
    }

    /// Technique 3 against the closed-source Tofino back end.
    pub fn check_tofino(&self, backend: &TofinoBackend, program: &Program) -> ProgramOutcome {
        let binary = match backend.compile(program) {
            Ok(binary) => binary,
            Err(TofinoError::Crash { pass, message }) => {
                return ProgramOutcome::with_reports(vec![BugReport::new(
                    BugKind::Crash,
                    Platform::Tofino,
                    CompilerArea::BackEnd,
                    Technique::RandomGeneration,
                    Some(pass),
                    message,
                )]);
            }
            Err(TofinoError::Rejected { .. }) => {
                // Target restriction: the program is simply outside the
                // back end's supported subset — not a bug.
                return ProgramOutcome::with_reports(Vec::new());
            }
        };
        let options = TestGenOptions {
            max_tests: self.options.max_tests,
            ..TestGenOptions::default()
        };
        let tests = match generate_tests(program, &options) {
            Ok(tests) => tests,
            Err(_) => return ProgramOutcome::with_reports(Vec::new()),
        };
        let report = run_ptf(&binary, &tests);
        let mut reports = Vec::new();
        if report.found_semantic_bug() {
            let first = &report.mismatches[0];
            reports.push(BugReport::new(
                BugKind::Semantic,
                Platform::Tofino,
                CompilerArea::BackEnd,
                Technique::SymbolicExecution,
                None,
                format!(
                    "PTF mismatch on `{}`: expected {:?}, observed {:?} ({} of {} tests failed)",
                    first.field,
                    first.expected,
                    first.actual,
                    report.mismatches.len(),
                    report.total
                ),
            ));
        }
        ProgramOutcome::with_reports(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4c::FrontEndBugClass;

    #[test]
    fn reference_compiler_is_clean_on_the_skeleton_programs() {
        let gauntlet = Gauntlet::default();
        let compiler = Compiler::reference();
        for program in [builder::trivial_program(), {
            let (locals, apply) = builder::figure3_table_control();
            builder::v1model_program(locals, apply)
        }] {
            let outcome = gauntlet.check_open_compiler(&compiler, &program);
            assert!(outcome.clean, "false alarm: {:#?}", outcome.reports);
        }
    }

    #[test]
    fn seeded_defuse_bug_is_reported_as_a_semantic_bug_in_the_right_pass() {
        let gauntlet = Gauntlet::default();
        let mut compiler = Compiler::reference();
        compiler.replace_pass(FrontEndBugClass::DefUseDropsParameterWrites.faulty_pass());
        let outcome = gauntlet.check_open_compiler(&compiler, &builder::trivial_program());
        assert!(!outcome.clean);
        let report = &outcome.reports[0];
        assert_eq!(report.kind, BugKind::Semantic);
        assert_eq!(report.pass.as_deref(), Some("SimplifyDefUse"));
    }

    /// Reduction through the pipeline API: a padded trigger program shrinks
    /// while still reproducing the identical dedup key.
    #[test]
    fn reduce_report_attaches_a_minimized_reproducer() {
        use p4_ir::{Block, Expr, Statement};
        let gauntlet = Gauntlet::default();
        let build = || {
            let mut compiler = Compiler::reference();
            compiler.replace_pass(FrontEndBugClass::DefUseDropsParameterWrites.faulty_pass());
            compiler
        };
        let mut statements: Vec<Statement> = (0..8)
            .map(|i| Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(i, 8)))
            .collect();
        statements.push(Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::uint(1, 8),
        ));
        let program = builder::v1model_program(vec![], Block::new(statements));
        let outcome = gauntlet.check_open_compiler(&build(), &program);
        assert!(!outcome.clean);
        let mut report = outcome.reports[0].clone();
        let target = report.dedup_key();
        let mut oracle = Gauntlet::open_compiler_oracle(&report, build());
        assert!(gauntlet.reduce_report(&mut *oracle, &program, &mut report));
        let stats = report.reduction.expect("stats attached");
        assert!(
            stats.final_statements < stats.initial_statements,
            "{stats:?}"
        );
        // The minimized source re-parses and still reproduces the same key.
        let minimized =
            p4_parser::parse_program(report.minimized.as_deref().expect("minimized attached"))
                .expect("minimized reproducer parses");
        assert!(oracle.reproduces(&minimized, &target));
    }

    #[test]
    fn bmv2_backend_bug_is_reported_via_stf() {
        use p4_ir::{Block, Expr, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        );
        let gauntlet = Gauntlet::default();
        let compiler = Compiler::reference();
        let clean = gauntlet.check_bmv2(&compiler, &program, None);
        assert!(clean.clean);
        let buggy = gauntlet.check_bmv2(
            &compiler,
            &program,
            Some(targets::BackEndBugClass::Bmv2ExitIgnored),
        );
        assert!(!buggy.clean);
        assert_eq!(buggy.reports[0].platform, Platform::Bmv2);
    }

    #[test]
    fn tofino_crash_and_semantic_bugs_are_reported() {
        use p4_ir::{BinOp, Block, Expr, Statement};
        let gauntlet = Gauntlet::default();
        // Semantic: saturating add lowered to wrapping add.
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::SatAdd,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(255, 8),
                ),
            )]),
        );
        let clean = gauntlet.check_tofino(&TofinoBackend::new(), &program);
        assert!(clean.clean, "false alarm: {:#?}", clean.reports);
        let buggy = gauntlet.check_tofino(
            &TofinoBackend::with_bug(targets::BackEndBugClass::TofinoSaturationWraps),
            &program,
        );
        assert!(!buggy.clean);
        assert_eq!(buggy.reports[0].kind, BugKind::Semantic);

        // Crash: slice lowering assertion.
        let slice_program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                rhs: Expr::uint(1, 4),
            }]),
        );
        let crash = gauntlet.check_tofino(
            &TofinoBackend::with_bug(targets::BackEndBugClass::TofinoSliceLoweringCrash),
            &slice_program,
        );
        assert!(!crash.clean);
        assert_eq!(crash.reports[0].kind, BugKind::Crash);
        assert_eq!(crash.reports[0].platform, Platform::Tofino);
    }
}
