//! Generator configuration: sizes, probabilities, and feature toggles.
//!
//! The paper emphasises that the amount of randomly generated code is
//! user-configurable so programs stay "small and targeted" (§4.1), and that
//! the generator is steered by adjusting the probability of each AST node
//! kind.  `GeneratorConfig` captures exactly those knobs.

use serde::{Deserialize, Serialize};

/// Relative weights for statement kinds in generated bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatementWeights {
    pub assignment: u32,
    pub slice_assignment: u32,
    pub if_statement: u32,
    pub declaration: u32,
    pub table_apply: u32,
    pub action_call: u32,
    pub function_call: u32,
    pub set_validity: u32,
    pub exit: u32,
}

impl Default for StatementWeights {
    fn default() -> Self {
        StatementWeights {
            assignment: 40,
            slice_assignment: 8,
            if_statement: 18,
            declaration: 12,
            table_apply: 10,
            action_call: 8,
            function_call: 6,
            set_validity: 5,
            exit: 2,
        }
    }
}

impl StatementWeights {
    /// Number of weight fields (the length of [`StatementWeights::as_array`]).
    pub const FIELDS: usize = 9;

    /// The weights as an array in declaration order — the single source of
    /// truth for `total`/`validate` and for the index constants the weight
    /// adapter uses.  Keep [`StatementWeights::from_array`] its exact
    /// inverse when adding a field.
    pub fn as_array(&self) -> [u32; Self::FIELDS] {
        [
            self.assignment,
            self.slice_assignment,
            self.if_statement,
            self.declaration,
            self.table_apply,
            self.action_call,
            self.function_call,
            self.set_validity,
            self.exit,
        ]
    }

    /// Inverse of [`StatementWeights::as_array`].
    pub fn from_array(values: [u32; Self::FIELDS]) -> StatementWeights {
        StatementWeights {
            assignment: values[0],
            slice_assignment: values[1],
            if_statement: values[2],
            declaration: values[3],
            table_apply: values[4],
            action_call: values[5],
            function_call: values[6],
            set_validity: values[7],
            exit: values[8],
        }
    }

    /// Sum of every weight.
    pub fn total(&self) -> u32 {
        self.as_array().iter().sum()
    }

    /// Rejects weight rows the weighted chooser cannot sample from.  The
    /// table/action/function/if/exit kinds are offered only when the scope
    /// provides them, so the *context-independent* kinds (assignment, slice
    /// assignment, declaration, validity ops) must carry nonzero weight —
    /// otherwise a statement position can face an all-zero choice list.
    pub fn validate(&self) -> Result<(), String> {
        let always_available =
            self.assignment + self.slice_assignment + self.declaration + self.set_validity;
        if always_available == 0 {
            return Err(
                "statement weights sum to zero over the always-available kinds \
                 (assignment/slice_assignment/declaration/set_validity); the weighted \
                 chooser cannot sample a statement"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Relative weights for expression kinds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpressionWeights {
    pub literal: u32,
    pub variable: u32,
    pub arithmetic: u32,
    pub bitwise: u32,
    pub shift: u32,
    pub comparison_ternary: u32,
    pub slice: u32,
    pub cast: u32,
    pub saturating: u32,
}

impl Default for ExpressionWeights {
    fn default() -> Self {
        ExpressionWeights {
            literal: 22,
            variable: 30,
            arithmetic: 16,
            bitwise: 12,
            shift: 6,
            comparison_ternary: 6,
            slice: 4,
            cast: 6,
            saturating: 3,
        }
    }
}

impl ExpressionWeights {
    /// Number of weight fields (the length of [`ExpressionWeights::as_array`]).
    pub const FIELDS: usize = 9;

    /// The weights as an array in declaration order; see
    /// [`StatementWeights::as_array`] for the contract.
    pub fn as_array(&self) -> [u32; Self::FIELDS] {
        [
            self.literal,
            self.variable,
            self.arithmetic,
            self.bitwise,
            self.shift,
            self.comparison_ternary,
            self.slice,
            self.cast,
            self.saturating,
        ]
    }

    /// Inverse of [`ExpressionWeights::as_array`].
    pub fn from_array(values: [u32; Self::FIELDS]) -> ExpressionWeights {
        ExpressionWeights {
            literal: values[0],
            variable: values[1],
            arithmetic: values[2],
            bitwise: values[3],
            shift: values[4],
            comparison_ternary: values[5],
            slice: values[6],
            cast: values[7],
            saturating: values[8],
        }
    }

    /// Sum of every weight.
    pub fn total(&self) -> u32 {
        self.as_array().iter().sum()
    }

    /// Rejects weight rows the weighted chooser cannot sample from: `slice`
    /// is only offered for widths ≥ 2, so every other kind summing to zero
    /// leaves narrow expression positions with an all-zero choice list.
    pub fn validate(&self) -> Result<(), String> {
        if self.total() - self.slice == 0 {
            return Err(
                "expression weights sum to zero outside `slice`; the weighted chooser \
                 cannot sample an expression of width 1"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Top-level generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Target architecture (`"v1model"` or `"tna"`).
    pub architecture: String,
    /// Number of statements in the ingress apply block.
    pub max_apply_statements: usize,
    /// Number of statements per generated action body.
    pub max_action_statements: usize,
    /// Maximum expression tree depth.
    pub max_expression_depth: usize,
    /// Number of extra actions to declare (besides `NoAction`).
    pub max_actions: usize,
    /// Number of tables to declare.
    pub max_tables: usize,
    /// Number of helper functions to declare.
    pub max_functions: usize,
    /// Maximum nesting depth of `if` statements.
    pub max_if_depth: usize,
    /// Percent chance a generated literal is a "special" value (0, 1, the
    /// all-ones mask, or a power of two) instead of uniform.  Identity and
    /// strength-reduction rewrites only fire on such constants, so the
    /// coverage-guided adapter raises this when those rules stay unfired.
    pub special_literal_bias: u32,
    pub statements: StatementWeights,
    pub expressions: ExpressionWeights,
    /// Generate `exit` statements (needed to exercise the Figure-5f family).
    pub allow_exit: bool,
    /// Generate `1 << x`-style expressions with unsized literals (the
    /// Figure-5b type-inference crash trigger).
    pub allow_unsized_shift: bool,
    /// Generate slices of casts (the Figure-5c strength-reduction trigger).
    pub allow_const_slices: bool,
    /// Generate calls to actions/functions with `inout` arguments (the
    /// copy-in/copy-out bug family).
    pub allow_inout_calls: bool,
    /// Generate header validity manipulation (`setValid`/`setInvalid`).
    pub allow_validity_ops: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            architecture: "v1model".into(),
            max_apply_statements: 8,
            max_action_statements: 4,
            max_expression_depth: 3,
            max_actions: 3,
            max_tables: 2,
            max_functions: 2,
            max_if_depth: 2,
            special_literal_bias: 5,
            statements: StatementWeights::default(),
            expressions: ExpressionWeights::default(),
            allow_exit: true,
            allow_unsized_shift: true,
            allow_const_slices: true,
            allow_inout_calls: true,
            allow_validity_ops: true,
        }
    }
}

impl GeneratorConfig {
    /// Validates the configuration; see [`StatementWeights::validate`] and
    /// [`ExpressionWeights::validate`].  `RandomProgramGenerator::new`
    /// enforces this at construction, so an unsatisfiable weight row fails
    /// fast with a clear message instead of panicking (or silently
    /// mis-sampling) deep inside the weighted chooser.
    pub fn validate(&self) -> Result<(), String> {
        self.statements.validate()?;
        self.expressions.validate()?;
        if self.max_apply_statements == 0 {
            return Err("max_apply_statements must be at least 1".into());
        }
        if self.special_literal_bias > 100 {
            return Err("special_literal_bias is a percentage (0-100)".into());
        }
        Ok(())
    }

    /// A configuration restricted to what the (simulated) Tofino back end
    /// supports: narrower operands, no multiplications, no variable shifts.
    pub fn tofino() -> GeneratorConfig {
        GeneratorConfig {
            architecture: "tna".into(),
            allow_unsized_shift: false,
            ..GeneratorConfig::default()
        }
    }

    /// A small configuration for fast smoke tests.
    pub fn tiny() -> GeneratorConfig {
        GeneratorConfig {
            max_apply_statements: 3,
            max_action_statements: 2,
            max_expression_depth: 2,
            max_actions: 1,
            max_tables: 1,
            max_functions: 1,
            max_if_depth: 1,
            ..GeneratorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let config = GeneratorConfig::default();
        assert_eq!(config.architecture, "v1model");
        assert!(config.max_apply_statements > 0);
        assert!(config.statements.assignment > 0);
    }

    #[test]
    fn tofino_config_targets_tna() {
        let config = GeneratorConfig::tofino();
        assert_eq!(config.architecture, "tna");
        assert!(!config.allow_unsized_shift);
    }

    #[test]
    fn default_configs_validate() {
        assert!(GeneratorConfig::default().validate().is_ok());
        assert!(GeneratorConfig::tiny().validate().is_ok());
        assert!(GeneratorConfig::tofino().validate().is_ok());
    }

    /// The regression the chooser used to hit: a weight row where every
    /// context-independent kind is zero is rejected up front.
    #[test]
    fn all_zero_weight_rows_are_rejected() {
        let config = GeneratorConfig {
            statements: StatementWeights {
                assignment: 0,
                slice_assignment: 0,
                declaration: 0,
                set_validity: 0,
                // Context-dependent kinds may stay positive; they are not
                // always on offer, so they do not rescue the row.
                if_statement: 10,
                table_apply: 10,
                action_call: 10,
                function_call: 10,
                exit: 10,
            },
            ..GeneratorConfig::default()
        };
        assert!(config.statements.validate().is_err());
        assert!(config.validate().is_err());

        let expressions = ExpressionWeights {
            literal: 0,
            variable: 0,
            arithmetic: 0,
            bitwise: 0,
            shift: 0,
            comparison_ternary: 0,
            slice: 7,
            cast: 0,
            saturating: 0,
        };
        assert!(expressions.validate().is_err());
    }

    #[test]
    fn config_roundtrips_through_clone() {
        // The serde shim provides no-op derives (no JSON in this offline
        // environment), so the round-trip invariant is checked via `Clone`.
        let config = GeneratorConfig::default();
        let back = config.clone();
        assert_eq!(back.max_apply_statements, config.max_apply_statements);
        assert_eq!(back.architecture, config.architecture);
        assert_eq!(back.statements.assignment, config.statements.assignment);
    }
}
