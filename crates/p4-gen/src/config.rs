//! Generator configuration: sizes, probabilities, and feature toggles.
//!
//! The paper emphasises that the amount of randomly generated code is
//! user-configurable so programs stay "small and targeted" (§4.1), and that
//! the generator is steered by adjusting the probability of each AST node
//! kind.  `GeneratorConfig` captures exactly those knobs.

use serde::{Deserialize, Serialize};

/// Relative weights for statement kinds in generated bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatementWeights {
    pub assignment: u32,
    pub slice_assignment: u32,
    pub if_statement: u32,
    pub declaration: u32,
    pub table_apply: u32,
    pub action_call: u32,
    pub function_call: u32,
    pub set_validity: u32,
    pub exit: u32,
}

impl Default for StatementWeights {
    fn default() -> Self {
        StatementWeights {
            assignment: 40,
            slice_assignment: 8,
            if_statement: 18,
            declaration: 12,
            table_apply: 10,
            action_call: 8,
            function_call: 6,
            set_validity: 5,
            exit: 2,
        }
    }
}

/// Relative weights for expression kinds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpressionWeights {
    pub literal: u32,
    pub variable: u32,
    pub arithmetic: u32,
    pub bitwise: u32,
    pub shift: u32,
    pub comparison_ternary: u32,
    pub slice: u32,
    pub cast: u32,
    pub saturating: u32,
}

impl Default for ExpressionWeights {
    fn default() -> Self {
        ExpressionWeights {
            literal: 22,
            variable: 30,
            arithmetic: 16,
            bitwise: 12,
            shift: 6,
            comparison_ternary: 6,
            slice: 4,
            cast: 6,
            saturating: 3,
        }
    }
}

/// Top-level generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Target architecture (`"v1model"` or `"tna"`).
    pub architecture: String,
    /// Number of statements in the ingress apply block.
    pub max_apply_statements: usize,
    /// Number of statements per generated action body.
    pub max_action_statements: usize,
    /// Maximum expression tree depth.
    pub max_expression_depth: usize,
    /// Number of extra actions to declare (besides `NoAction`).
    pub max_actions: usize,
    /// Number of tables to declare.
    pub max_tables: usize,
    /// Number of helper functions to declare.
    pub max_functions: usize,
    /// Maximum nesting depth of `if` statements.
    pub max_if_depth: usize,
    pub statements: StatementWeights,
    pub expressions: ExpressionWeights,
    /// Generate `exit` statements (needed to exercise the Figure-5f family).
    pub allow_exit: bool,
    /// Generate `1 << x`-style expressions with unsized literals (the
    /// Figure-5b type-inference crash trigger).
    pub allow_unsized_shift: bool,
    /// Generate slices of casts (the Figure-5c strength-reduction trigger).
    pub allow_const_slices: bool,
    /// Generate calls to actions/functions with `inout` arguments (the
    /// copy-in/copy-out bug family).
    pub allow_inout_calls: bool,
    /// Generate header validity manipulation (`setValid`/`setInvalid`).
    pub allow_validity_ops: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            architecture: "v1model".into(),
            max_apply_statements: 8,
            max_action_statements: 4,
            max_expression_depth: 3,
            max_actions: 3,
            max_tables: 2,
            max_functions: 2,
            max_if_depth: 2,
            statements: StatementWeights::default(),
            expressions: ExpressionWeights::default(),
            allow_exit: true,
            allow_unsized_shift: true,
            allow_const_slices: true,
            allow_inout_calls: true,
            allow_validity_ops: true,
        }
    }
}

impl GeneratorConfig {
    /// A configuration restricted to what the (simulated) Tofino back end
    /// supports: narrower operands, no multiplications, no variable shifts.
    pub fn tofino() -> GeneratorConfig {
        GeneratorConfig {
            architecture: "tna".into(),
            allow_unsized_shift: false,
            ..GeneratorConfig::default()
        }
    }

    /// A small configuration for fast smoke tests.
    pub fn tiny() -> GeneratorConfig {
        GeneratorConfig {
            max_apply_statements: 3,
            max_action_statements: 2,
            max_expression_depth: 2,
            max_actions: 1,
            max_tables: 1,
            max_functions: 1,
            max_if_depth: 1,
            ..GeneratorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let config = GeneratorConfig::default();
        assert_eq!(config.architecture, "v1model");
        assert!(config.max_apply_statements > 0);
        assert!(config.statements.assignment > 0);
    }

    #[test]
    fn tofino_config_targets_tna() {
        let config = GeneratorConfig::tofino();
        assert_eq!(config.architecture, "tna");
        assert!(!config.allow_unsized_shift);
    }

    #[test]
    fn config_roundtrips_through_clone() {
        // The serde shim provides no-op derives (no JSON in this offline
        // environment), so the round-trip invariant is checked via `Clone`.
        let config = GeneratorConfig::default();
        let back = config.clone();
        assert_eq!(back.max_apply_statements, config.max_apply_statements);
        assert_eq!(back.architecture, config.architecture);
        assert_eq!(back.statements.assignment, config.statements.assignment);
    }
}
