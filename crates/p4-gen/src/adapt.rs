//! Coverage-guided weight adaptation: closes the generate→compile→validate
//! loop.
//!
//! The paper steers generation by adjusting per-node-kind probabilities
//! (§4.1) but leaves those probabilities static for the whole campaign.
//! [`WeightAdapter`] makes them a function of accumulated feedback: given
//! the set of compiler rewrite rules that have *never* fired (keys in
//! `"pass/rule"` form, produced by `p4c::coverage`) and the construct
//! census of the programs generated so far (`p4_ir::ConstructCensus`), it
//! re-normalises [`StatementWeights`]/[`ExpressionWeights`] toward the
//! statement and expression kinds most likely to trigger the missing rules
//! and the construct pairs that have not been produced yet.
//!
//! Adaptation is a pure function of its inputs — no randomness, no clock —
//! so a campaign that merges per-worker coverage in seed order obtains
//! byte-identical weights (and therefore byte-identical programs) at any
//! `--jobs` setting.  On full coverage the adapter is a fixpoint: when
//! every rule has fired it returns the base configuration unchanged.

use crate::config::{ExpressionWeights, GeneratorConfig, StatementWeights};
use p4_ir::ConstructCensus;

/// Index of each [`StatementWeights`] field, in declaration order.
const STMT_ASSIGNMENT: usize = 0;
const STMT_SLICE_ASSIGNMENT: usize = 1;
const STMT_IF: usize = 2;
const STMT_DECLARATION: usize = 3;
const STMT_TABLE_APPLY: usize = 4;
const STMT_ACTION_CALL: usize = 5;
const STMT_FUNCTION_CALL: usize = 6;
const STMT_SET_VALIDITY: usize = 7;
const STMT_EXIT: usize = 8;
const STMT_FIELDS: usize = StatementWeights::FIELDS;

/// Index of each [`ExpressionWeights`] field, in declaration order.
const EXPR_LITERAL: usize = 0;
const EXPR_VARIABLE: usize = 1;
const EXPR_ARITHMETIC: usize = 2;
const EXPR_BITWISE: usize = 3;
const EXPR_SHIFT: usize = 4;
const EXPR_COMPARISON_TERNARY: usize = 5;
const EXPR_SLICE: usize = 6;
const EXPR_CAST: usize = 7;
const EXPR_SATURATING: usize = 8;
const EXPR_FIELDS: usize = ExpressionWeights::FIELDS;

/// Which generator knobs make a given unfired rewrite rule more likely to
/// fire.  Constant-folding rules need constant operands, so they all pull
/// the `literal` expression weight up alongside their operator kind; the
/// inlining/def-use/predication families pull the statement mix instead.
fn rule_knobs(rule_key: &str) -> (&'static [usize], &'static [usize]) {
    let (pass, rule) = rule_key.split_once('/').unwrap_or((rule_key, ""));
    match pass {
        "ConstantFolding" => match rule {
            "fold_arith" => (&[], &[EXPR_ARITHMETIC, EXPR_LITERAL]),
            "fold_bitwise" => (&[], &[EXPR_BITWISE, EXPR_LITERAL]),
            "fold_shift" => (&[], &[EXPR_SHIFT, EXPR_LITERAL]),
            "fold_compare" | "fold_ternary" => (&[], &[EXPR_COMPARISON_TERNARY, EXPR_LITERAL]),
            "fold_cast" => (&[], &[EXPR_CAST, EXPR_LITERAL]),
            "fold_slice" => (&[], &[EXPR_SLICE, EXPR_CAST, EXPR_LITERAL]),
            "fold_bool" | "fold_unary" | "prune_if" => (&[STMT_IF], &[EXPR_LITERAL]),
            _ => (&[], &[EXPR_LITERAL]),
        },
        "StrengthReduction" => match rule {
            "add_zero_identity" | "mul_by_zero" | "mul_by_one" | "mul_pow2_to_shift" => {
                (&[], &[EXPR_ARITHMETIC, EXPR_LITERAL])
            }
            "mask_all_ones" => (&[], &[EXPR_BITWISE, EXPR_LITERAL]),
            "shift_by_zero" | "oversized_shift_to_zero" => (&[], &[EXPR_SHIFT, EXPR_LITERAL]),
            _ => (&[STMT_IF], &[]),
        },
        "SideEffectOrdering" | "InlineFunctions" => (&[STMT_FUNCTION_CALL], &[]),
        "RemoveActionParameters" => (&[STMT_ACTION_CALL, STMT_EXIT], &[]),
        "SimplifyDefUse" => (&[STMT_DECLARATION], &[]),
        "LocalCopyPropagation" => (&[STMT_DECLARATION], &[EXPR_VARIABLE]),
        "Predication" => (&[STMT_ACTION_CALL], &[]),
        "FlattenBlocks" => (&[STMT_IF], &[]),
        _ => (&[], &[]),
    }
}

/// Census `apply/<kind>` statement keys and the knob each one maps to.
const CENSUS_STMT_KNOBS: &[(&str, usize)] = &[
    ("apply/assign", STMT_ASSIGNMENT),
    ("apply/slice_assign", STMT_SLICE_ASSIGNMENT),
    ("apply/if", STMT_IF),
    ("apply/if_else", STMT_IF),
    ("apply/declare", STMT_DECLARATION),
    ("apply/table_apply", STMT_TABLE_APPLY),
    ("apply/call", STMT_ACTION_CALL),
    ("apply/validity_call", STMT_SET_VALIDITY),
    ("apply/exit", STMT_EXIT),
];

/// Census `apply/expr/<kind>` expression keys and their knobs.
const CENSUS_EXPR_KNOBS: &[(&str, usize)] = &[
    ("apply/expr/lit", EXPR_LITERAL),
    ("apply/expr/lvalue", EXPR_VARIABLE),
    ("apply/expr/arith", EXPR_ARITHMETIC),
    ("apply/expr/sat_arith", EXPR_SATURATING),
    ("apply/expr/bitwise", EXPR_BITWISE),
    ("apply/expr/shift", EXPR_SHIFT),
    ("apply/expr/compare", EXPR_COMPARISON_TERNARY),
    ("apply/expr/ternary", EXPR_COMPARISON_TERNARY),
    ("apply/expr/slice", EXPR_SLICE),
    ("apply/expr/cast", EXPR_CAST),
    ("apply/expr/call", EXPR_FIELDS), // handled as a statement knob below
];

/// The coverage-guided weight adapter.
#[derive(Debug, Clone)]
pub struct WeightAdapter {
    /// How aggressively unfired rules pull weight toward their knobs, as a
    /// multiple of the mean base weight per boost point.
    pub boost: u32,
}

impl Default for WeightAdapter {
    fn default() -> WeightAdapter {
        WeightAdapter { boost: 3 }
    }
}

impl WeightAdapter {
    /// Re-normalises `base`'s weights toward the knobs mapped from
    /// `unfired_rules` (rule keys in `"pass/rule"` form) and from census
    /// construct pairs that have count zero.  `round` rotates the focus: a
    /// campaign passes its epoch index, and each epoch concentrates its
    /// boost on a different slice of the unfired rules — chasing a handful
    /// of rules hard beats diluting the pull across all of them, and the
    /// rotation is a pure function of `round`, preserving determinism.
    ///
    /// Guarantees, checked by the property tests in this crate:
    ///
    /// * every output weight is ≥ 1 (the chooser can never face an all-zero
    ///   row);
    /// * each weight group's total equals `max(base total, field count)` —
    ///   adaptation redistributes probability mass, it never inflates it;
    /// * with `unfired_rules` empty the output is byte-identical to `base`
    ///   (full coverage is a fixpoint, for every `round`).
    pub fn adapt(
        &self,
        base: &GeneratorConfig,
        unfired_rules: &[String],
        census: &ConstructCensus,
        round: usize,
    ) -> GeneratorConfig {
        self.adapt_with_pairs(base, unfired_rules, &[], census, round)
    }

    /// [`WeightAdapter::adapt`] with a second steering signal: cross-pass
    /// interaction pairs (`"passA/ruleA->passB/ruleB"` keys from
    /// `p4c::coverage`) that have never been observed.  Each round's focus
    /// budget is split between the two lists — half chases unfired rules,
    /// half chases unfired pairs (a pair pulls the knobs of *both* member
    /// rules, since the two rewrites must meet in one program).  Either
    /// list being exhausted hands its share to the other; both empty is the
    /// same fixpoint as full rule coverage.
    pub fn adapt_with_pairs(
        &self,
        base: &GeneratorConfig,
        unfired_rules: &[String],
        unfired_pairs: &[String],
        census: &ConstructCensus,
        round: usize,
    ) -> GeneratorConfig {
        if unfired_rules.is_empty() && unfired_pairs.is_empty() {
            return base.clone();
        }
        // Focus slices for this round: ~FOCUS_SIZE targets, rotating through
        // each unfired list so every target gets a concentrated epoch.
        const FOCUS_SIZE: usize = 6;
        let rule_share = if unfired_pairs.is_empty() {
            FOCUS_SIZE
        } else if unfired_rules.is_empty() {
            0
        } else {
            FOCUS_SIZE / 2
        };
        let rule_focus = focus_slice(unfired_rules, rule_share, round);
        let pair_focus = focus_slice(unfired_pairs, FOCUS_SIZE - rule_share, round);
        let mut stmt_boost = [0u32; STMT_FIELDS];
        let mut expr_boost = [0u32; EXPR_FIELDS];
        let mut boost_rule = |rule: &str| {
            let (stmts, exprs) = rule_knobs(rule);
            for &knob in stmts {
                stmt_boost[knob] += 1;
            }
            for &knob in exprs {
                expr_boost[knob] += 1;
            }
        };
        for rule in &rule_focus {
            boost_rule(rule);
        }
        for pair in &pair_focus {
            if let Some((first, second)) = pair.split_once("->") {
                boost_rule(first);
                boost_rule(second);
            }
        }
        // Construct pairs never produced so far get a secondary pull (only
        // while rules remain unfired, preserving the fixpoint property).
        for &(key, knob) in CENSUS_STMT_KNOBS {
            if census.count(key) == 0 {
                stmt_boost[knob] += 1;
            }
        }
        for &(key, knob) in CENSUS_EXPR_KNOBS {
            if census.count(key) == 0 {
                if knob == EXPR_FIELDS {
                    // Function-call expressions are steered by the
                    // statement mix, not the expression mix.
                    stmt_boost[STMT_FUNCTION_CALL] += 1;
                } else {
                    expr_boost[knob] += 1;
                }
            }
        }

        let mut adapted = base.clone();
        adapted.statements = StatementWeights::from_array(boosted(
            base.statements.as_array(),
            stmt_boost,
            self.boost,
        ));
        adapted.expressions = ExpressionWeights::from_array(boosted(
            base.expressions.as_array(),
            expr_boost,
            self.boost,
        ));
        // Constant-folding and strength-reduction rules only fire on
        // special constants (0, 1, all-ones, powers of two); the more of
        // them sit in this round's focus — as rules or as pair members —
        // the stronger the literal bias.
        let const_hungry = rule_focus
            .iter()
            .map(|rule| rule.as_str())
            .chain(pair_focus.iter().flat_map(|pair| pair.split("->")))
            .filter(|rule| {
                rule.starts_with("ConstantFolding/") || rule.starts_with("StrengthReduction/")
            })
            .count() as u32;
        if const_hungry > 0 {
            // Raise, never lower: a user-configured bias above the cap
            // stays where the user put it.
            adapted.special_literal_bias = (base.special_literal_bias + 6 * const_hungry)
                .clamp(20, 50)
                .max(base.special_literal_bias);
        }
        adapted
    }

    /// Deterministically perturbs `base` for one fleet worker's diversity
    /// slice: `focus_pairs` is the slice's disjoint partition of uncovered
    /// interaction pairs (each pair pulls both member rules' knobs, exactly
    /// like [`WeightAdapter::adapt_with_pairs`]), and `slice`/`slices` add a
    /// slice-indexed nudge so even workers with identical partitions explore
    /// different statement/expression mixes.  A pure function of its
    /// arguments — no randomness, no clock — so a crashed-and-respawned
    /// worker rebuilds the identical configuration, and sum-preserving like
    /// every other adaptation (weight totals and the ≥ 1 floor hold).
    pub fn diversify(
        &self,
        base: &GeneratorConfig,
        slice: usize,
        slices: usize,
        focus_pairs: &[String],
    ) -> GeneratorConfig {
        let mut stmt_boost = [0u32; STMT_FIELDS];
        let mut expr_boost = [0u32; EXPR_FIELDS];
        for pair in focus_pairs {
            if let Some((first, second)) = pair.split_once("->") {
                for member in [first, second] {
                    let (stmts, exprs) = rule_knobs(member);
                    for &knob in stmts {
                        stmt_boost[knob] += 1;
                    }
                    for &knob in exprs {
                        expr_boost[knob] += 1;
                    }
                }
            }
        }
        if slices > 1 {
            stmt_boost[(mix(slice as u64) % STMT_FIELDS as u64) as usize] += 2;
            expr_boost[(mix(slice as u64 ^ 0x9e37) % EXPR_FIELDS as u64) as usize] += 2;
        }
        if stmt_boost.iter().all(|&b| b == 0) && expr_boost.iter().all(|&b| b == 0) {
            return base.clone();
        }
        let mut adapted = base.clone();
        adapted.statements = StatementWeights::from_array(boosted(
            base.statements.as_array(),
            stmt_boost,
            self.boost,
        ));
        adapted.expressions = ExpressionWeights::from_array(boosted(
            base.expressions.as_array(),
            expr_boost,
            self.boost,
        ));
        let const_hungry = focus_pairs
            .iter()
            .flat_map(|pair| pair.split("->"))
            .filter(|rule| {
                rule.starts_with("ConstantFolding/") || rule.starts_with("StrengthReduction/")
            })
            .count() as u32;
        if const_hungry > 0 {
            adapted.special_literal_bias = (base.special_literal_bias + 6 * const_hungry)
                .clamp(20, 50)
                .max(base.special_literal_bias);
        }
        adapted
    }
}

/// This round's slice of an unfired list: `share` entries starting at
/// `(round * share) mod len`, wrapping around the end.  Indexing modulo the
/// *current* length keeps the focus full and cycles through every entry even
/// as coverage shrinks the list between rounds — the old
/// `skip(group * share)` arithmetic left a near-empty focus whenever the
/// list shrank to just past a group boundary.
fn focus_slice(items: &[String], share: usize, round: usize) -> Vec<&String> {
    if items.is_empty() || share == 0 {
        return Vec::new();
    }
    let len = items.len();
    let start = (round * share) % len;
    (0..share.min(len))
        .map(|offset| &items[(start + offset) % len])
        .collect()
}

/// SplitMix64 finaliser: spreads consecutive slice indices across the knob
/// space deterministically.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Applies boost points to the base weights and re-normalises so the total
/// is preserved (and every weight stays ≥ 1).
fn boosted<const N: usize>(base: [u32; N], boost: [u32; N], strength: u32) -> [u32; N] {
    let base_total: u64 = base.iter().map(|&w| u64::from(w)).sum();
    let target = base_total.max(N as u64);
    let bump = (base_total / N as u64).max(1) * u64::from(strength.max(1));
    let mut raw = [0u64; N];
    for i in 0..N {
        raw[i] = u64::from(base[i]) + u64::from(boost[i]) * bump;
    }
    rebalance(&mut raw, target);
    let mut out = [0u32; N];
    for i in 0..N {
        out[i] = u32::try_from(raw[i]).expect("rebalanced weight fits in u32");
    }
    out
}

/// Scales `values` so they sum to exactly `target` with every entry ≥ 1.
/// Deterministic: rounding residue is settled by repeatedly adjusting the
/// largest entry (ties broken by lowest index).  Requires `target ≥ len`.
fn rebalance(values: &mut [u64], target: u64) {
    assert!(
        target >= values.len() as u64,
        "target below the per-field floor"
    );
    let sum: u64 = values.iter().sum();
    for value in values.iter_mut() {
        // `sum == 0` (all-zero input) floors every entry at 1.
        *value = match (*value * target).checked_div(sum) {
            Some(scaled) => scaled.max(1),
            None => 1,
        };
    }
    loop {
        let current: u64 = values.iter().sum();
        match current.cmp(&target) {
            std::cmp::Ordering::Equal => return,
            std::cmp::Ordering::Less => {
                // Hand the whole deficit to the largest entry.
                let index = max_index(values);
                values[index] += target - current;
            }
            std::cmp::Ordering::Greater => {
                // Shave the largest entry down to its floor if needed; with
                // target ≥ len the loop always terminates before every
                // entry reaches the floor.
                let index = max_index(values);
                let room = values[index] - 1;
                assert!(room > 0, "rebalance floor invariant violated");
                values[index] -= (current - target).min(room);
            }
        }
    }
}

/// Index of the largest value (lowest index wins ties).
fn max_index(values: &[u64]) -> usize {
    let mut best = 0;
    for (index, value) in values.iter().enumerate() {
        if *value > values[best] {
            best = index;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_census() -> ConstructCensus {
        // An empty census reports zero for every key, which maximises the
        // census-driven pull; fine for unit tests.
        ConstructCensus::default()
    }

    #[test]
    fn full_coverage_is_a_fixpoint() {
        let base = GeneratorConfig::default();
        let adapted = WeightAdapter::default().adapt(&base, &[], &no_census(), 0);
        assert_eq!(adapted.statements.as_array(), base.statements.as_array());
        assert_eq!(adapted.expressions.as_array(), base.expressions.as_array());
    }

    #[test]
    fn unfired_shift_rules_pull_shift_weight_up() {
        let base = GeneratorConfig::default();
        let unfired = vec![
            "ConstantFolding/fold_shift".to_string(),
            "StrengthReduction/shift_by_zero".to_string(),
        ];
        let adapted = WeightAdapter::default().adapt(&base, &unfired, &no_census(), 0);
        assert!(
            adapted.expressions.shift > base.expressions.shift,
            "shift weight should rise: {} vs {}",
            adapted.expressions.shift,
            base.expressions.shift
        );
    }

    #[test]
    fn adaptation_preserves_the_total_and_the_floor() {
        let base = GeneratorConfig::default();
        let unfired: Vec<String> = p4c_rule_universe();
        let adapted = WeightAdapter::default().adapt(&base, &unfired, &no_census(), 0);
        let base_stmt: u32 = base.statements.total();
        let new_stmt: u32 = adapted.statements.total();
        assert_eq!(base_stmt, new_stmt);
        assert!(adapted.statements.as_array().iter().all(|&w| w >= 1));
        assert!(adapted.expressions.as_array().iter().all(|&w| w >= 1));
    }

    /// A stand-in for `p4c::coverage::all_rule_keys()` (p4-gen does not
    /// depend on p4c; the mapping only needs the key shape).
    fn p4c_rule_universe() -> Vec<String> {
        [
            "ConstantFolding/fold_arith",
            "ConstantFolding/fold_slice",
            "StrengthReduction/mul_pow2_to_shift",
            "SideEffectOrdering/hoist_call",
            "InlineFunctions/inline_call",
            "RemoveActionParameters/exit_copy_out",
            "SimplifyDefUse/dead_store",
            "LocalCopyPropagation/propagate",
            "Predication/predicate_then",
            "FlattenBlocks/splice_block",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    }

    /// Regression for the rotating-focus bug: the old arithmetic
    /// (`skip(group * FOCUS) .take(FOCUS)` with `group = round % groups`)
    /// left a near-empty focus when coverage shrank the unfired list to
    /// just past a group boundary, and could skip or double-visit rules as
    /// the group count changed between epochs.  Indexing modulo the current
    /// length keeps the slice full and cycles through every entry.
    #[test]
    fn rotation_on_a_shrinking_unfired_set_keeps_the_focus_full() {
        let items: Vec<String> = (0..13).map(|i| format!("Pass/rule{i}")).collect();
        // Round 2 with 13 left: the old code focused on a single rule
        // (index 12); the wraparound slice stays full.
        let focus = focus_slice(&items, 6, 2);
        assert_eq!(focus.len(), 6);
        assert_eq!(focus[0], &items[12]);
        assert_eq!(focus[5], &items[4]);

        // Simulate an epoch loop where each round's focus fires and leaves
        // the list: every rule is visited, none twice, and the focus is
        // full (or the whole remainder) at every round.
        let mut remaining: Vec<String> = items.clone();
        let mut visited = std::collections::BTreeSet::new();
        for round in 0.. {
            if remaining.is_empty() {
                break;
            }
            let focus: Vec<String> = focus_slice(&remaining, 6, round)
                .into_iter()
                .cloned()
                .collect();
            assert_eq!(focus.len(), 6.min(remaining.len()));
            for rule in &focus {
                assert!(visited.insert(rule.clone()), "{rule} visited twice");
            }
            remaining.retain(|rule| !focus.contains(rule));
        }
        assert_eq!(visited.len(), items.len(), "every rule gets a focus epoch");
    }

    #[test]
    fn unfired_pairs_pull_both_member_knobs() {
        let base = GeneratorConfig::default();
        let pairs = vec!["ConstantFolding/fold_shift->LocalCopyPropagation/propagate".to_string()];
        let adapted =
            WeightAdapter::default().adapt_with_pairs(&base, &[], &pairs, &no_census(), 0);
        assert!(
            adapted.expressions.shift > base.expressions.shift,
            "first member's shift knob should rise"
        );
        assert!(
            adapted.statements.declaration > base.statements.declaration,
            "second member's declaration knob should rise"
        );
        assert_eq!(adapted.statements.total(), base.statements.total());
    }

    #[test]
    fn pairs_and_rules_exhausted_is_the_same_fixpoint() {
        let base = GeneratorConfig::default();
        let adapted = WeightAdapter::default().adapt_with_pairs(&base, &[], &[], &no_census(), 7);
        assert_eq!(adapted.statements.as_array(), base.statements.as_array());
        assert_eq!(adapted.expressions.as_array(), base.expressions.as_array());
    }

    #[test]
    fn adapt_is_adapt_with_pairs_without_pairs() {
        let base = GeneratorConfig::default();
        let unfired = p4c_rule_universe();
        let adapter = WeightAdapter::default();
        for round in 0..4 {
            let plain = adapter.adapt(&base, &unfired, &no_census(), round);
            let with = adapter.adapt_with_pairs(&base, &unfired, &[], &no_census(), round);
            assert_eq!(plain.statements.as_array(), with.statements.as_array());
            assert_eq!(plain.expressions.as_array(), with.expressions.as_array());
        }
    }

    #[test]
    fn diversify_is_deterministic_sum_preserving_and_slice_distinct() {
        let base = GeneratorConfig::default();
        let adapter = WeightAdapter::default();
        let pairs = vec![
            "ConstantFolding/fold_arith->Predication/predicate_then".to_string(),
            "StrengthReduction/mask_all_ones->FlattenBlocks/splice_block".to_string(),
        ];
        let a = adapter.diversify(&base, 1, 3, &pairs);
        let again = adapter.diversify(&base, 1, 3, &pairs);
        assert_eq!(a.statements.as_array(), again.statements.as_array());
        assert_eq!(a.expressions.as_array(), again.expressions.as_array());
        assert_eq!(a.statements.total(), base.statements.total());
        assert_eq!(a.expressions.total(), base.expressions.total());
        assert!(a.statements.as_array().iter().all(|&w| w >= 1));

        let b = adapter.diversify(&base, 2, 3, &pairs);
        assert!(
            a.statements.as_array() != b.statements.as_array()
                || a.expressions.as_array() != b.expressions.as_array(),
            "distinct slices should explore distinct weight mixes"
        );
        // No pairs and a single slice leaves the base untouched.
        let identity = adapter.diversify(&base, 0, 1, &[]);
        assert_eq!(identity.statements.as_array(), base.statements.as_array());
        assert_eq!(identity.expressions.as_array(), base.expressions.as_array());
    }

    #[test]
    fn rebalance_hits_the_target_exactly() {
        let mut values = [100u64, 1, 1, 1];
        rebalance(&mut values, 10);
        assert_eq!(values.iter().sum::<u64>(), 10);
        assert!(values.iter().all(|&v| v >= 1));
        let mut tiny = [0u64, 0, 0];
        rebalance(&mut tiny, 9);
        assert_eq!(tiny.iter().sum::<u64>(), 9);
    }
}
