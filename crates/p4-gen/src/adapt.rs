//! Coverage-guided weight adaptation: closes the generate→compile→validate
//! loop.
//!
//! The paper steers generation by adjusting per-node-kind probabilities
//! (§4.1) but leaves those probabilities static for the whole campaign.
//! [`WeightAdapter`] makes them a function of accumulated feedback: given
//! the set of compiler rewrite rules that have *never* fired (keys in
//! `"pass/rule"` form, produced by `p4c::coverage`) and the construct
//! census of the programs generated so far (`p4_ir::ConstructCensus`), it
//! re-normalises [`StatementWeights`]/[`ExpressionWeights`] toward the
//! statement and expression kinds most likely to trigger the missing rules
//! and the construct pairs that have not been produced yet.
//!
//! Adaptation is a pure function of its inputs — no randomness, no clock —
//! so a campaign that merges per-worker coverage in seed order obtains
//! byte-identical weights (and therefore byte-identical programs) at any
//! `--jobs` setting.  On full coverage the adapter is a fixpoint: when
//! every rule has fired it returns the base configuration unchanged.

use crate::config::{ExpressionWeights, GeneratorConfig, StatementWeights};
use p4_ir::ConstructCensus;

/// Index of each [`StatementWeights`] field, in declaration order.
const STMT_ASSIGNMENT: usize = 0;
const STMT_SLICE_ASSIGNMENT: usize = 1;
const STMT_IF: usize = 2;
const STMT_DECLARATION: usize = 3;
const STMT_TABLE_APPLY: usize = 4;
const STMT_ACTION_CALL: usize = 5;
const STMT_FUNCTION_CALL: usize = 6;
const STMT_SET_VALIDITY: usize = 7;
const STMT_EXIT: usize = 8;
const STMT_FIELDS: usize = StatementWeights::FIELDS;

/// Index of each [`ExpressionWeights`] field, in declaration order.
const EXPR_LITERAL: usize = 0;
const EXPR_VARIABLE: usize = 1;
const EXPR_ARITHMETIC: usize = 2;
const EXPR_BITWISE: usize = 3;
const EXPR_SHIFT: usize = 4;
const EXPR_COMPARISON_TERNARY: usize = 5;
const EXPR_SLICE: usize = 6;
const EXPR_CAST: usize = 7;
const EXPR_SATURATING: usize = 8;
const EXPR_FIELDS: usize = ExpressionWeights::FIELDS;

/// Which generator knobs make a given unfired rewrite rule more likely to
/// fire.  Constant-folding rules need constant operands, so they all pull
/// the `literal` expression weight up alongside their operator kind; the
/// inlining/def-use/predication families pull the statement mix instead.
fn rule_knobs(rule_key: &str) -> (&'static [usize], &'static [usize]) {
    let (pass, rule) = rule_key.split_once('/').unwrap_or((rule_key, ""));
    match pass {
        "ConstantFolding" => match rule {
            "fold_arith" => (&[], &[EXPR_ARITHMETIC, EXPR_LITERAL]),
            "fold_bitwise" => (&[], &[EXPR_BITWISE, EXPR_LITERAL]),
            "fold_shift" => (&[], &[EXPR_SHIFT, EXPR_LITERAL]),
            "fold_compare" | "fold_ternary" => (&[], &[EXPR_COMPARISON_TERNARY, EXPR_LITERAL]),
            "fold_cast" => (&[], &[EXPR_CAST, EXPR_LITERAL]),
            "fold_slice" => (&[], &[EXPR_SLICE, EXPR_CAST, EXPR_LITERAL]),
            "fold_bool" | "fold_unary" | "prune_if" => (&[STMT_IF], &[EXPR_LITERAL]),
            _ => (&[], &[EXPR_LITERAL]),
        },
        "StrengthReduction" => match rule {
            "add_zero_identity" | "mul_by_zero" | "mul_by_one" | "mul_pow2_to_shift" => {
                (&[], &[EXPR_ARITHMETIC, EXPR_LITERAL])
            }
            "mask_all_ones" => (&[], &[EXPR_BITWISE, EXPR_LITERAL]),
            "shift_by_zero" | "oversized_shift_to_zero" => (&[], &[EXPR_SHIFT, EXPR_LITERAL]),
            _ => (&[STMT_IF], &[]),
        },
        "SideEffectOrdering" | "InlineFunctions" => (&[STMT_FUNCTION_CALL], &[]),
        "RemoveActionParameters" => (&[STMT_ACTION_CALL, STMT_EXIT], &[]),
        "SimplifyDefUse" => (&[STMT_DECLARATION], &[]),
        "LocalCopyPropagation" => (&[STMT_DECLARATION], &[EXPR_VARIABLE]),
        "Predication" => (&[STMT_ACTION_CALL], &[]),
        "FlattenBlocks" => (&[STMT_IF], &[]),
        _ => (&[], &[]),
    }
}

/// Census `apply/<kind>` statement keys and the knob each one maps to.
const CENSUS_STMT_KNOBS: &[(&str, usize)] = &[
    ("apply/assign", STMT_ASSIGNMENT),
    ("apply/slice_assign", STMT_SLICE_ASSIGNMENT),
    ("apply/if", STMT_IF),
    ("apply/if_else", STMT_IF),
    ("apply/declare", STMT_DECLARATION),
    ("apply/table_apply", STMT_TABLE_APPLY),
    ("apply/call", STMT_ACTION_CALL),
    ("apply/validity_call", STMT_SET_VALIDITY),
    ("apply/exit", STMT_EXIT),
];

/// Census `apply/expr/<kind>` expression keys and their knobs.
const CENSUS_EXPR_KNOBS: &[(&str, usize)] = &[
    ("apply/expr/lit", EXPR_LITERAL),
    ("apply/expr/lvalue", EXPR_VARIABLE),
    ("apply/expr/arith", EXPR_ARITHMETIC),
    ("apply/expr/sat_arith", EXPR_SATURATING),
    ("apply/expr/bitwise", EXPR_BITWISE),
    ("apply/expr/shift", EXPR_SHIFT),
    ("apply/expr/compare", EXPR_COMPARISON_TERNARY),
    ("apply/expr/ternary", EXPR_COMPARISON_TERNARY),
    ("apply/expr/slice", EXPR_SLICE),
    ("apply/expr/cast", EXPR_CAST),
    ("apply/expr/call", EXPR_FIELDS), // handled as a statement knob below
];

/// The coverage-guided weight adapter.
#[derive(Debug, Clone)]
pub struct WeightAdapter {
    /// How aggressively unfired rules pull weight toward their knobs, as a
    /// multiple of the mean base weight per boost point.
    pub boost: u32,
}

impl Default for WeightAdapter {
    fn default() -> WeightAdapter {
        WeightAdapter { boost: 3 }
    }
}

impl WeightAdapter {
    /// Re-normalises `base`'s weights toward the knobs mapped from
    /// `unfired_rules` (rule keys in `"pass/rule"` form) and from census
    /// construct pairs that have count zero.  `round` rotates the focus: a
    /// campaign passes its epoch index, and each epoch concentrates its
    /// boost on a different slice of the unfired rules — chasing a handful
    /// of rules hard beats diluting the pull across all of them, and the
    /// rotation is a pure function of `round`, preserving determinism.
    ///
    /// Guarantees, checked by the property tests in this crate:
    ///
    /// * every output weight is ≥ 1 (the chooser can never face an all-zero
    ///   row);
    /// * each weight group's total equals `max(base total, field count)` —
    ///   adaptation redistributes probability mass, it never inflates it;
    /// * with `unfired_rules` empty the output is byte-identical to `base`
    ///   (full coverage is a fixpoint, for every `round`).
    pub fn adapt(
        &self,
        base: &GeneratorConfig,
        unfired_rules: &[String],
        census: &ConstructCensus,
        round: usize,
    ) -> GeneratorConfig {
        if unfired_rules.is_empty() {
            return base.clone();
        }
        // Focus slice for this round: ~FOCUS_SIZE rules, rotating through
        // the unfired list so every rule gets a concentrated epoch.
        const FOCUS_SIZE: usize = 6;
        let groups = unfired_rules.len().div_ceil(FOCUS_SIZE);
        let group = round % groups.max(1);
        let focus: Vec<&String> = unfired_rules
            .iter()
            .skip(group * FOCUS_SIZE)
            .take(FOCUS_SIZE)
            .collect();
        let mut stmt_boost = [0u32; STMT_FIELDS];
        let mut expr_boost = [0u32; EXPR_FIELDS];
        for rule in &focus {
            let (stmts, exprs) = rule_knobs(rule);
            for &knob in stmts {
                stmt_boost[knob] += 1;
            }
            for &knob in exprs {
                expr_boost[knob] += 1;
            }
        }
        // Construct pairs never produced so far get a secondary pull (only
        // while rules remain unfired, preserving the fixpoint property).
        for &(key, knob) in CENSUS_STMT_KNOBS {
            if census.count(key) == 0 {
                stmt_boost[knob] += 1;
            }
        }
        for &(key, knob) in CENSUS_EXPR_KNOBS {
            if census.count(key) == 0 {
                if knob == EXPR_FIELDS {
                    // Function-call expressions are steered by the
                    // statement mix, not the expression mix.
                    stmt_boost[STMT_FUNCTION_CALL] += 1;
                } else {
                    expr_boost[knob] += 1;
                }
            }
        }

        let mut adapted = base.clone();
        adapted.statements = StatementWeights::from_array(boosted(
            base.statements.as_array(),
            stmt_boost,
            self.boost,
        ));
        adapted.expressions = ExpressionWeights::from_array(boosted(
            base.expressions.as_array(),
            expr_boost,
            self.boost,
        ));
        // Constant-folding and strength-reduction rules only fire on
        // special constants (0, 1, all-ones, powers of two); the more of
        // them sit in this round's focus, the stronger the literal bias.
        let const_hungry = focus
            .iter()
            .filter(|rule| {
                rule.starts_with("ConstantFolding/") || rule.starts_with("StrengthReduction/")
            })
            .count() as u32;
        if const_hungry > 0 {
            // Raise, never lower: a user-configured bias above the cap
            // stays where the user put it.
            adapted.special_literal_bias = (base.special_literal_bias + 6 * const_hungry)
                .clamp(20, 50)
                .max(base.special_literal_bias);
        }
        adapted
    }
}

/// Applies boost points to the base weights and re-normalises so the total
/// is preserved (and every weight stays ≥ 1).
fn boosted<const N: usize>(base: [u32; N], boost: [u32; N], strength: u32) -> [u32; N] {
    let base_total: u64 = base.iter().map(|&w| u64::from(w)).sum();
    let target = base_total.max(N as u64);
    let bump = (base_total / N as u64).max(1) * u64::from(strength.max(1));
    let mut raw = [0u64; N];
    for i in 0..N {
        raw[i] = u64::from(base[i]) + u64::from(boost[i]) * bump;
    }
    rebalance(&mut raw, target);
    let mut out = [0u32; N];
    for i in 0..N {
        out[i] = u32::try_from(raw[i]).expect("rebalanced weight fits in u32");
    }
    out
}

/// Scales `values` so they sum to exactly `target` with every entry ≥ 1.
/// Deterministic: rounding residue is settled by repeatedly adjusting the
/// largest entry (ties broken by lowest index).  Requires `target ≥ len`.
fn rebalance(values: &mut [u64], target: u64) {
    assert!(
        target >= values.len() as u64,
        "target below the per-field floor"
    );
    let sum: u64 = values.iter().sum();
    for value in values.iter_mut() {
        // `sum == 0` (all-zero input) floors every entry at 1.
        *value = match (*value * target).checked_div(sum) {
            Some(scaled) => scaled.max(1),
            None => 1,
        };
    }
    loop {
        let current: u64 = values.iter().sum();
        match current.cmp(&target) {
            std::cmp::Ordering::Equal => return,
            std::cmp::Ordering::Less => {
                // Hand the whole deficit to the largest entry.
                let index = max_index(values);
                values[index] += target - current;
            }
            std::cmp::Ordering::Greater => {
                // Shave the largest entry down to its floor if needed; with
                // target ≥ len the loop always terminates before every
                // entry reaches the floor.
                let index = max_index(values);
                let room = values[index] - 1;
                assert!(room > 0, "rebalance floor invariant violated");
                values[index] -= (current - target).min(room);
            }
        }
    }
}

/// Index of the largest value (lowest index wins ties).
fn max_index(values: &[u64]) -> usize {
    let mut best = 0;
    for (index, value) in values.iter().enumerate() {
        if *value > values[best] {
            best = index;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_census() -> ConstructCensus {
        // An empty census reports zero for every key, which maximises the
        // census-driven pull; fine for unit tests.
        ConstructCensus::default()
    }

    #[test]
    fn full_coverage_is_a_fixpoint() {
        let base = GeneratorConfig::default();
        let adapted = WeightAdapter::default().adapt(&base, &[], &no_census(), 0);
        assert_eq!(adapted.statements.as_array(), base.statements.as_array());
        assert_eq!(adapted.expressions.as_array(), base.expressions.as_array());
    }

    #[test]
    fn unfired_shift_rules_pull_shift_weight_up() {
        let base = GeneratorConfig::default();
        let unfired = vec![
            "ConstantFolding/fold_shift".to_string(),
            "StrengthReduction/shift_by_zero".to_string(),
        ];
        let adapted = WeightAdapter::default().adapt(&base, &unfired, &no_census(), 0);
        assert!(
            adapted.expressions.shift > base.expressions.shift,
            "shift weight should rise: {} vs {}",
            adapted.expressions.shift,
            base.expressions.shift
        );
    }

    #[test]
    fn adaptation_preserves_the_total_and_the_floor() {
        let base = GeneratorConfig::default();
        let unfired: Vec<String> = p4c_rule_universe();
        let adapted = WeightAdapter::default().adapt(&base, &unfired, &no_census(), 0);
        let base_stmt: u32 = base.statements.total();
        let new_stmt: u32 = adapted.statements.total();
        assert_eq!(base_stmt, new_stmt);
        assert!(adapted.statements.as_array().iter().all(|&w| w >= 1));
        assert!(adapted.expressions.as_array().iter().all(|&w| w >= 1));
    }

    /// A stand-in for `p4c::coverage::all_rule_keys()` (p4-gen does not
    /// depend on p4c; the mapping only needs the key shape).
    fn p4c_rule_universe() -> Vec<String> {
        [
            "ConstantFolding/fold_arith",
            "ConstantFolding/fold_slice",
            "StrengthReduction/mul_pow2_to_shift",
            "SideEffectOrdering/hoist_call",
            "InlineFunctions/inline_call",
            "RemoveActionParameters/exit_copy_out",
            "SimplifyDefUse/dead_store",
            "LocalCopyPropagation/propagate",
            "Predication/predicate_then",
            "FlattenBlocks/splice_block",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    }

    #[test]
    fn rebalance_hits_the_target_exactly() {
        let mut values = [100u64, 1, 1, 1];
        rebalance(&mut values, 10);
        assert_eq!(values.iter().sum::<u64>(), 10);
        assert!(values.iter().all(|&v| v >= 1));
        let mut tiny = [0u64, 0, 0];
        rebalance(&mut tiny, 9);
        assert_eq!(tiny.iter().sum::<u64>(), 9);
    }
}
