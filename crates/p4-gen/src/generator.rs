//! The random program generator (paper §4).
//!
//! Programs are grown as ASTs: the generator keeps a scope of typed
//! l-values (header fields, metadata fields, declared locals, callable
//! parameters) and probabilistically picks which statement or expression
//! node to add next, always producing well-typed code.  A program rejected
//! by the parser or the type checker is a generator bug, not a compiler bug
//! (§4.2) — the property tests in this crate enforce that contract.

use crate::config::GeneratorConfig;
use p4_ir::builder::{self, SkeletonOptions};
use p4_ir::{
    ActionDecl, ActionRef, Architecture, BinOp, Block, Declaration, Direction, Expr, FunctionDecl,
    KeyElement, MatchKind, Param, Program, Statement, TableDecl, Type, UnOp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A writable l-value the generator may reference, with its bit width.
#[derive(Debug, Clone)]
struct LValue {
    /// Dotted path, e.g. `["hdr", "h", "a"]`.
    path: Vec<String>,
    width: u32,
    /// Whether the value may be written (header/metadata fields and locals
    /// are writable; function `in` parameters are not).
    writable: bool,
}

impl LValue {
    fn expr(&self) -> Expr {
        let parts: Vec<&str> = self.path.iter().map(String::as_str).collect();
        Expr::dotted(&parts)
    }
}

/// The random program generator.
pub struct RandomProgramGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    restrictions: p4_ir::TargetRestrictions,
    counter: u32,
}

impl RandomProgramGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`GeneratorConfig::validate`] — e.g. a
    /// weight row whose always-available kinds all carry weight 0, which
    /// would otherwise break the weighted chooser mid-generation.
    pub fn new(config: GeneratorConfig, seed: u64) -> RandomProgramGenerator {
        if let Err(error) = config.validate() {
            panic!("invalid GeneratorConfig: {error}");
        }
        let restrictions = Architecture::by_name(&config.architecture)
            .map(|a| a.restrictions)
            .unwrap_or_default();
        RandomProgramGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            restrictions,
            counter: 0,
        }
    }

    /// Generates one complete, well-typed program.
    pub fn generate(&mut self) -> Program {
        self.counter = 0;
        let functions = self.generate_functions();
        let (actions, action_names) = self.generate_actions();
        let tables = self.generate_tables(&action_names);
        let table_names: Vec<String> = tables.iter().map(|t| t.name.clone()).collect();
        let direct_actions: Vec<ActionDecl> = actions
            .iter()
            .filter(|a| !a.params.is_empty())
            .cloned()
            .collect();
        let function_decls: Vec<FunctionDecl> = functions.clone();

        let mut locals: Vec<Declaration> = Vec::new();
        locals.push(Declaration::Action(builder::no_action()));
        locals.extend(actions.into_iter().map(Declaration::Action));
        locals.extend(tables.into_iter().map(Declaration::Table));

        let mut scope = self.base_lvalues();
        let apply = self.generate_block(
            self.config.max_apply_statements,
            &mut scope,
            &table_names,
            &direct_actions,
            &function_decls,
            self.config.max_if_depth,
            true,
        );

        let options = SkeletonOptions {
            architecture: self.config.architecture.clone(),
        };
        let mut program = builder::program_with_ingress(&options, locals, apply);
        for function in functions {
            program
                .declarations
                .insert(0, Declaration::Function(function));
        }
        program
    }

    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.counter);
        self.counter += 1;
        name
    }

    fn pick(&mut self, upper: usize) -> usize {
        self.rng.gen_range(0..upper.max(1))
    }

    fn chance(&mut self, percent: u32) -> bool {
        self.rng.gen_range(0..100) < percent
    }

    // ---- scope ------------------------------------------------------------

    /// The header/metadata fields every generated program can use.
    fn base_lvalues(&self) -> Vec<LValue> {
        let mut lvalues = vec![
            LValue {
                path: dotted(&["hdr", "eth", "dst_addr"]),
                width: 48,
                writable: true,
            },
            LValue {
                path: dotted(&["hdr", "eth", "src_addr"]),
                width: 48,
                writable: true,
            },
            LValue {
                path: dotted(&["hdr", "eth", "eth_type"]),
                width: 16,
                writable: true,
            },
            LValue {
                path: dotted(&["hdr", "h", "a"]),
                width: 8,
                writable: true,
            },
            LValue {
                path: dotted(&["hdr", "h", "b"]),
                width: 8,
                writable: true,
            },
            LValue {
                path: dotted(&["hdr", "h", "c"]),
                width: 8,
                writable: true,
            },
            LValue {
                path: dotted(&["meta", "tmp"]),
                width: 16,
                writable: true,
            },
            LValue {
                path: dotted(&["meta", "flag"]),
                width: 8,
                writable: true,
            },
        ];
        if self.config.architecture == "v1model" {
            lvalues.push(LValue {
                path: dotted(&["standard_metadata", "egress_spec"]),
                width: 9,
                writable: true,
            });
        } else {
            lvalues.push(LValue {
                path: dotted(&["ig_intr_md", "ucast_egress_port"]),
                width: 9,
                writable: true,
            });
        }
        // Respect the target's operand-width restriction.
        let max_width = self.restrictions.max_operand_width;
        lvalues.retain(|lv| lv.width <= max_width);
        lvalues
    }

    // ---- top-level callables -------------------------------------------------

    fn generate_functions(&mut self) -> Vec<FunctionDecl> {
        let count = self.pick(self.config.max_functions + 1);
        (0..count).map(|_| self.generate_function()).collect()
    }

    fn generate_function(&mut self) -> FunctionDecl {
        let name = self.fresh("fun_");
        let width = 8;
        let direction = if self.config.allow_inout_calls && self.chance(50) {
            Direction::InOut
        } else {
            Direction::In
        };
        let param = Param::new(direction, "x", Type::bits(width));
        let mut scope = vec![LValue {
            path: vec!["x".into()],
            width,
            writable: direction == Direction::InOut,
        }];
        let mut statements = Vec::new();
        if direction == Direction::InOut && self.chance(60) {
            let value = self.generate_expression(width, &scope, self.config.max_expression_depth);
            statements.push(Statement::assign(Expr::path("x"), value));
        }
        // Optional early return inside a conditional, to exercise the
        // return-flag path of inlining.
        if self.chance(40) {
            let cond = self.generate_condition(&scope, 1);
            let value = self.generate_expression(width, &scope, 1);
            statements.push(Statement::if_then(
                cond,
                Statement::Block(Block::new(vec![Statement::Return(Some(value))])),
            ));
        }
        let final_value = self.generate_expression(width, &scope, self.config.max_expression_depth);
        statements.push(Statement::Return(Some(final_value)));
        scope.clear();
        FunctionDecl {
            name,
            return_type: Type::bits(width),
            params: vec![param],
            body: Block::new(statements),
        }
    }

    fn generate_actions(&mut self) -> (Vec<ActionDecl>, Vec<String>) {
        let count = 1 + self.pick(self.config.max_actions);
        let mut actions = Vec::new();
        let mut table_action_names = Vec::new();
        for index in 0..count {
            let name = self.fresh("act_");
            // Actions bound to tables carry either no parameters or a
            // directionless (control-plane) parameter; directly invoked
            // actions carry an `inout` parameter.
            let direct = self.config.allow_inout_calls && index % 3 == 2;
            let mut params = Vec::new();
            let mut scope = self.base_lvalues();
            if direct {
                params.push(Param::new(Direction::InOut, "val", Type::bits(8)));
                scope.push(LValue {
                    path: vec!["val".into()],
                    width: 8,
                    writable: true,
                });
            } else if self.chance(50) {
                params.push(Param::new(Direction::None, "port", Type::bits(8)));
                scope.push(LValue {
                    path: vec!["port".into()],
                    width: 8,
                    writable: false,
                });
            }
            let statement_count = 1 + self.pick(self.config.max_action_statements);
            let mut statements = Vec::new();
            for _ in 0..statement_count {
                statements.push(self.generate_action_statement(&scope));
            }
            if direct && self.config.allow_exit && self.chance(25) {
                statements.push(Statement::Exit);
            }
            if !direct {
                table_action_names.push(name.clone());
            }
            actions.push(ActionDecl {
                name,
                params,
                body: Block::new(statements),
            });
        }
        (actions, table_action_names)
    }

    /// Action bodies stick to assignments and simple conditionals (plain
    /// and if/else) so they remain valid predication targets.  The
    /// conditional probability tracks the `if_statement` weight, so the
    /// coverage-guided adapter can push action bodies toward predication
    /// fodder too.
    fn generate_action_statement(&mut self, scope: &[LValue]) -> Statement {
        let weights = &self.config.statements;
        let if_chance = (100 * weights.if_statement / weights.total().max(1)).clamp(10, 60);
        if self.chance(if_chance) {
            let cond = self.generate_condition(scope, 1);
            let target = self.pick_writable(scope);
            let value = self.generate_expression(target.width, scope, 1);
            let then_block =
                Statement::Block(Block::new(vec![Statement::assign(target.expr(), value)]));
            if self.chance(40) {
                let else_target = self.pick_writable(scope);
                let else_value = self.generate_expression(else_target.width, scope, 1);
                Statement::if_else(
                    cond,
                    then_block,
                    Statement::Block(Block::new(vec![Statement::assign(
                        else_target.expr(),
                        else_value,
                    )])),
                )
            } else {
                Statement::if_then(cond, then_block)
            }
        } else {
            let target = self.pick_writable(scope);
            let value =
                self.generate_expression(target.width, scope, self.config.max_expression_depth);
            Statement::assign(target.expr(), value)
        }
    }

    fn generate_tables(&mut self, action_names: &[String]) -> Vec<TableDecl> {
        let count = self
            .pick(self.config.max_tables + 1)
            .min(self.restrictions.max_tables_per_control);
        let mut tables = Vec::new();
        let scope = self.base_lvalues();
        for _ in 0..count {
            let name = self.fresh("t_");
            let key_count = 1 + self.pick(2);
            let keys = (0..key_count)
                .map(|_| {
                    let lvalue = &scope[self.pick(scope.len())];
                    KeyElement {
                        expr: lvalue.expr(),
                        match_kind: MatchKind::Exact,
                    }
                })
                .collect();
            let mut actions: Vec<ActionRef> = action_names
                .iter()
                .map(|n| ActionRef::new(n.clone()))
                .collect();
            actions.push(ActionRef::new("NoAction"));
            tables.push(TableDecl {
                name,
                keys,
                actions,
                default_action: ActionRef::new("NoAction"),
            });
        }
        tables
    }

    // ---- statements ------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn generate_block(
        &mut self,
        statement_count: usize,
        scope: &mut Vec<LValue>,
        tables: &[String],
        direct_actions: &[ActionDecl],
        functions: &[FunctionDecl],
        if_depth: usize,
        allow_exit: bool,
    ) -> Block {
        let mut statements = Vec::new();
        let count = 1 + self.pick(statement_count.max(1));
        for _ in 0..count {
            let statement = self.generate_statement(
                scope,
                tables,
                direct_actions,
                functions,
                if_depth,
                allow_exit,
            );
            statements.push(statement);
        }
        Block::new(statements)
    }

    fn generate_statement(
        &mut self,
        scope: &mut Vec<LValue>,
        tables: &[String],
        direct_actions: &[ActionDecl],
        functions: &[FunctionDecl],
        if_depth: usize,
        allow_exit: bool,
    ) -> Statement {
        let w = &self.config.statements;
        let mut choices: Vec<(u32, u8)> = vec![
            (w.assignment, 0),
            (w.slice_assignment, 1),
            (w.declaration, 3),
            (w.set_validity, 7),
        ];
        if if_depth > 0 {
            choices.push((w.if_statement, 2));
        }
        if !tables.is_empty() {
            choices.push((w.table_apply, 4));
        }
        if !direct_actions.is_empty() {
            choices.push((w.action_call, 5));
        }
        if !functions.is_empty() {
            choices.push((w.function_call, 6));
        }
        if allow_exit && self.config.allow_exit {
            choices.push((w.exit, 8));
        }
        match self.weighted_choice(&choices) {
            0 => {
                let target = self.pick_writable(scope);
                let value =
                    self.generate_expression(target.width, scope, self.config.max_expression_depth);
                Statement::assign(target.expr(), value)
            }
            1 => {
                // Slice assignment: pick a field wide enough to slice.
                let candidates: Vec<LValue> = scope
                    .iter()
                    .filter(|lv| lv.writable && lv.width >= 8)
                    .cloned()
                    .collect();
                if candidates.is_empty() {
                    return Statement::Empty;
                }
                let target = candidates[self.pick(candidates.len())].clone();
                let hi = self.rng.gen_range(1..target.width.min(16));
                let lo = self.rng.gen_range(0..=hi.saturating_sub(1));
                let width = hi - lo + 1;
                let value = self.generate_expression(width, scope, 1);
                Statement::Assign {
                    lhs: Expr::slice(target.expr(), hi, lo),
                    rhs: value,
                }
            }
            2 => {
                let cond = self.generate_condition(scope, self.config.max_expression_depth);
                let mut then_scope = scope.clone();
                let then_block = self.generate_block(
                    2,
                    &mut then_scope,
                    tables,
                    direct_actions,
                    functions,
                    if_depth - 1,
                    allow_exit,
                );
                if self.chance(50) {
                    let mut else_scope = scope.clone();
                    let else_block = self.generate_block(
                        2,
                        &mut else_scope,
                        tables,
                        direct_actions,
                        functions,
                        if_depth - 1,
                        allow_exit,
                    );
                    Statement::if_else(
                        cond,
                        Statement::Block(then_block),
                        Statement::Block(else_block),
                    )
                } else {
                    Statement::if_then(cond, Statement::Block(then_block))
                }
            }
            3 => {
                let width = *[8u32, 16, 8, 9][self.pick(4)..].first().expect("non-empty");
                let name = self.fresh("var_");
                let init = if self.chance(80) {
                    Some(self.generate_expression(width, scope, self.config.max_expression_depth))
                } else {
                    None
                };
                scope.push(LValue {
                    path: vec![name.clone()],
                    width,
                    writable: true,
                });
                Statement::Declare {
                    name,
                    ty: Type::bits(width),
                    init,
                }
            }
            4 => {
                let table = &tables[self.pick(tables.len())];
                Statement::call(vec![table.as_str(), "apply"], vec![])
            }
            5 => {
                let action = &direct_actions[self.pick(direct_actions.len())];
                let args: Vec<Expr> = action
                    .params
                    .iter()
                    .map(|param| {
                        let width = param.ty.width().unwrap_or(8);
                        if param.direction.requires_lvalue() {
                            self.pick_writable_of_width(scope, width).expr()
                        } else {
                            self.generate_expression(width, scope, 1)
                        }
                    })
                    .collect();
                Statement::Call(p4_ir::CallExpr::new(vec![action.name.clone()], args))
            }
            6 => {
                let function = &functions[self.pick(functions.len())];
                let width = function.return_type.width().unwrap_or(8);
                let args: Vec<Expr> = function
                    .params
                    .iter()
                    .map(|param| {
                        let param_width = param.ty.width().unwrap_or(8);
                        if param.direction.requires_lvalue() {
                            self.pick_writable_of_width(scope, param_width).expr()
                        } else {
                            self.generate_expression(param_width, scope, 1)
                        }
                    })
                    .collect();
                let call = Expr::Call(Box::new(p4_ir::CallExpr::new(
                    vec![function.name.clone()],
                    args,
                )));
                let target = self.pick_writable_of_width(scope, width);
                // Either assign the result directly or embed the call in a
                // larger expression (exercising side-effect ordering).
                if self.chance(50) {
                    Statement::assign(target.expr(), call)
                } else {
                    let extra = self.generate_expression(width, scope, 1);
                    Statement::assign(target.expr(), Expr::binary(BinOp::Add, call, extra))
                }
            }
            7 => {
                if !self.config.allow_validity_ops {
                    return Statement::Empty;
                }
                let method = if self.chance(50) {
                    "setValid"
                } else {
                    "setInvalid"
                };
                Statement::call(vec!["hdr", "h", method], vec![])
            }
            _ => Statement::Exit,
        }
    }

    fn weighted_choice(&mut self, choices: &[(u32, u8)]) -> u8 {
        let total: u32 = choices.iter().map(|(w, _)| *w).sum();
        if total == 0 {
            return 0;
        }
        let mut roll = self.rng.gen_range(0..total);
        for (weight, tag) in choices {
            if roll < *weight {
                return *tag;
            }
            roll -= weight;
        }
        choices.last().map(|(_, t)| *t).unwrap_or(0)
    }

    fn pick_writable(&mut self, scope: &[LValue]) -> LValue {
        let writable: Vec<&LValue> = scope.iter().filter(|lv| lv.writable).collect();
        writable[self.pick(writable.len())].clone()
    }

    fn pick_writable_of_width(&mut self, scope: &[LValue], width: u32) -> LValue {
        let candidates: Vec<&LValue> = scope
            .iter()
            .filter(|lv| lv.writable && lv.width == width)
            .collect();
        if candidates.is_empty() {
            // Fall back to the custom header field of that width if present,
            // otherwise any 8-bit field (the skeleton always has them).
            return scope
                .iter()
                .filter(|lv| lv.writable)
                .min_by_key(|lv| (lv.width as i64 - i64::from(width)).unsigned_abs())
                .cloned()
                .expect("scope always contains writable l-values");
        }
        candidates[self.pick(candidates.len())].clone()
    }

    // ---- expressions ---------------------------------------------------------------

    fn generate_condition(&mut self, scope: &[LValue], depth: usize) -> Expr {
        let lvalue = &scope[self.pick(scope.len())];
        let width = lvalue.width;
        let left = if depth > 1 {
            self.generate_expression(width, scope, depth - 1)
        } else {
            lvalue.expr()
        };
        let right = self.generate_expression(width, scope, 1);
        let op = [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ][self.pick(6)];
        let comparison = Expr::binary(op, left, right);
        let headers_in_scope = scope
            .iter()
            .any(|lv| lv.path.first().map(String::as_str) == Some("hdr"));
        if self.config.allow_validity_ops && headers_in_scope && self.chance(15) {
            Expr::binary(
                BinOp::And,
                Expr::call(vec!["hdr", "h", "isValid"], vec![]),
                comparison,
            )
        } else if self.chance(10) {
            Expr::unary(UnOp::Not, comparison)
        } else {
            comparison
        }
    }

    /// Generates an expression of exactly `width` bits.
    fn generate_expression(&mut self, width: u32, scope: &[LValue], depth: usize) -> Expr {
        if depth == 0 {
            return self.generate_leaf(width, scope);
        }
        let w = &self.config.expressions;
        let mut choices: Vec<(u32, u8)> = vec![
            (w.literal, 0),
            (w.variable, 1),
            (w.arithmetic, 2),
            (w.bitwise, 3),
            (w.comparison_ternary, 5),
            (w.cast, 7),
        ];
        // Shifts are always offered; targets that forbid variable shift
        // amounts get constant amounts from the shift generator itself.
        choices.push((w.shift, 4));
        if width >= 2 {
            choices.push((w.slice, 6));
        }
        choices.push((w.saturating, 8));
        match self.weighted_choice(&choices) {
            0 => self.literal(width),
            1 => self.generate_leaf(width, scope),
            2 => {
                let op = if self.restrictions.allows_multiplication && self.chance(25) {
                    BinOp::Mul
                } else if self.chance(50) {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                Expr::binary(
                    op,
                    self.generate_expression(width, scope, depth - 1),
                    self.generate_expression(width, scope, depth - 1),
                )
            }
            3 => {
                let op = [BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor][self.pick(3)];
                Expr::binary(
                    op,
                    self.generate_expression(width, scope, depth - 1),
                    self.generate_expression(width, scope, depth - 1),
                )
            }
            4 => {
                let op = if self.chance(50) {
                    BinOp::Shl
                } else {
                    BinOp::Shr
                };
                let amount = if self.restrictions.allows_variable_shift && self.chance(30) {
                    self.generate_leaf(width, scope)
                } else {
                    Expr::uint(u128::from(self.rng.gen_range(0..width.min(16))), width)
                };
                let base = if self.config.allow_unsized_shift && op == BinOp::Shl && self.chance(10)
                {
                    // The Figure-5b shape: an unsized literal shifted by a
                    // run-time amount, wrapped in a cast to fix the width.
                    return Expr::cast(
                        Type::bits(width),
                        Expr::binary(BinOp::Shl, Expr::int(1), self.generate_leaf(width, scope)),
                    );
                } else {
                    self.generate_expression(width, scope, depth - 1)
                };
                Expr::binary(op, base, amount)
            }
            5 => {
                let cond = self.generate_condition(scope, 1);
                Expr::ternary(
                    cond,
                    self.generate_expression(width, scope, depth - 1),
                    self.generate_expression(width, scope, depth - 1),
                )
            }
            6 => {
                // Slice of a wider value, or of a cast (Figure 5c's shape).
                let wider: Vec<&LValue> = scope.iter().filter(|lv| lv.width > width).collect();
                if !wider.is_empty() && self.chance(70) {
                    let base = wider[self.pick(wider.len())].clone();
                    let lo = self.rng.gen_range(0..=(base.width - width));
                    Expr::slice(base.expr(), lo + width - 1, lo)
                } else if self.config.allow_const_slices {
                    let base_width = width * 2;
                    let inner = self.generate_expression(base_width, scope, 0);
                    Expr::slice(Expr::cast(Type::bits(base_width), inner), width - 1, 0)
                } else {
                    self.generate_leaf(width, scope)
                }
            }
            7 => {
                // Cast from a different width.
                let source_width = [8u32, 16, 48, 9, 4][self.pick(5)];
                let inner = self.generate_expression(
                    source_width.min(self.restrictions.max_operand_width),
                    scope,
                    depth - 1,
                );
                Expr::cast(Type::bits(width), inner)
            }
            _ => {
                let op = if self.chance(50) {
                    BinOp::SatAdd
                } else {
                    BinOp::SatSub
                };
                Expr::binary(
                    op,
                    self.generate_expression(width, scope, depth - 1),
                    self.generate_expression(width, scope, depth - 1),
                )
            }
        }
    }

    fn generate_leaf(&mut self, width: u32, scope: &[LValue]) -> Expr {
        let matching: Vec<&LValue> = scope.iter().filter(|lv| lv.width == width).collect();
        if !matching.is_empty() && self.chance(70) {
            return matching[self.pick(matching.len())].clone().expr();
        }
        // A cast of any in-scope value, or a literal.
        if !scope.is_empty() && self.chance(40) {
            let lvalue = &scope[self.pick(scope.len())];
            return Expr::cast(Type::bits(width), lvalue.expr());
        }
        self.literal(width)
    }

    fn literal(&mut self, width: u32) -> Expr {
        // Identity/strength-reduction fodder: rewrites like `x + 0`,
        // `x * 2^k`, or `x & ~0` only fire on these shapes, which a uniform
        // draw essentially never produces at wider widths.
        if self.config.special_literal_bias > 0 && self.chance(self.config.special_literal_bias) {
            let all_ones = p4_ir::max_unsigned(width);
            let value = match self.pick(4) {
                0 => 0,
                1 => 1,
                2 => all_ones,
                _ => 1u128 << self.rng.gen_range(0..width.min(16)),
            };
            return Expr::uint(value & all_ones, width);
        }
        let max = p4_ir::max_unsigned(width.min(64));
        let value = u128::from(self.rng.gen_range(0..=max.min(u128::from(u64::MAX)) as u64));
        Expr::uint(value & p4_ir::max_unsigned(width), width)
    }
}

fn dotted(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_check::check_program;
    use p4_ir::print_program;

    #[test]
    fn generated_programs_type_check() {
        for seed in 0..60 {
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            let program = generator.generate();
            let errors = check_program(&program);
            assert!(
                errors.is_empty(),
                "seed {seed} produced an ill-typed program:\n{}\n{errors:#?}",
                print_program(&program)
            );
        }
    }

    #[test]
    fn generated_programs_roundtrip_through_the_printer_and_parser() {
        for seed in 0..20 {
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            let program = generator.generate();
            let text = print_program(&program);
            let reparsed = p4_parser::parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(
                print_program(&reparsed),
                text,
                "seed {seed} does not round-trip"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomProgramGenerator::new(GeneratorConfig::default(), 42).generate();
        let b = RandomProgramGenerator::new(GeneratorConfig::default(), 42).generate();
        assert_eq!(print_program(&a), print_program(&b));
        let c = RandomProgramGenerator::new(GeneratorConfig::default(), 43).generate();
        assert_ne!(print_program(&a), print_program(&c));
    }

    #[test]
    fn tofino_configuration_respects_target_restrictions() {
        for seed in 0..20 {
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::tofino(), seed);
            let program = generator.generate();
            assert_eq!(program.architecture, "tna");
            let text = print_program(&program);
            // No references to the 48-bit MAC address fields in expressions
            // (they exceed the 32-bit operand restriction).
            assert!(!text.contains("dst_addr +"));
            let errors = check_program(&program);
            assert!(errors.is_empty(), "seed {seed}: {errors:#?}");
        }
    }

    #[test]
    fn programs_exercise_a_variety_of_constructs() {
        let mut saw_table = false;
        let mut saw_if = false;
        let mut saw_call = false;
        let mut saw_slice = false;
        for seed in 0..40 {
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            let text = print_program(&generator.generate());
            saw_table |= text.contains(".apply()");
            saw_if |= text.contains("if (");
            saw_call |= text.contains("fun_") || text.contains("act_");
            saw_slice |= text.contains("[");
        }
        assert!(saw_table, "no generated program applied a table");
        assert!(saw_if, "no generated program branched");
        assert!(saw_call, "no generated program called a function or action");
        assert!(saw_slice, "no generated program used slices");
    }

    #[test]
    #[should_panic(expected = "invalid GeneratorConfig")]
    fn zero_weight_configs_are_rejected_at_construction() {
        let config = GeneratorConfig {
            statements: crate::config::StatementWeights {
                assignment: 0,
                slice_assignment: 0,
                if_statement: 0,
                declaration: 0,
                table_apply: 0,
                action_call: 0,
                function_call: 0,
                set_validity: 0,
                exit: 0,
            },
            ..GeneratorConfig::default()
        };
        let _ = RandomProgramGenerator::new(config, 0);
    }

    #[test]
    fn generated_program_sizes_are_bounded() {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), 7);
        let program = generator.generate();
        assert!(
            program.size() < 400,
            "tiny config should produce small programs"
        );
    }
}
