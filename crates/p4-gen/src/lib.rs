//! # p4-gen — random P4 program generation
//!
//! Gauntlet's first technique (paper §4): grow random, syntactically valid,
//! well-typed programs that exercise as many language constructs — and
//! therefore as many compiler passes — as possible.  The generator is
//! configurable ([`GeneratorConfig`]) so programs stay small and targeted,
//! and it can be specialised per back end (v1model vs the restricted TNA
//! model), mirroring §4.2.

pub mod adapt;
pub mod config;
pub mod generator;

pub use adapt::WeightAdapter;
pub use config::{ExpressionWeights, GeneratorConfig, StatementWeights};
pub use generator::RandomProgramGenerator;
