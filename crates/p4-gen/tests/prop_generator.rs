//! Property-based tests for the random program generator: for *any* seed the
//! generated program must be well-typed, printable, re-parseable, and within
//! the configured size bounds — the generator contract from paper §4.2.

use p4_check::check_program;
use p4_gen::{
    ExpressionWeights, GeneratorConfig, RandomProgramGenerator, StatementWeights, WeightAdapter,
};
use p4_ir::print_program;
use p4_parser::parse_program;
use proptest::prelude::*;

/// A representative slice of the `p4c::coverage` rule universe (p4-gen does
/// not depend on p4c; the adapter only consumes `"pass/rule"` keys).
const RULE_UNIVERSE: &[&str] = &[
    "ConstantFolding/fold_arith",
    "ConstantFolding/fold_bitwise",
    "ConstantFolding/fold_shift",
    "ConstantFolding/fold_compare",
    "ConstantFolding/fold_cast",
    "ConstantFolding/fold_slice",
    "ConstantFolding/fold_ternary",
    "ConstantFolding/prune_if",
    "StrengthReduction/add_zero_identity",
    "StrengthReduction/mul_pow2_to_shift",
    "StrengthReduction/shift_by_zero",
    "StrengthReduction/mask_all_ones",
    "SideEffectOrdering/hoist_call",
    "InlineFunctions/inline_call",
    "InlineFunctions/guarded_return",
    "RemoveActionParameters/inline_call",
    "RemoveActionParameters/exit_copy_out",
    "SimplifyDefUse/dead_store",
    "SimplifyDefUse/dead_declare",
    "LocalCopyPropagation/propagate",
    "Predication/predicate_then",
    "FlattenBlocks/splice_block",
    "FlattenBlocks/drop_empty_else",
];

/// Deterministic pseudo-random weight row derived from a test seed (the
/// shim has no struct strategies; SplitMix64 gives a reproducible spread
/// including zero rows).
fn mix(state: &mut u64) -> u32 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((z ^ (z >> 31)) % 50) as u32
}

fn arbitrary_config(seed: u64) -> GeneratorConfig {
    let mut state = seed;
    let config = GeneratorConfig {
        statements: StatementWeights {
            assignment: mix(&mut state).max(1),
            slice_assignment: mix(&mut state),
            if_statement: mix(&mut state),
            declaration: mix(&mut state),
            table_apply: mix(&mut state),
            action_call: mix(&mut state),
            function_call: mix(&mut state),
            set_validity: mix(&mut state),
            exit: mix(&mut state),
        },
        expressions: ExpressionWeights {
            literal: mix(&mut state).max(1),
            variable: mix(&mut state),
            arithmetic: mix(&mut state),
            bitwise: mix(&mut state),
            shift: mix(&mut state),
            comparison_ternary: mix(&mut state),
            slice: mix(&mut state),
            cast: mix(&mut state),
            saturating: mix(&mut state),
        },
        ..GeneratorConfig::default()
    };
    config.validate().expect("arbitrary config is satisfiable");
    config
}

fn arbitrary_unfired(seed: u64) -> Vec<String> {
    let mut state = seed ^ 0xDEADBEEF;
    RULE_UNIVERSE
        .iter()
        .filter(|_| mix(&mut state).is_multiple_of(2))
        .map(|rule| rule.to_string())
        .collect()
}

fn stmt_total(weights: &StatementWeights) -> u32 {
    weights.total()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn any_seed_produces_a_well_typed_program(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
        let program = generator.generate();
        let errors = check_program(&program);
        prop_assert!(errors.is_empty(), "seed {seed}: {errors:#?}\n{}", print_program(&program));
    }

    #[test]
    fn any_seed_round_trips_through_print_and_parse(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
        let program = generator.generate();
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    #[test]
    fn tiny_configuration_bounds_program_size(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        prop_assert!(program.size() < 600, "seed {seed}: size {}", program.size());
    }

    /// For any base weights and any unfired-rule subset, the adapter yields
    /// strictly positive weights whose group totals are preserved — so the
    /// adapted configuration always passes `GeneratorConfig::validate` and
    /// the weighted chooser can never face an all-zero row.
    #[test]
    fn weight_adapter_yields_positive_normalised_weights(seed in any::<u64>()) {
        let base = arbitrary_config(seed);
        let unfired = arbitrary_unfired(seed);
        let census = p4_ir::ConstructCensus::default();
        let adapted = WeightAdapter::default().adapt(&base, &unfired, &census, seed as usize % 5);
        if unfired.is_empty() {
            return; // fixpoint case, covered by the property below
        }
        for weight in [
            adapted.statements.assignment,
            adapted.statements.slice_assignment,
            adapted.statements.if_statement,
            adapted.statements.declaration,
            adapted.statements.table_apply,
            adapted.statements.action_call,
            adapted.statements.function_call,
            adapted.statements.set_validity,
            adapted.statements.exit,
            adapted.expressions.literal,
            adapted.expressions.variable,
            adapted.expressions.arithmetic,
            adapted.expressions.bitwise,
            adapted.expressions.shift,
            adapted.expressions.comparison_ternary,
            adapted.expressions.slice,
            adapted.expressions.cast,
            adapted.expressions.saturating,
        ] {
            prop_assert!(weight >= 1, "seed {seed}: zero weight after adaptation");
        }
        prop_assert_eq!(
            stmt_total(&adapted.statements),
            stmt_total(&base.statements).max(9),
            "seed {seed}: statement total not preserved"
        );
        prop_assert_eq!(
            adapted.expressions.total(),
            base.expressions.total().max(9),
            "seed {seed}: expression total not preserved"
        );
        prop_assert!(adapted.validate().is_ok(), "seed {seed}");
    }

    /// Full coverage is a fixpoint: with no unfired rules the adapter is a
    /// byte-for-byte no-op regardless of the census.
    #[test]
    fn weight_adapter_is_identity_on_full_coverage(seed in any::<u64>()) {
        let base = arbitrary_config(seed);
        let mut program_gen = RandomProgramGenerator::new(base.clone(), seed);
        let census = p4_ir::ConstructCensus::of(&program_gen.generate());
        let adapted = WeightAdapter::default().adapt(&base, &[], &census, seed as usize % 5);
        prop_assert_eq!(
            format!("{:?}", adapted.statements),
            format!("{:?}", base.statements)
        );
        prop_assert_eq!(
            format!("{:?}", adapted.expressions),
            format!("{:?}", base.expressions)
        );
    }

    /// Adaptation is deterministic: the same inputs produce the same output
    /// (the campaign's byte-identical-across-jobs contract leans on this).
    #[test]
    fn weight_adapter_is_deterministic(seed in any::<u64>()) {
        let base = arbitrary_config(seed);
        let unfired = arbitrary_unfired(seed);
        let census = p4_ir::ConstructCensus::default();
        let adapter = WeightAdapter::default();
        let a = adapter.adapt(&base, &unfired, &census, seed as usize % 7);
        let b = adapter.adapt(&base, &unfired, &census, seed as usize % 7);
        prop_assert_eq!(format!("{:?}", a.statements), format!("{:?}", b.statements));
        prop_assert_eq!(format!("{:?}", a.expressions), format!("{:?}", b.expressions));
    }

    #[test]
    fn tna_programs_respect_backend_restrictions(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tofino(), seed);
        let program = generator.generate();
        prop_assert_eq!(program.architecture.as_str(), "tna");
        prop_assert!(check_program(&program).is_empty(), "seed {seed}");
        // The TNA model forbids multiplication; the generator must not emit it.
        let printed = print_program(&program);
        prop_assert!(!printed.contains(" * "), "seed {seed} emitted a multiplication:\n{printed}");
    }
}
