//! Property-based tests for the random program generator: for *any* seed the
//! generated program must be well-typed, printable, re-parseable, and within
//! the configured size bounds — the generator contract from paper §4.2.

use p4_check::check_program;
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_ir::print_program;
use p4_parser::parse_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn any_seed_produces_a_well_typed_program(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
        let program = generator.generate();
        let errors = check_program(&program);
        prop_assert!(errors.is_empty(), "seed {seed}: {errors:#?}\n{}", print_program(&program));
    }

    #[test]
    fn any_seed_round_trips_through_print_and_parse(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
        let program = generator.generate();
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    #[test]
    fn tiny_configuration_bounds_program_size(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        prop_assert!(program.size() < 600, "seed {seed}: size {}", program.size());
    }

    #[test]
    fn tna_programs_respect_backend_restrictions(seed in any::<u64>()) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tofino(), seed);
        let program = generator.generate();
        prop_assert_eq!(program.architecture.as_str(), "tna");
        prop_assert!(check_program(&program).is_empty(), "seed {seed}");
        // The TNA model forbids multiplication; the generator must not emit it.
        let printed = print_program(&program);
        prop_assert!(!printed.contains(" * "), "seed {seed} emitted a multiplication:\n{printed}");
    }
}
