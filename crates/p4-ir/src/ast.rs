//! Abstract syntax tree / intermediate representation for the P4-16 subset.
//!
//! The same IR is used by the parser, the type checker, every compiler pass,
//! the symbolic interpreter, the concrete targets, and the random program
//! generator — mirroring how Gauntlet is built as an extension of P4C's IR
//! (paper §4.2, §5.2).

use crate::types::{MatchKind, Param, Type};
use serde::{Deserialize, Serialize};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical negation `!` on `bool`.
    Not,
    /// Bitwise complement `~` on `bit<N>`.
    BitNot,
    /// Arithmetic negation `-` (two's complement).
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Saturating addition `|+|`.
    SatAdd,
    /// Saturating subtraction `|-|`.
    SatSub,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    /// Bit-vector concatenation `++`.
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and `&&`.
    And,
    /// Short-circuit logical or `||`.
    Or,
}

impl BinOp {
    /// True if the operator produces a `bool` regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for operators defined on `bit<N>` operands.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }

    /// Source-level token for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::SatAdd => "|+|",
            BinOp::SatSub => "|-|",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Concat => "++",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Expressions.  All expressions are side-effect free except [`Expr::Call`],
/// whose evaluation order relative to other argument expressions is governed
/// by the side-effect-ordering pass in the compiler.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal; `width = None` means an "infinite precision"
    /// compile-time integer that must be cast/inferred by the checker.
    Int {
        value: u128,
        width: Option<u32>,
        signed: bool,
    },
    /// A reference to a named variable, parameter, or constant.
    Path(String),
    /// Member access `expr.member` (struct field, header field).
    Member { base: Box<Expr>, member: String },
    /// Bit slice `expr[hi:lo]` (inclusive indices, `hi >= lo`).
    Slice { base: Box<Expr>, hi: u32, lo: u32 },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Conditional `cond ? then : else`.
    Ternary {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
    },
    /// Explicit cast `(ty) expr`.
    Cast { ty: Type, expr: Box<Expr> },
    /// A call used in expression position, e.g. `hdr.h.isValid()`,
    /// `t.apply().hit`, or a call of a function returning a value.
    Call(Box<CallExpr>),
}

/// A call: the callee is a "method path" (e.g. `t.apply`, `hdr.h.setValid`,
/// `my_fun`) plus positional arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CallExpr {
    /// Dotted path of the callee, e.g. `["t", "apply"]` or `["clamp"]`.
    pub target: Vec<String>,
    pub args: Vec<Expr>,
}

impl CallExpr {
    pub fn new(target: Vec<String>, args: Vec<Expr>) -> CallExpr {
        CallExpr { target, args }
    }

    /// The final component of the callee path (the method name).
    pub fn method(&self) -> &str {
        self.target.last().map(String::as_str).unwrap_or("")
    }

    /// The receiver path (everything but the method name), joined by dots.
    pub fn receiver(&self) -> String {
        self.target[..self.target.len().saturating_sub(1)].join(".")
    }
}

impl Expr {
    /// Convenience constructor for an unsigned sized literal.
    pub fn uint(value: u128, width: u32) -> Expr {
        Expr::Int {
            value: crate::types::truncate(value, width),
            width: Some(width),
            signed: false,
        }
    }

    /// Convenience constructor for an "infinite precision" integer literal.
    pub fn int(value: u128) -> Expr {
        Expr::Int {
            value,
            width: None,
            signed: false,
        }
    }

    /// Convenience constructor for a path expression.
    pub fn path(name: impl Into<String>) -> Expr {
        Expr::Path(name.into())
    }

    /// Convenience constructor for member access.
    pub fn member(base: Expr, member: impl Into<String>) -> Expr {
        Expr::Member {
            base: Box::new(base),
            member: member.into(),
        }
    }

    /// `base.a.b.c` from `["base", "a", "b", "c"]`.
    pub fn dotted(parts: &[&str]) -> Expr {
        let mut iter = parts.iter();
        let mut expr = Expr::path(*iter.next().expect("dotted path needs at least one part"));
        for part in iter {
            expr = Expr::member(expr, *part);
        }
        expr
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr::Unary {
            op,
            operand: Box::new(operand),
        }
    }

    pub fn ternary(cond: Expr, then_expr: Expr, else_expr: Expr) -> Expr {
        Expr::Ternary {
            cond: Box::new(cond),
            then_expr: Box::new(then_expr),
            else_expr: Box::new(else_expr),
        }
    }

    pub fn cast(ty: Type, expr: Expr) -> Expr {
        Expr::Cast {
            ty,
            expr: Box::new(expr),
        }
    }

    pub fn slice(base: Expr, hi: u32, lo: u32) -> Expr {
        Expr::Slice {
            base: Box::new(base),
            hi,
            lo,
        }
    }

    pub fn call(target: Vec<&str>, args: Vec<Expr>) -> Expr {
        Expr::Call(Box::new(CallExpr::new(
            target.into_iter().map(str::to_owned).collect(),
            args,
        )))
    }

    /// True if this expression is a syntactic l-value (path, member access,
    /// or slice of an l-value).  Only l-values may be assigned or bound to
    /// `out`/`inout` parameters.
    pub fn is_lvalue(&self) -> bool {
        match self {
            Expr::Path(_) => true,
            Expr::Member { base, .. } => base.is_lvalue(),
            Expr::Slice { base, .. } => base.is_lvalue(),
            _ => false,
        }
    }

    /// Returns the root path name of an l-value (e.g. `hdr` for
    /// `hdr.eth.src[7:0]`), or `None` if this is not an l-value.
    pub fn lvalue_root(&self) -> Option<&str> {
        match self {
            Expr::Path(name) => Some(name),
            Expr::Member { base, .. } | Expr::Slice { base, .. } => base.lvalue_root(),
            _ => None,
        }
    }

    /// True if the expression contains a call anywhere (used by the
    /// side-effect-ordering pass).
    pub fn has_call(&self) -> bool {
        match self {
            Expr::Call(_) => true,
            Expr::Bool(_) | Expr::Int { .. } | Expr::Path(_) => false,
            Expr::Member { base, .. } | Expr::Slice { base, .. } => base.has_call(),
            Expr::Unary { operand, .. } => operand.has_call(),
            Expr::Cast { expr, .. } => expr.has_call(),
            Expr::Binary { left, right, .. } => left.has_call() || right.has_call(),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => cond.has_call() || then_expr.has_call() || else_expr.has_call(),
        }
    }

    /// Collects all free path roots referenced by the expression into `out`.
    pub fn collect_paths<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Path(name) => out.push(name),
            Expr::Bool(_) | Expr::Int { .. } => {}
            Expr::Member { base, .. } | Expr::Slice { base, .. } => base.collect_paths(out),
            Expr::Unary { operand, .. } => operand.collect_paths(out),
            Expr::Cast { expr, .. } => expr.collect_paths(out),
            Expr::Binary { left, right, .. } => {
                left.collect_paths(out);
                right.collect_paths(out);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.collect_paths(out);
                then_expr.collect_paths(out);
                else_expr.collect_paths(out);
            }
            Expr::Call(call) => {
                if let Some(root) = call.target.first() {
                    out.push(root);
                }
                for arg in &call.args {
                    arg.collect_paths(out);
                }
            }
        }
    }

    /// Approximate AST size (number of nodes); used by the generator to
    /// bound program size and by tests.
    pub fn size(&self) -> usize {
        match self {
            Expr::Bool(_) | Expr::Int { .. } | Expr::Path(_) => 1,
            Expr::Member { base, .. } | Expr::Slice { base, .. } => 1 + base.size(),
            Expr::Unary { operand, .. } => 1 + operand.size(),
            Expr::Cast { expr, .. } => 1 + expr.size(),
            Expr::Binary { left, right, .. } => 1 + left.size() + right.size(),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => 1 + cond.size() + then_expr.size() + else_expr.size(),
            Expr::Call(call) => 1 + call.args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Statement {
    /// `lhs = rhs;`
    Assign { lhs: Expr, rhs: Expr },
    /// An expression-statement call: `t.apply();`, `hdr.h.setValid();`,
    /// `my_action(x);`.
    Call(CallExpr),
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_branch: Box<Statement>,
        else_branch: Option<Box<Statement>>,
    },
    /// `{ ... }`
    Block(Block),
    /// Local variable declaration with optional initializer.
    Declare {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// Local compile-time constant declaration.
    Constant { name: String, ty: Type, value: Expr },
    /// `exit;` — terminates processing of the whole programmable block, but
    /// still performs copy-out of `inout`/`out` parameters (spec change the
    /// paper triggered; see Figure 5f).
    Exit,
    /// `return;` / `return expr;`
    Return(Option<Expr>),
    /// The empty statement `;`.
    Empty,
}

impl Statement {
    pub fn assign(lhs: Expr, rhs: Expr) -> Statement {
        Statement::Assign { lhs, rhs }
    }

    pub fn if_then(cond: Expr, then_branch: Statement) -> Statement {
        Statement::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: None,
        }
    }

    pub fn if_else(cond: Expr, then_branch: Statement, else_branch: Statement) -> Statement {
        Statement::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Some(Box::new(else_branch)),
        }
    }

    pub fn call(target: Vec<&str>, args: Vec<Expr>) -> Statement {
        Statement::Call(CallExpr::new(
            target.into_iter().map(str::to_owned).collect(),
            args,
        ))
    }

    /// Number of AST nodes in this statement.
    pub fn size(&self) -> usize {
        match self {
            Statement::Assign { lhs, rhs } => 1 + lhs.size() + rhs.size(),
            Statement::Call(call) => 1 + call.args.iter().map(Expr::size).sum::<usize>(),
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                1 + cond.size()
                    + then_branch.size()
                    + else_branch.as_ref().map(|s| s.size()).unwrap_or(0)
            }
            Statement::Block(block) => 1 + block.size(),
            Statement::Declare { init, .. } => 1 + init.as_ref().map(Expr::size).unwrap_or(0),
            Statement::Constant { value, .. } => 1 + value.size(),
            Statement::Exit | Statement::Empty => 1,
            Statement::Return(expr) => 1 + expr.as_ref().map(Expr::size).unwrap_or(0),
        }
    }
}

/// A brace-delimited sequence of statements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    pub statements: Vec<Statement>,
}

impl Block {
    pub fn new(statements: Vec<Statement>) -> Block {
        Block { statements }
    }

    pub fn empty() -> Block {
        Block {
            statements: Vec::new(),
        }
    }

    pub fn size(&self) -> usize {
        self.statements.iter().map(Statement::size).sum()
    }
}

/// A named, typed field of a header or struct.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub ty: Type,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: Type) -> Field {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// `header name { fields }` — a packet header with a validity bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeaderDecl {
    pub name: String,
    pub fields: Vec<Field>,
}

impl HeaderDecl {
    /// Total bit width of all fields (the wire size of the header).
    pub fn bit_width(&self) -> u32 {
        self.fields.iter().filter_map(|f| f.ty.width()).sum()
    }
}

/// `struct name { fields }` — an aggregate without a validity bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructDecl {
    pub name: String,
    pub fields: Vec<Field>,
}

/// `typedef bit<N> name;`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TypedefDecl {
    pub name: String,
    pub ty: Type,
}

/// `action name(params) { body }`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActionDecl {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Block,
}

/// A free function: `ret name(params) { body }`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionDecl {
    pub name: String,
    pub return_type: Type,
    pub params: Vec<Param>,
    pub body: Block,
}

/// One `expr : match_kind` entry of a table `key` property.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyElement {
    pub expr: Expr,
    pub match_kind: MatchKind,
}

/// Reference to an action from a table's `actions` / `default_action`
/// property, with optional compile-time bound arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActionRef {
    pub name: String,
    pub args: Vec<Expr>,
}

impl ActionRef {
    pub fn new(name: impl Into<String>) -> ActionRef {
        ActionRef {
            name: name.into(),
            args: Vec::new(),
        }
    }
}

/// `table name { key = {..}; actions = {..}; default_action = ..; }`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableDecl {
    pub name: String,
    pub keys: Vec<KeyElement>,
    pub actions: Vec<ActionRef>,
    pub default_action: ActionRef,
}

/// `control name(params) { locals apply { .. } }`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlDecl {
    pub name: String,
    pub params: Vec<Param>,
    pub locals: Vec<Declaration>,
    pub apply: Block,
}

/// One state of a parser state machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParserState {
    pub name: String,
    pub statements: Vec<Statement>,
    pub transition: Transition,
}

/// Parser state transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// `transition accept;` / `transition reject;` / `transition state_x;`
    Direct(String),
    /// `transition select(expr) { value: state; ...; default: state; }`
    Select {
        selector: Expr,
        cases: Vec<SelectCase>,
    },
}

/// One arm of a `select` transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectCase {
    /// `None` represents the `default` / `_` case.
    pub value: Option<Expr>,
    pub next_state: String,
}

/// `parser name(params) { locals states }`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParserDecl {
    pub name: String,
    pub params: Vec<Param>,
    pub locals: Vec<Declaration>,
    pub states: Vec<ParserState>,
}

impl ParserDecl {
    pub fn state(&self, name: &str) -> Option<&ParserState> {
        self.states.iter().find(|s| s.name == name)
    }
}

/// Top-level constant declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstantDecl {
    pub name: String,
    pub ty: Type,
    pub value: Expr,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Declaration {
    Header(HeaderDecl),
    Struct(StructDecl),
    Typedef(TypedefDecl),
    Constant(ConstantDecl),
    Action(ActionDecl),
    Function(FunctionDecl),
    Table(TableDecl),
    Control(ControlDecl),
    Parser(ParserDecl),
    /// A local variable declaration inside a control's declaration list.
    Variable {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
}

impl Declaration {
    /// The declared name, regardless of declaration kind.
    pub fn name(&self) -> &str {
        match self {
            Declaration::Header(d) => &d.name,
            Declaration::Struct(d) => &d.name,
            Declaration::Typedef(d) => &d.name,
            Declaration::Constant(d) => &d.name,
            Declaration::Action(d) => &d.name,
            Declaration::Function(d) => &d.name,
            Declaration::Table(d) => &d.name,
            Declaration::Control(d) => &d.name,
            Declaration::Parser(d) => &d.name,
            Declaration::Variable { name, .. } => name,
        }
    }
}

/// The `main` package instantiation: maps each programmable block slot of
/// the architecture (e.g. `"ingress"`) to the name of the control/parser
/// declaration instantiated in that slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackageInstance {
    /// The package type name, e.g. `V1Switch`.
    pub package: String,
    /// Slot name → declaration name, in architecture slot order.
    pub bindings: Vec<(String, String)>,
}

impl PackageInstance {
    pub fn binding(&self, slot: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|(s, _)| s == slot)
            .map(|(_, decl)| decl.as_str())
    }
}

/// A complete P4 program: declarations plus the package instantiation and
/// the name of the architecture it targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Program {
    /// Architecture name, e.g. `"v1model"` or `"tna"`.
    pub architecture: String,
    pub declarations: Vec<Declaration>,
    pub package: PackageInstance,
}

impl Program {
    pub fn new(architecture: impl Into<String>) -> Program {
        Program {
            architecture: architecture.into(),
            declarations: Vec::new(),
            package: PackageInstance::default(),
        }
    }

    pub fn find(&self, name: &str) -> Option<&Declaration> {
        self.declarations.iter().find(|d| d.name() == name)
    }

    pub fn header(&self, name: &str) -> Option<&HeaderDecl> {
        self.declarations.iter().find_map(|d| match d {
            Declaration::Header(h) if h.name == name => Some(h),
            _ => None,
        })
    }

    pub fn struct_decl(&self, name: &str) -> Option<&StructDecl> {
        self.declarations.iter().find_map(|d| match d {
            Declaration::Struct(s) if s.name == name => Some(s),
            _ => None,
        })
    }

    pub fn control(&self, name: &str) -> Option<&ControlDecl> {
        self.declarations.iter().find_map(|d| match d {
            Declaration::Control(c) if c.name == name => Some(c),
            _ => None,
        })
    }

    pub fn control_mut(&mut self, name: &str) -> Option<&mut ControlDecl> {
        self.declarations.iter_mut().find_map(|d| match d {
            Declaration::Control(c) if c.name == name => Some(c),
            _ => None,
        })
    }

    pub fn parser(&self, name: &str) -> Option<&ParserDecl> {
        self.declarations.iter().find_map(|d| match d {
            Declaration::Parser(p) if p.name == name => Some(p),
            _ => None,
        })
    }

    pub fn controls(&self) -> impl Iterator<Item = &ControlDecl> {
        self.declarations.iter().filter_map(|d| match d {
            Declaration::Control(c) => Some(c),
            _ => None,
        })
    }

    pub fn controls_mut(&mut self) -> impl Iterator<Item = &mut ControlDecl> {
        self.declarations.iter_mut().filter_map(|d| match d {
            Declaration::Control(c) => Some(c),
            _ => None,
        })
    }

    pub fn parsers(&self) -> impl Iterator<Item = &ParserDecl> {
        self.declarations.iter().filter_map(|d| match d {
            Declaration::Parser(p) => Some(p),
            _ => None,
        })
    }

    /// Total AST size (rough node count) across all controls, parsers,
    /// actions and functions.
    pub fn size(&self) -> usize {
        self.declarations
            .iter()
            .map(|d| match d {
                Declaration::Action(a) => a.body.size() + 1,
                Declaration::Function(f) => f.body.size() + 1,
                Declaration::Control(c) => {
                    c.apply.size()
                        + c.locals
                            .iter()
                            .map(|l| match l {
                                Declaration::Action(a) => a.body.size() + 1,
                                Declaration::Table(t) => t.keys.len() + t.actions.len() + 1,
                                _ => 1,
                            })
                            .sum::<usize>()
                        + 1
                }
                Declaration::Parser(p) => {
                    p.states
                        .iter()
                        .map(|s| s.statements.iter().map(Statement::size).sum::<usize>() + 1)
                        .sum::<usize>()
                        + 1
                }
                _ => 1,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Direction;

    fn sample_header() -> HeaderDecl {
        HeaderDecl {
            name: "h_t".into(),
            fields: vec![
                Field::new("a", Type::bits(8)),
                Field::new("b", Type::bits(16)),
            ],
        }
    }

    #[test]
    fn header_width_sums_fields() {
        assert_eq!(sample_header().bit_width(), 24);
    }

    #[test]
    fn lvalue_detection() {
        assert!(Expr::path("x").is_lvalue());
        assert!(Expr::member(Expr::path("hdr"), "a").is_lvalue());
        assert!(Expr::slice(Expr::member(Expr::path("hdr"), "a"), 7, 1).is_lvalue());
        assert!(!Expr::uint(3, 8).is_lvalue());
        assert!(!Expr::binary(BinOp::Add, Expr::path("x"), Expr::uint(1, 8)).is_lvalue());
    }

    #[test]
    fn lvalue_root() {
        let e = Expr::slice(Expr::member(Expr::dotted(&["hdr", "eth"]), "src"), 7, 0);
        assert_eq!(e.lvalue_root(), Some("hdr"));
        assert_eq!(Expr::uint(1, 8).lvalue_root(), None);
    }

    #[test]
    fn collect_paths_finds_all_roots() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::dotted(&["hdr", "a"]),
            Expr::ternary(Expr::path("flag"), Expr::path("x"), Expr::uint(0, 8)),
        );
        let mut paths = Vec::new();
        e.collect_paths(&mut paths);
        assert_eq!(paths, vec!["hdr", "flag", "x"]);
    }

    #[test]
    fn has_call_detects_nested_calls() {
        let no_call = Expr::binary(BinOp::Add, Expr::path("a"), Expr::uint(1, 8));
        assert!(!no_call.has_call());
        let with_call = Expr::binary(
            BinOp::Add,
            Expr::path("a"),
            Expr::call(vec!["f"], vec![Expr::path("b")]),
        );
        assert!(with_call.has_call());
    }

    #[test]
    fn call_expr_receiver_and_method() {
        let call = CallExpr::new(vec!["t".into(), "apply".into()], vec![]);
        assert_eq!(call.method(), "apply");
        assert_eq!(call.receiver(), "t");
        let plain = CallExpr::new(vec!["f".into()], vec![]);
        assert_eq!(plain.method(), "f");
        assert_eq!(plain.receiver(), "");
    }

    #[test]
    fn program_lookup() {
        let mut prog = Program::new("v1model");
        prog.declarations.push(Declaration::Header(sample_header()));
        prog.declarations.push(Declaration::Control(ControlDecl {
            name: "ig".into(),
            params: vec![Param::new(
                Direction::InOut,
                "hdr",
                Type::Struct("headers_t".into()),
            )],
            locals: vec![],
            apply: Block::empty(),
        }));
        assert!(prog.header("h_t").is_some());
        assert!(prog.control("ig").is_some());
        assert!(prog.control("eg").is_none());
        assert_eq!(prog.find("ig").map(|d| d.name()), Some("ig"));
    }

    #[test]
    fn package_binding_lookup() {
        let pkg = PackageInstance {
            package: "V1Switch".into(),
            bindings: vec![
                ("parser".into(), "p".into()),
                ("ingress".into(), "ig".into()),
            ],
        };
        assert_eq!(pkg.binding("ingress"), Some("ig"));
        assert_eq!(pkg.binding("egress"), None);
    }

    #[test]
    fn statement_sizes() {
        let s = Statement::if_else(
            Expr::path("c"),
            Statement::assign(Expr::path("x"), Expr::uint(1, 8)),
            Statement::Block(Block::new(vec![Statement::Exit])),
        );
        assert!(s.size() >= 5);
    }
}
