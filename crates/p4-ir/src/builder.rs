//! Convenience builders for constructing complete, valid programs.
//!
//! Tests, examples, and the paper's Figure-5 reproduction programs all need
//! a complete program skeleton (headers, parser, deparser, package) into
//! which a hand-written or generated ingress control is dropped.  This
//! module provides that skeleton for both supported architectures.

use crate::arch::{Architecture, HEADERS_STRUCT, META_STRUCT};
use crate::ast::*;
use crate::types::{Param, Type};

/// The canonical Ethernet-like header used by skeleton programs.
pub fn ethernet_header() -> HeaderDecl {
    HeaderDecl {
        name: "ethernet_t".into(),
        fields: vec![
            Field::new("dst_addr", Type::bits(48)),
            Field::new("src_addr", Type::bits(48)),
            Field::new("eth_type", Type::bits(16)),
        ],
    }
}

/// The canonical small custom header (`h`) the paper's figures use:
/// `bit<8> a; bit<8> b; bit<8> c;`.
pub fn custom_header() -> HeaderDecl {
    HeaderDecl {
        name: "h_t".into(),
        fields: vec![
            Field::new("a", Type::bits(8)),
            Field::new("b", Type::bits(8)),
            Field::new("c", Type::bits(8)),
        ],
    }
}

/// The `headers_t` struct bundling the skeleton headers.
pub fn headers_struct() -> StructDecl {
    StructDecl {
        name: HEADERS_STRUCT.into(),
        fields: vec![
            Field::new("eth", Type::Named("ethernet_t".into())),
            Field::new("h", Type::Named("h_t".into())),
        ],
    }
}

/// The user metadata struct.
pub fn metadata_struct() -> StructDecl {
    StructDecl {
        name: META_STRUCT.into(),
        fields: vec![
            Field::new("tmp", Type::bits(16)),
            Field::new("flag", Type::bits(8)),
        ],
    }
}

/// A parser that extracts the Ethernet header and then the custom header
/// whenever `eth_type == 0x0800`, otherwise accepts immediately.
fn skeleton_parser(name: &str, params: Vec<Param>) -> ParserDecl {
    ParserDecl {
        name: name.into(),
        params,
        locals: vec![],
        states: vec![
            ParserState {
                name: "start".into(),
                statements: vec![Statement::call(
                    vec!["packet", "extract"],
                    vec![Expr::dotted(&["hdr", "eth"])],
                )],
                transition: Transition::Select {
                    selector: Expr::dotted(&["hdr", "eth", "eth_type"]),
                    cases: vec![
                        SelectCase {
                            value: Some(Expr::uint(0x0800, 16)),
                            next_state: "parse_h".into(),
                        },
                        SelectCase {
                            value: None,
                            next_state: "accept".into(),
                        },
                    ],
                },
            },
            ParserState {
                name: "parse_h".into(),
                statements: vec![Statement::call(
                    vec!["packet", "extract"],
                    vec![Expr::dotted(&["hdr", "h"])],
                )],
                transition: Transition::Direct("accept".into()),
            },
        ],
    }
}

/// A deparser that emits both skeleton headers.
fn skeleton_deparser(name: &str, params: Vec<Param>) -> ControlDecl {
    ControlDecl {
        name: name.into(),
        params,
        locals: vec![],
        apply: Block::new(vec![
            Statement::call(vec!["packet", "emit"], vec![Expr::dotted(&["hdr", "eth"])]),
            Statement::call(vec!["packet", "emit"], vec![Expr::dotted(&["hdr", "h"])]),
        ]),
    }
}

/// An empty control with the right signature for a slot.
fn empty_control(name: &str, params: Vec<Param>) -> ControlDecl {
    ControlDecl {
        name: name.into(),
        params,
        locals: vec![],
        apply: Block::empty(),
    }
}

/// Options controlling skeleton construction.
#[derive(Debug, Clone)]
pub struct SkeletonOptions {
    /// Architecture name (`"v1model"` or `"tna"`).
    pub architecture: String,
}

impl Default for SkeletonOptions {
    fn default() -> Self {
        SkeletonOptions {
            architecture: "v1model".into(),
        }
    }
}

/// Builds a complete program for the given architecture in which the main
/// match-action control (`ingress`) has the supplied locals and apply body.
/// All other programmable blocks are filled with standard skeleton code.
pub fn program_with_ingress(
    options: &SkeletonOptions,
    ingress_locals: Vec<Declaration>,
    ingress_apply: Block,
) -> Program {
    let arch = Architecture::by_name(&options.architecture)
        .unwrap_or_else(|| panic!("unknown architecture {}", options.architecture));
    let mut program = Program::new(arch.name.clone());
    program
        .declarations
        .push(Declaration::Header(ethernet_header()));
    program
        .declarations
        .push(Declaration::Header(custom_header()));
    program
        .declarations
        .push(Declaration::Struct(headers_struct()));
    program
        .declarations
        .push(Declaration::Struct(metadata_struct()));

    let mut bindings = Vec::new();
    for block in &arch.blocks {
        let decl_name = format!("{}_impl", block.slot);
        match block.kind {
            crate::arch::BlockKind::Parser => {
                program
                    .declarations
                    .push(Declaration::Parser(skeleton_parser(
                        &decl_name,
                        block.params.clone(),
                    )));
            }
            crate::arch::BlockKind::Deparser => {
                program
                    .declarations
                    .push(Declaration::Control(skeleton_deparser(
                        &decl_name,
                        block.params.clone(),
                    )));
            }
            crate::arch::BlockKind::Control => {
                // The first (primary) control slot receives the user body;
                // any additional control slots are left empty.
                let is_primary = block.slot == "ingress";
                let control = if is_primary {
                    ControlDecl {
                        name: decl_name.clone(),
                        params: block.params.clone(),
                        locals: ingress_locals.clone(),
                        apply: ingress_apply.clone(),
                    }
                } else {
                    empty_control(&decl_name, block.params.clone())
                };
                program.declarations.push(Declaration::Control(control));
            }
        }
        bindings.push((block.slot.clone(), decl_name));
    }
    program.package = PackageInstance {
        package: arch.package_name.clone(),
        bindings,
    };
    program
}

/// Shorthand for a v1model program with a custom ingress.
pub fn v1model_program(ingress_locals: Vec<Declaration>, ingress_apply: Block) -> Program {
    program_with_ingress(&SkeletonOptions::default(), ingress_locals, ingress_apply)
}

/// Shorthand for a tna program with a custom ingress.
pub fn tna_program(ingress_locals: Vec<Declaration>, ingress_apply: Block) -> Program {
    program_with_ingress(
        &SkeletonOptions {
            architecture: "tna".into(),
        },
        ingress_locals,
        ingress_apply,
    )
}

/// A trivial, always-valid program used as a smoke-test fixture: ingress
/// assigns a constant to a header field.
pub fn trivial_program() -> Program {
    v1model_program(
        vec![],
        Block::new(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::uint(1, 8),
        )]),
    )
}

/// Builds a `NoAction`-style empty action declaration.
pub fn no_action() -> ActionDecl {
    ActionDecl {
        name: "NoAction".into(),
        params: vec![],
        body: Block::empty(),
    }
}

/// Builds a single-key, two-action table over `hdr.h.a` mirroring the
/// paper's Figure 3 example.
pub fn figure3_table_control() -> (Vec<Declaration>, Block) {
    let assign = ActionDecl {
        name: "assign".into(),
        params: vec![],
        body: Block::new(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::uint(1, 8),
        )]),
    };
    let table = TableDecl {
        name: "t".into(),
        keys: vec![KeyElement {
            expr: Expr::dotted(&["hdr", "h", "a"]),
            match_kind: crate::types::MatchKind::Exact,
        }],
        actions: vec![ActionRef::new("assign"), ActionRef::new("NoAction")],
        default_action: ActionRef::new("NoAction"),
    };
    let locals = vec![
        Declaration::Action(no_action()),
        Declaration::Action(assign),
        Declaration::Table(table),
    ];
    let apply = Block::new(vec![Statement::call(vec!["t", "apply"], vec![])]);
    (locals, apply)
}

/// Builds the skeleton ingress parameter list (useful for constructing
/// controls by hand in tests).
pub fn ingress_params() -> Vec<Param> {
    Architecture::v1model()
        .block("ingress")
        .expect("v1model has an ingress block")
        .params
        .clone()
}

/// Returns an l-value expression for the given dotted path, e.g.
/// `lval(&["hdr", "h", "a"])`.
pub fn lval(parts: &[&str]) -> Expr {
    Expr::dotted(parts)
}

/// Declares a fresh local variable statement `bit<width> name = init;`.
pub fn declare_var(name: &str, width: u32, init: Option<Expr>) -> Statement {
    Statement::Declare {
        name: name.into(),
        ty: Type::bits(width),
        init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TypeEnv;
    use crate::printer::print_program;

    #[test]
    fn skeleton_has_all_v1model_blocks_bound() {
        let program = trivial_program();
        assert_eq!(program.package.bindings.len(), 4);
        assert!(program.control("ingress_impl").is_some());
        assert!(program.parser("parser_impl").is_some());
        assert!(program.control("deparser_impl").is_some());
        assert_eq!(program.package.binding("ingress"), Some("ingress_impl"));
    }

    #[test]
    fn skeleton_prints_and_contains_package() {
        let text = print_program(&trivial_program());
        assert!(text.contains("V1Switch("));
        assert!(text.contains("control ingress_impl("));
        assert!(text.contains("hdr.h.a = 8w1;"));
    }

    #[test]
    fn tna_skeleton_uses_tna_package() {
        let program = tna_program(vec![], Block::empty());
        assert_eq!(program.architecture, "tna");
        assert_eq!(program.package.package, "Pipeline");
        assert_eq!(program.package.bindings.len(), 3);
    }

    #[test]
    fn figure3_control_typechecks_structurally() {
        let (locals, apply) = figure3_table_control();
        let program = v1model_program(locals, apply);
        let env = TypeEnv::from_program(&program);
        assert!(env.is_header("h_t"));
        let ingress = program.control("ingress_impl").unwrap();
        assert_eq!(ingress.locals.len(), 3);
        assert_eq!(ingress.apply.statements.len(), 1);
    }

    #[test]
    fn header_widths() {
        assert_eq!(ethernet_header().bit_width(), 112);
        assert_eq!(custom_header().bit_width(), 24);
    }
}
