//! Type environment: resolves named aggregate types to their field lists and
//! computes the static type of expressions given a variable scope.
//!
//! Both the type checker and the symbolic interpreter need to know, for any
//! l-value such as `hdr.eth.src[7:0]`, what its declared type is.  The
//! [`TypeEnv`] answers those queries from the program's declarations plus
//! the architecture's intrinsic structs.

use crate::arch::Architecture;
use crate::ast::{Declaration, Expr, Field, Program};
use crate::types::Type;
use std::collections::HashMap;

/// Whether a named aggregate is a header (has a validity bit) or a struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    Header,
    Struct,
}

/// A resolved aggregate type: its kind and fields.
#[derive(Debug, Clone)]
pub struct Aggregate {
    pub kind: AggregateKind,
    pub fields: Vec<Field>,
}

impl Aggregate {
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Immutable view of the program's type declarations.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    aggregates: HashMap<String, Aggregate>,
    typedefs: HashMap<String, Type>,
}

impl TypeEnv {
    /// Builds an environment from a program and (optionally) the intrinsic
    /// structs of its architecture.
    pub fn from_program(program: &Program) -> TypeEnv {
        let mut env = TypeEnv::default();
        if let Some(arch) = Architecture::by_name(&program.architecture) {
            for st in &arch.intrinsic_structs {
                env.aggregates.insert(
                    st.name.clone(),
                    Aggregate {
                        kind: AggregateKind::Struct,
                        fields: st.fields.clone(),
                    },
                );
            }
        }
        for decl in &program.declarations {
            match decl {
                Declaration::Header(h) => {
                    env.aggregates.insert(
                        h.name.clone(),
                        Aggregate {
                            kind: AggregateKind::Header,
                            fields: h.fields.clone(),
                        },
                    );
                }
                Declaration::Struct(s) => {
                    env.aggregates.insert(
                        s.name.clone(),
                        Aggregate {
                            kind: AggregateKind::Struct,
                            fields: s.fields.clone(),
                        },
                    );
                }
                Declaration::Typedef(t) => {
                    env.typedefs.insert(t.name.clone(), t.ty.clone());
                }
                _ => {}
            }
        }
        env
    }

    /// Resolves `Named` and typedef'd types to their underlying type.
    pub fn resolve(&self, ty: &Type) -> Type {
        match ty {
            Type::Named(name) => {
                if let Some(inner) = self.typedefs.get(name) {
                    self.resolve(inner)
                } else if let Some(agg) = self.aggregates.get(name) {
                    match agg.kind {
                        AggregateKind::Header => Type::Header(name.clone()),
                        AggregateKind::Struct => Type::Struct(name.clone()),
                    }
                } else {
                    ty.clone()
                }
            }
            other => other.clone(),
        }
    }

    /// Looks up an aggregate declaration by name.
    pub fn aggregate(&self, name: &str) -> Option<&Aggregate> {
        self.aggregates.get(name)
    }

    /// Whether `name` names a header type.
    pub fn is_header(&self, name: &str) -> bool {
        matches!(self.aggregates.get(name), Some(a) if a.kind == AggregateKind::Header)
    }

    /// The type of field `field` of aggregate type `ty`, if any.
    pub fn field_type(&self, ty: &Type, field: &str) -> Option<Type> {
        let resolved = self.resolve(ty);
        let name = match &resolved {
            Type::Header(n) | Type::Struct(n) => n,
            _ => return None,
        };
        self.aggregates
            .get(name)
            .and_then(|agg| agg.field(field))
            .map(|f| self.resolve(&f.ty))
    }

    /// Iterates all declared aggregate names.
    pub fn aggregate_names(&self) -> impl Iterator<Item = &str> {
        self.aggregates.keys().map(String::as_str)
    }
}

/// A lexical scope mapping variable names to their declared types.  Scopes
/// are chained; lookups walk outwards.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    frames: Vec<HashMap<String, Type>>,
}

impl Scope {
    pub fn new() -> Scope {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    pub fn pop(&mut self) {
        self.frames.pop();
        if self.frames.is_empty() {
            self.frames.push(HashMap::new());
        }
    }

    pub fn declare(&mut self, name: impl Into<String>, ty: Type) {
        self.frames
            .last_mut()
            .expect("scope always has a frame")
            .insert(name.into(), ty);
    }

    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    /// All visible bindings, innermost shadowing outermost.
    pub fn visible(&self) -> HashMap<String, Type> {
        let mut out = HashMap::new();
        for frame in &self.frames {
            for (k, v) in frame {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }
}

/// Computes the static type of an expression under `env` and `scope`.
/// Returns `None` for ill-typed or unresolvable expressions; full diagnosis
/// is the type checker's job, this is a best-effort query used by passes and
/// the generator.
pub fn type_of(env: &TypeEnv, scope: &Scope, expr: &Expr) -> Option<Type> {
    use crate::ast::{BinOp, UnOp};
    match expr {
        Expr::Bool(_) => Some(Type::Bool),
        Expr::Int {
            width: Some(w),
            signed,
            ..
        } => Some(Type::Bits {
            width: *w,
            signed: *signed,
        }),
        Expr::Int { width: None, .. } => None,
        Expr::Path(name) => scope.lookup(name).map(|t| env.resolve(t)),
        Expr::Member { base, member } => {
            let base_ty = type_of(env, scope, base)?;
            env.field_type(&base_ty, member)
        }
        Expr::Slice { hi, lo, .. } => {
            if hi >= lo {
                Some(Type::bits(hi - lo + 1))
            } else {
                None
            }
        }
        Expr::Unary { op, operand } => {
            let t = type_of(env, scope, operand)?;
            match op {
                UnOp::Not => Some(Type::Bool),
                UnOp::BitNot | UnOp::Neg => Some(t),
            }
        }
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || op.is_logical() {
                Some(Type::Bool)
            } else if *op == BinOp::Concat {
                let lw = type_of(env, scope, left)?.width()?;
                let rw = type_of(env, scope, right)?.width()?;
                Some(Type::bits(lw + rw))
            } else {
                // Width of the left operand (shifts) or common width.
                type_of(env, scope, left).or_else(|| type_of(env, scope, right))
            }
        }
        Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } => type_of(env, scope, then_expr).or_else(|| type_of(env, scope, else_expr)),
        Expr::Cast { ty, .. } => Some(env.resolve(ty)),
        Expr::Call(call) => match call.method() {
            "isValid" => Some(Type::Bool),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Declaration, Field, HeaderDecl, Program, StructDecl};

    fn program() -> Program {
        let mut p = Program::new("v1model");
        p.declarations.push(Declaration::Header(HeaderDecl {
            name: "eth_t".into(),
            fields: vec![
                Field::new("dst", Type::bits(48)),
                Field::new("src", Type::bits(48)),
                Field::new("etype", Type::bits(16)),
            ],
        }));
        p.declarations.push(Declaration::Struct(StructDecl {
            name: "headers_t".into(),
            fields: vec![Field::new("eth", Type::Named("eth_t".into()))],
        }));
        p
    }

    #[test]
    fn env_resolves_fields_through_named_types() {
        let env = TypeEnv::from_program(&program());
        let hdr_ty = Type::Struct("headers_t".into());
        let eth = env.field_type(&hdr_ty, "eth").unwrap();
        assert_eq!(eth, Type::Header("eth_t".into()));
        assert_eq!(env.field_type(&eth, "etype"), Some(Type::bits(16)));
        assert!(env.is_header("eth_t"));
        assert!(!env.is_header("headers_t"));
    }

    #[test]
    fn env_includes_architecture_intrinsics() {
        let env = TypeEnv::from_program(&program());
        let std_meta = Type::Struct("standard_metadata_t".into());
        assert_eq!(
            env.field_type(&std_meta, "egress_spec"),
            Some(Type::bits(9))
        );
    }

    #[test]
    fn scope_shadowing() {
        let mut scope = Scope::new();
        scope.declare("x", Type::bits(8));
        scope.push();
        scope.declare("x", Type::bits(16));
        assert_eq!(scope.lookup("x"), Some(&Type::bits(16)));
        scope.pop();
        assert_eq!(scope.lookup("x"), Some(&Type::bits(8)));
        assert_eq!(scope.lookup("y"), None);
    }

    #[test]
    fn type_of_member_chain() {
        let env = TypeEnv::from_program(&program());
        let mut scope = Scope::new();
        scope.declare("hdr", Type::Struct("headers_t".into()));
        let e = Expr::dotted(&["hdr", "eth", "src"]);
        assert_eq!(type_of(&env, &scope, &e), Some(Type::bits(48)));
        let slice = Expr::slice(e, 7, 0);
        assert_eq!(type_of(&env, &scope, &slice), Some(Type::bits(8)));
    }

    #[test]
    fn type_of_operators() {
        let env = TypeEnv::default();
        let mut scope = Scope::new();
        scope.declare("a", Type::bits(8));
        scope.declare("b", Type::bits(8));
        use crate::ast::BinOp;
        let sum = Expr::binary(BinOp::Add, Expr::path("a"), Expr::path("b"));
        assert_eq!(type_of(&env, &scope, &sum), Some(Type::bits(8)));
        let cmp = Expr::binary(BinOp::Lt, Expr::path("a"), Expr::path("b"));
        assert_eq!(type_of(&env, &scope, &cmp), Some(Type::Bool));
        let cat = Expr::binary(BinOp::Concat, Expr::path("a"), Expr::path("b"));
        assert_eq!(type_of(&env, &scope, &cat), Some(Type::bits(16)));
    }
}
