//! Type representation for the P4-16 subset used throughout the workspace.
//!
//! P4-16 is a statically typed language whose value types are finite bit
//! vectors, booleans, and nested header/struct aggregates.  This module
//! models exactly that finite fragment: there are no pointers, references,
//! or unbounded types, which is the property Gauntlet's translation
//! validation relies on (the paper, §1 and §2.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A P4 type.
///
/// Named aggregate types (`Header`/`Struct`) refer to declarations by name;
/// the [`crate::Program`] owns the declarations and
/// [`crate::TypeEnv`] resolves names to field lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `bool`
    Bool,
    /// `bit<N>` (unsigned) or `int<N>` (signed two's complement).
    Bits { width: u32, signed: bool },
    /// A header type: fields plus an implicit validity bit.
    Header(String),
    /// A plain struct aggregate.
    Struct(String),
    /// The return type of procedures that return nothing.
    Void,
    /// The type of `packet_in` / `packet_out` extern instances.
    Packet,
    /// An unresolved named type (e.g. a `typedef`), resolved by the checker.
    Named(String),
}

impl Type {
    /// Shorthand for the ubiquitous `bit<N>` type.
    pub fn bits(width: u32) -> Type {
        Type::Bits {
            width,
            signed: false,
        }
    }

    /// Shorthand for `int<N>`.
    pub fn signed(width: u32) -> Type {
        Type::Bits {
            width,
            signed: true,
        }
    }

    /// Returns the bit width for scalar types, `None` for aggregates/void.
    pub fn width(&self) -> Option<u32> {
        match self {
            Type::Bool => Some(1),
            Type::Bits { width, .. } => Some(*width),
            _ => None,
        }
    }

    /// True for `bit<N>`/`int<N>`.
    pub fn is_bits(&self) -> bool {
        matches!(self, Type::Bits { .. })
    }

    /// True for scalar (non-aggregate) value types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Bool | Type::Bits { .. })
    }

    /// True for header or struct aggregates.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Type::Header(_) | Type::Struct(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Bits {
                width,
                signed: false,
            } => write!(f, "bit<{width}>"),
            Type::Bits {
                width,
                signed: true,
            } => write!(f, "int<{width}>"),
            Type::Header(name) | Type::Struct(name) | Type::Named(name) => write!(f, "{name}"),
            Type::Void => write!(f, "void"),
            Type::Packet => write!(f, "packet"),
        }
    }
}

/// Parameter directions ("modes") of the P4-16 calling convention
/// (spec §6.7, paper §3 "Calling conventions").
///
/// Copy-in/copy-out semantics are central to a large fraction of the
/// semantic bugs the paper reports, so the direction is tracked explicitly
/// on every parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// No direction: compile-time constant arguments (e.g. action data set
    /// by the control plane).
    None,
    /// Read-only; copied in.
    In,
    /// Write-only; uninitialized at procedure entry, copied back at exit.
    Out,
    /// Read-write; copied in and copied back at exit.
    InOut,
}

impl Direction {
    /// Whether the callee observes the caller's value at entry.
    pub fn copies_in(self) -> bool {
        matches!(self, Direction::In | Direction::InOut | Direction::None)
    }

    /// Whether the callee's final value is copied back to the caller.
    pub fn copies_out(self) -> bool {
        matches!(self, Direction::Out | Direction::InOut)
    }

    /// Whether arguments bound to this parameter must be writable l-values.
    pub fn requires_lvalue(self) -> bool {
        self.copies_out()
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::None => Ok(()),
            Direction::In => write!(f, "in"),
            Direction::Out => write!(f, "out"),
            Direction::InOut => write!(f, "inout"),
        }
    }
}

/// A single named, typed, directed parameter of a callable object or a
/// programmable block.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Param {
    pub direction: Direction,
    pub name: String,
    pub ty: Type,
}

impl Param {
    pub fn new(direction: Direction, name: impl Into<String>, ty: Type) -> Param {
        Param {
            direction,
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.direction == Direction::None {
            write!(f, "{} {}", self.ty, self.name)
        } else {
            write!(f, "{} {} {}", self.direction, self.ty, self.name)
        }
    }
}

/// Match kinds supported on table keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchKind {
    Exact,
    Ternary,
    Lpm,
}

impl fmt::Display for MatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchKind::Exact => write!(f, "exact"),
            MatchKind::Ternary => write!(f, "ternary"),
            MatchKind::Lpm => write!(f, "lpm"),
        }
    }
}

/// Computes the maximum value representable by an unsigned bit vector of
/// `width` bits, saturating at 128 bits (the widest literal we support).
pub fn max_unsigned(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// Truncates `value` to `width` bits (two's complement wraparound), which is
/// the semantics of all P4 arithmetic on `bit<N>`.
pub fn truncate(value: u128, width: u32) -> u128 {
    value & max_unsigned(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_types() {
        assert_eq!(Type::bits(8).to_string(), "bit<8>");
        assert_eq!(Type::signed(16).to_string(), "int<16>");
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::Header("h_t".into()).to_string(), "h_t");
    }

    #[test]
    fn widths() {
        assert_eq!(Type::bits(9).width(), Some(9));
        assert_eq!(Type::Bool.width(), Some(1));
        assert_eq!(Type::Struct("s".into()).width(), None);
    }

    #[test]
    fn direction_properties() {
        assert!(Direction::In.copies_in());
        assert!(!Direction::In.copies_out());
        assert!(Direction::Out.copies_out());
        assert!(!Direction::Out.copies_in());
        assert!(Direction::InOut.copies_in() && Direction::InOut.copies_out());
        assert!(Direction::InOut.requires_lvalue());
        assert!(!Direction::None.requires_lvalue());
    }

    #[test]
    fn truncation() {
        assert_eq!(truncate(256, 8), 0);
        assert_eq!(truncate(257, 8), 1);
        assert_eq!(truncate(u128::MAX, 4), 0xf);
        assert_eq!(max_unsigned(1), 1);
        assert_eq!(max_unsigned(128), u128::MAX);
    }

    #[test]
    fn param_display() {
        let p = Param::new(Direction::InOut, "hdr", Type::Struct("headers_t".into()));
        assert_eq!(p.to_string(), "inout headers_t hdr");
        let c = Param::new(Direction::None, "port", Type::bits(9));
        assert_eq!(c.to_string(), "bit<9> port");
    }
}
