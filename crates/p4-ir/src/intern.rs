//! Campaign-scoped string interning for identifier-heavy hot paths.
//!
//! Validation builds millions of terms whose variable names come from a
//! small, heavily repeated namespace (`hdr.eth.dst`, `meta.port`, …).
//! Hashing and comparing those `String`s on every hash-cons lookup is pure
//! waste: an [`Interner`] maps each distinct spelling to a [`Symbol`] — a
//! dense `u32` — exactly once, so everything downstream (the SMT term
//! table, the semantics memo, coverage sinks) keys on integer identity
//! instead of byte comparison.
//!
//! The interner is shared (`Arc<Interner>`), thread-safe, and *campaign*
//! scoped: it survives cache resets at epoch barriers, so a symbol interned
//! in epoch 1 still resolves — and still compares equal — in epoch 40.
//! Symbols are only meaningful relative to the interner that produced them;
//! the workspace never mixes symbols across interners (each term manager
//! carries its own `Arc`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An interned string: a dense index into one [`Interner`].  `Copy`,
/// 4 bytes, and hashable/comparable as a plain integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index (stable for the lifetime of the interner).
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Default)]
struct InternerState {
    /// Spelling → symbol.  Keys are the same `Arc<str>` allocations stored
    /// in `spellings`, so each distinct string is allocated once.
    map: HashMap<Arc<str>, Symbol>,
    /// Symbol index → spelling.
    spellings: Vec<Arc<str>>,
}

/// A thread-safe string interner (see the module docs).
#[derive(Debug, Default)]
pub struct Interner {
    state: Mutex<InternerState>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `text`, returning its symbol and shared spelling.  The
    /// spelling is handed back so callers that need to *display* the name
    /// (model extraction, `Display`) can keep the `Arc` instead of
    /// re-resolving through the lock.
    pub fn intern(&self, text: &str) -> (Symbol, Arc<str>) {
        let mut state = self.state.lock().expect("interner lock poisoned");
        if let Some((spelling, &sym)) = state.map.get_key_value(text) {
            return (sym, spelling.clone());
        }
        let sym =
            Symbol(u32::try_from(state.spellings.len()).expect("interner overflowed u32 symbols"));
        let spelling: Arc<str> = Arc::from(text);
        state.spellings.push(spelling.clone());
        state.map.insert(spelling.clone(), sym);
        (sym, spelling)
    }

    /// The spelling behind `sym`.  Panics on a symbol from another interner
    /// (out of range); symbols are never mixed across interners.
    pub fn resolve(&self, sym: Symbol) -> Arc<str> {
        self.state
            .lock()
            .expect("interner lock poisoned")
            .spellings
            .get(sym.0 as usize)
            .expect("symbol from a different interner")
            .clone()
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("interner lock poisoned")
            .spellings
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let interner = Interner::new();
        let (a1, text1) = interner.intern("hdr.eth.dst");
        let (a2, text2) = interner.intern("hdr.eth.dst");
        let (b, _) = interner.intern("meta.port");
        assert_eq!(a1, a2);
        assert!(Arc::ptr_eq(&text1, &text2), "one allocation per spelling");
        assert_ne!(a1, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(&*interner.resolve(a1), "hdr.eth.dst");
        assert_eq!(&*interner.resolve(b), "meta.port");
    }

    #[test]
    fn symbols_are_stable_under_concurrent_interning() {
        let interner = Arc::new(Interner::new());
        let names: Vec<String> = (0..64).map(|i| format!("var{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let interner = interner.clone();
                let names = names.clone();
                std::thread::spawn(move || {
                    names
                        .iter()
                        .map(|name| interner.intern(name).0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect();
        for window in results.windows(2) {
            assert_eq!(window[0], window[1], "same name, same symbol, any thread");
        }
        assert_eq!(interner.len(), 64);
    }
}
