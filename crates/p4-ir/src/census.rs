//! Construct census: fingerprints a program by which statement and
//! expression kinds appear in which context.
//!
//! The coverage-guided campaign needs to know not only which compiler
//! rewrite rules fired but also which program shapes the generator actually
//! produced — a `slice_assign` inside an action body exercises predication
//! very differently from the same statement in the apply block.  The census
//! counts `kind × context` pairs (context being `apply`, `action`,
//! `function`, `control` locals, or `parser`), giving the weight adapter a
//! cheap, deterministic fingerprint of construct diversity.

use crate::ast::{
    ActionDecl, BinOp, ControlDecl, Expr, FunctionDecl, ParserDecl, Program, Statement, TableDecl,
};
use crate::visit::{walk_block, walk_expr, walk_parser, walk_statement, Visitor};
use std::collections::BTreeMap;

/// Counts of `context/kind` construct pairs (statements) and
/// `context/expr/kind` pairs (expressions).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConstructCensus {
    counts: BTreeMap<String, u64>,
}

impl ConstructCensus {
    /// Takes the census of a whole program.
    pub fn of(program: &Program) -> ConstructCensus {
        let mut visitor = CensusVisitor {
            census: ConstructCensus::default(),
            context: "top",
        };
        visitor.visit_program(program);
        visitor.census
    }

    fn bump(&mut self, context: &str, kind: &str) {
        *self.counts.entry(format!("{context}/{kind}")).or_insert(0) += 1;
    }

    /// Adds every counter of `other` into `self` (commutative).
    pub fn merge(&mut self, other: &ConstructCensus) {
        for (key, count) in &other.counts {
            *self.counts.entry(key.clone()).or_insert(0) += count;
        }
    }

    /// Number of distinct `context/kind` pairs seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count for one `context/kind` key.
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(key, count)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

struct CensusVisitor {
    census: ConstructCensus,
    context: &'static str,
}

fn statement_kind(stmt: &Statement) -> Option<&'static str> {
    Some(match stmt {
        Statement::Assign { lhs, .. } => {
            if matches!(lhs, Expr::Slice { .. }) {
                "slice_assign"
            } else {
                "assign"
            }
        }
        Statement::Call(call) => match call.target.last().map(String::as_str) {
            Some("apply") => "table_apply",
            Some("setValid") | Some("setInvalid") => "validity_call",
            _ => "call",
        },
        Statement::If {
            else_branch: Some(_),
            ..
        } => "if_else",
        Statement::If { .. } => "if",
        Statement::Block(_) => "block",
        Statement::Declare { .. } => "declare",
        Statement::Constant { .. } => "const",
        Statement::Return(_) => "return",
        Statement::Exit => "exit",
        Statement::Empty => return None,
    })
}

fn expression_kind(expr: &Expr) -> Option<&'static str> {
    Some(match expr {
        Expr::Int { .. } => "expr/lit",
        Expr::Bool(_) => "expr/bool",
        Expr::Path(_) | Expr::Member { .. } => "expr/lvalue",
        Expr::Slice { .. } => "expr/slice",
        Expr::Cast { .. } => "expr/cast",
        Expr::Unary { .. } => "expr/unary",
        Expr::Ternary { .. } => "expr/ternary",
        Expr::Call(_) => "expr/call",
        Expr::Binary { op, .. } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => "expr/arith",
            BinOp::SatAdd | BinOp::SatSub => "expr/sat_arith",
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => "expr/bitwise",
            BinOp::Shl | BinOp::Shr => "expr/shift",
            BinOp::Concat => "expr/concat",
            BinOp::And | BinOp::Or => "expr/logic",
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => "expr/compare",
        },
    })
}

impl Visitor for CensusVisitor {
    fn visit_control(&mut self, control: &ControlDecl) {
        for local in &control.locals {
            self.context = "control";
            self.visit_declaration(local);
        }
        self.context = "apply";
        self.visit_block(&control.apply);
        self.context = "top";
    }

    fn visit_action(&mut self, action: &ActionDecl) {
        let previous = self.context;
        self.context = "action";
        walk_block(self, &action.body);
        self.context = previous;
    }

    fn visit_function(&mut self, function: &FunctionDecl) {
        let previous = self.context;
        self.context = "function";
        walk_block(self, &function.body);
        self.context = previous;
    }

    fn visit_parser(&mut self, parser: &ParserDecl) {
        let previous = self.context;
        self.context = "parser";
        walk_parser(self, parser);
        self.context = previous;
    }

    fn visit_table(&mut self, table: &TableDecl) {
        self.census.bump(self.context, "table");
        for key in &table.keys {
            self.visit_expr(&key.expr);
        }
    }

    fn visit_statement(&mut self, stmt: &Statement) {
        if let Some(kind) = statement_kind(stmt) {
            self.census.bump(self.context, kind);
        }
        walk_statement(self, stmt);
    }

    fn visit_expr(&mut self, expr: &Expr) {
        if let Some(kind) = expression_kind(expr) {
            self.census.bump(self.context, kind);
        }
        walk_expr(self, expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Block, Declaration};
    use crate::builder;
    use crate::types::Type;

    #[test]
    fn census_distinguishes_contexts() {
        let action = ActionDecl {
            name: "a".into(),
            params: vec![],
            body: Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(1, 8),
            )]),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(2, 8),
                )])),
            )]),
        );
        let census = ConstructCensus::of(&program);
        assert_eq!(census.count("action/assign"), 1);
        assert_eq!(census.count("apply/if"), 1);
        assert_eq!(census.count("apply/assign"), 1);
        assert!(census.count("apply/expr/compare") >= 1);
        assert_eq!(census.count("action/if"), 0);
    }

    #[test]
    fn census_counts_slice_assignments_and_exits() {
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Assign {
                    lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                    rhs: Expr::uint(1, 4),
                },
                Statement::Exit,
            ]),
        );
        let census = ConstructCensus::of(&program);
        assert_eq!(census.count("apply/slice_assign"), 1);
        assert_eq!(census.count("apply/exit"), 1);
    }

    #[test]
    fn merge_is_commutative() {
        let a = ConstructCensus::of(&builder::trivial_program());
        let mut program = builder::trivial_program();
        program
            .control_mut("ingress_impl")
            .unwrap()
            .apply
            .statements
            .push(Statement::Declare {
                name: "v".into(),
                ty: Type::bits(8),
                init: Some(Expr::uint(1, 8)),
            });
        let b = ConstructCensus::of(&program);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert!(ab.count("apply/declare") >= 1);
    }
}
