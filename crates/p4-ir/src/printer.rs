//! ToP4: pretty-prints the IR back into P4 source text.
//!
//! P4C maintains the invariant that every front- and mid-end pass emits a
//! syntactically valid P4 program (paper §7.2, "Invalid transformations").
//! Gauntlet re-parses the emitted program after every pass to catch
//! violations of that invariant, so the printer and the parser must round
//! trip.  The printer is deliberately deterministic: identical IR always
//! prints to identical text, which the pass manager uses to detect whether
//! a pass changed the program.

use crate::ast::*;
use crate::types::{Direction, Param, Type};
use std::fmt::Write;

/// Pretty-prints a whole program.
pub fn print_program(program: &Program) -> String {
    let mut p = Printer::new();
    p.program(program);
    p.out
}

/// Pretty-prints a single expression (used in error messages and tests).
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr);
    p.out
}

/// Pretty-prints a single statement at indent level 0.
pub fn print_statement(stmt: &Statement) -> String {
    let mut p = Printer::new();
    p.statement(stmt);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Printer {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent = self.indent.saturating_sub(1);
        self.line(text);
    }

    fn program(&mut self, program: &Program) {
        self.line(&format!("// architecture: {}", program.architecture));
        self.line("#include <core.p4>");
        self.line(&format!("#include <{}.p4>", program.architecture));
        self.line("");
        for decl in &program.declarations {
            self.declaration(decl);
            self.line("");
        }
        self.package(&program.package);
    }

    fn package(&mut self, pkg: &PackageInstance) {
        if pkg.package.is_empty() {
            return;
        }
        let args = pkg
            .bindings
            .iter()
            .map(|(_, decl)| format!("{decl}()"))
            .collect::<Vec<_>>()
            .join(", ");
        self.line(&format!("{}({args}) main;", pkg.package));
    }

    fn declaration(&mut self, decl: &Declaration) {
        match decl {
            Declaration::Header(h) => {
                self.open(&format!("header {} {{", h.name));
                for field in &h.fields {
                    self.line(&format!("{} {};", self.type_str(&field.ty), field.name));
                }
                self.close("}");
            }
            Declaration::Struct(s) => {
                self.open(&format!("struct {} {{", s.name));
                for field in &s.fields {
                    self.line(&format!("{} {};", self.type_str(&field.ty), field.name));
                }
                self.close("}");
            }
            Declaration::Typedef(t) => {
                self.line(&format!("typedef {} {};", self.type_str(&t.ty), t.name));
            }
            Declaration::Constant(c) => {
                let mut value = String::new();
                Self::expr_into(&mut value, &c.value);
                self.line(&format!(
                    "const {} {} = {};",
                    self.type_str(&c.ty),
                    c.name,
                    value
                ));
            }
            Declaration::Action(a) => {
                self.open(&format!(
                    "action {}({}) {{",
                    a.name,
                    self.params_str(&a.params)
                ));
                self.block_body(&a.body);
                self.close("}");
            }
            Declaration::Function(f) => {
                self.open(&format!(
                    "{} {}({}) {{",
                    self.type_str(&f.return_type),
                    f.name,
                    self.params_str(&f.params)
                ));
                self.block_body(&f.body);
                self.close("}");
            }
            Declaration::Table(t) => self.table(t),
            Declaration::Control(c) => {
                self.open(&format!(
                    "control {}({}) {{",
                    c.name,
                    self.params_str(&c.params)
                ));
                for local in &c.locals {
                    self.declaration(local);
                }
                self.open("apply {");
                self.block_body(&c.apply);
                self.close("}");
                self.close("}");
            }
            Declaration::Parser(p) => {
                self.open(&format!(
                    "parser {}({}) {{",
                    p.name,
                    self.params_str(&p.params)
                ));
                for local in &p.locals {
                    self.declaration(local);
                }
                for state in &p.states {
                    self.parser_state(state);
                }
                self.close("}");
            }
            Declaration::Variable { name, ty, init } => {
                let ty_str = self.type_str(ty);
                match init {
                    Some(expr) => {
                        let mut value = String::new();
                        Self::expr_into(&mut value, expr);
                        self.line(&format!("{ty_str} {name} = {value};"));
                    }
                    None => self.line(&format!("{ty_str} {name};")),
                }
            }
        }
    }

    fn table(&mut self, t: &TableDecl) {
        self.open(&format!("table {} {{", t.name));
        if !t.keys.is_empty() {
            self.open("key = {");
            for key in &t.keys {
                let mut expr = String::new();
                Self::expr_into(&mut expr, &key.expr);
                self.line(&format!("{expr} : {};", key.match_kind));
            }
            self.close("}");
        }
        self.open("actions = {");
        for action in &t.actions {
            self.line(&format!("{};", self.action_ref_str(action)));
        }
        self.close("}");
        self.line(&format!(
            "default_action = {};",
            self.action_ref_str(&t.default_action)
        ));
        self.close("}");
    }

    fn action_ref_str(&self, a: &ActionRef) -> String {
        let mut args = String::new();
        for (i, arg) in a.args.iter().enumerate() {
            if i > 0 {
                args.push_str(", ");
            }
            Self::expr_into(&mut args, arg);
        }
        format!("{}({args})", a.name)
    }

    fn parser_state(&mut self, state: &ParserState) {
        self.open(&format!("state {} {{", state.name));
        for stmt in &state.statements {
            self.statement(stmt);
        }
        match &state.transition {
            Transition::Direct(next) => self.line(&format!("transition {next};")),
            Transition::Select { selector, cases } => {
                let mut sel = String::new();
                Self::expr_into(&mut sel, selector);
                self.open(&format!("transition select({sel}) {{"));
                for case in cases {
                    match &case.value {
                        Some(value) => {
                            let mut v = String::new();
                            Self::expr_into(&mut v, value);
                            self.line(&format!("{v}: {};", case.next_state));
                        }
                        None => self.line(&format!("default: {};", case.next_state)),
                    }
                }
                self.close("}");
            }
        }
        self.close("}");
    }

    fn block_body(&mut self, block: &Block) {
        for stmt in &block.statements {
            self.statement(stmt);
        }
    }

    fn statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Assign { lhs, rhs } => {
                let mut l = String::new();
                let mut r = String::new();
                Self::expr_into(&mut l, lhs);
                Self::expr_into(&mut r, rhs);
                self.line(&format!("{l} = {r};"));
            }
            Statement::Call(call) => {
                let mut s = String::new();
                Self::call_into(&mut s, call);
                self.line(&format!("{s};"));
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut c = String::new();
                Self::expr_into(&mut c, cond);
                self.open(&format!("if ({c}) {{"));
                self.nested_statement(then_branch);
                match else_branch {
                    Some(else_stmt) => {
                        self.close("} else {");
                        self.indent += 1;
                        self.nested_statement(else_stmt);
                        self.close("}");
                    }
                    None => self.close("}"),
                }
            }
            Statement::Block(block) => {
                self.open("{");
                self.block_body(block);
                self.close("}");
            }
            Statement::Declare { name, ty, init } => {
                let ty_str = self.type_str(ty);
                match init {
                    Some(expr) => {
                        let mut value = String::new();
                        Self::expr_into(&mut value, expr);
                        self.line(&format!("{ty_str} {name} = {value};"));
                    }
                    None => self.line(&format!("{ty_str} {name};")),
                }
            }
            Statement::Constant { name, ty, value } => {
                let mut v = String::new();
                Self::expr_into(&mut v, value);
                self.line(&format!("const {} {name} = {v};", self.type_str(ty)));
            }
            Statement::Exit => self.line("exit;"),
            Statement::Return(None) => self.line("return;"),
            Statement::Return(Some(expr)) => {
                let mut value = String::new();
                Self::expr_into(&mut value, expr);
                self.line(&format!("return {value};"));
            }
            Statement::Empty => self.line(";"),
        }
    }

    /// Prints the body of an `if` branch: blocks are flattened so the output
    /// matches the `{ ... }` we already opened.
    fn nested_statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Block(block) => self.block_body(block),
            other => self.statement(other),
        }
    }

    fn expr(&mut self, expr: &Expr) {
        let mut s = String::new();
        Self::expr_into(&mut s, expr);
        self.out.push_str(&s);
    }

    fn type_str(&self, ty: &Type) -> String {
        match ty {
            Type::Packet => "packet_in".to_string(),
            other => other.to_string(),
        }
    }

    fn params_str(&self, params: &[Param]) -> String {
        params
            .iter()
            .map(|p| {
                let ty = self.type_str(&p.ty);
                if p.direction == Direction::None {
                    format!("{ty} {}", p.name)
                } else {
                    format!("{} {ty} {}", p.direction, p.name)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn call_into(out: &mut String, call: &CallExpr) {
        out.push_str(&call.target.join("."));
        out.push('(');
        for (i, arg) in call.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            Self::expr_into(out, arg);
        }
        out.push(')');
    }

    /// Prints the base of a postfix operator (member access or slice).
    /// Casts bind more loosely than postfix operators in P4, so a cast used
    /// as a postfix base needs explicit parentheses to re-parse identically.
    fn postfix_base_into(out: &mut String, base: &Expr) {
        if matches!(base, Expr::Cast { .. }) {
            out.push('(');
            Self::expr_into(out, base);
            out.push(')');
        } else {
            Self::expr_into(out, base);
        }
    }

    fn expr_into(out: &mut String, expr: &Expr) {
        match expr {
            Expr::Bool(true) => out.push_str("true"),
            Expr::Bool(false) => out.push_str("false"),
            Expr::Int {
                value,
                width: Some(w),
                signed,
            } => {
                let prefix = if *signed { "s" } else { "w" };
                let _ = write!(out, "{w}{prefix}{value}");
            }
            Expr::Int {
                value, width: None, ..
            } => {
                let _ = write!(out, "{value}");
            }
            Expr::Path(name) => out.push_str(name),
            Expr::Member { base, member } => {
                Self::postfix_base_into(out, base);
                out.push('.');
                out.push_str(member);
            }
            Expr::Slice { base, hi, lo } => {
                Self::postfix_base_into(out, base);
                let _ = write!(out, "[{hi}:{lo}]");
            }
            Expr::Unary { op, operand } => {
                let symbol = match op {
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                    UnOp::Neg => "-",
                };
                out.push_str(symbol);
                out.push('(');
                Self::expr_into(out, operand);
                out.push(')');
            }
            Expr::Binary { op, left, right } => {
                out.push('(');
                Self::expr_into(out, left);
                let _ = write!(out, " {} ", op.symbol());
                Self::expr_into(out, right);
                out.push(')');
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                out.push('(');
                Self::expr_into(out, cond);
                out.push_str(" ? ");
                Self::expr_into(out, then_expr);
                out.push_str(" : ");
                Self::expr_into(out, else_expr);
                out.push(')');
            }
            Expr::Cast { ty, expr } => {
                let _ = write!(out, "({ty})");
                out.push('(');
                Self::expr_into(out, expr);
                out.push(')');
            }
            Expr::Call(call) => Self::call_into(out, call),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MatchKind;

    #[test]
    fn prints_literals_with_width_prefix() {
        assert_eq!(print_expr(&Expr::uint(2, 8)), "8w2");
        assert_eq!(print_expr(&Expr::int(42)), "42");
        assert_eq!(print_expr(&Expr::Bool(true)), "true");
        assert_eq!(
            print_expr(&Expr::Int {
                value: 3,
                width: Some(4),
                signed: true
            }),
            "4s3"
        );
    }

    #[test]
    fn prints_nested_expressions_with_parens() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Shl, Expr::uint(1, 8), Expr::dotted(&["h", "c"])),
            Expr::uint(2, 8),
        );
        assert_eq!(print_expr(&e), "((8w1 << h.c) + 8w2)");
    }

    #[test]
    fn prints_slice_and_cast() {
        let e = Expr::cast(Type::bits(4), Expr::slice(Expr::dotted(&["h", "a"]), 7, 4));
        assert_eq!(print_expr(&e), "(bit<4>)(h.a[7:4])");
    }

    #[test]
    fn prints_if_else_statement() {
        let stmt = Statement::if_else(
            Expr::binary(BinOp::Ne, Expr::dotted(&["h", "a"]), Expr::uint(1, 8)),
            Statement::assign(Expr::dotted(&["h", "b"]), Expr::uint(0, 8)),
            Statement::Exit,
        );
        let text = print_statement(&stmt);
        assert!(text.contains("if ((h.a != 8w1)) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("exit;"));
    }

    #[test]
    fn prints_table_declaration() {
        let table = TableDecl {
            name: "t".into(),
            keys: vec![KeyElement {
                expr: Expr::dotted(&["hdr", "a"]),
                match_kind: MatchKind::Exact,
            }],
            actions: vec![ActionRef::new("assign"), ActionRef::new("NoAction")],
            default_action: ActionRef::new("NoAction"),
        };
        let mut printer = Printer::new();
        printer.declaration(&Declaration::Table(table));
        let text = printer.out;
        assert!(text.contains("table t {"));
        assert!(text.contains("hdr.a : exact;"));
        assert!(text.contains("default_action = NoAction();"));
    }

    #[test]
    fn printing_is_deterministic() {
        let stmt = Statement::call(vec!["t", "apply"], vec![]);
        assert_eq!(print_statement(&stmt), print_statement(&stmt));
    }
}
