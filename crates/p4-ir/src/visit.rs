//! Visitor and mutator traits over the IR.
//!
//! P4C's pass infrastructure is built on AST visitors (paper §7.3 "The AST
//! visitor library in P4C allowed us to develop extensions like our random
//! program generator and interpreter").  This module provides the same
//! facility for our IR: a read-only [`Visitor`] used for analyses and a
//! [`Mutator`] used by transform passes.

use crate::ast::*;

/// Read-only traversal.  Implement the hooks you care about; every hook has
/// a default that recurses into children via the `walk_*` free functions.
pub trait Visitor {
    fn visit_program(&mut self, program: &Program) {
        walk_program(self, program);
    }
    fn visit_declaration(&mut self, decl: &Declaration) {
        walk_declaration(self, decl);
    }
    fn visit_control(&mut self, control: &ControlDecl) {
        walk_control(self, control);
    }
    fn visit_parser(&mut self, parser: &ParserDecl) {
        walk_parser(self, parser);
    }
    fn visit_table(&mut self, _table: &TableDecl) {}
    fn visit_action(&mut self, action: &ActionDecl) {
        walk_block(self, &action.body);
    }
    fn visit_function(&mut self, function: &FunctionDecl) {
        walk_block(self, &function.body);
    }
    fn visit_block(&mut self, block: &Block) {
        walk_block(self, block);
    }
    fn visit_statement(&mut self, stmt: &Statement) {
        walk_statement(self, stmt);
    }
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
}

pub fn walk_program<V: Visitor + ?Sized>(v: &mut V, program: &Program) {
    for decl in &program.declarations {
        v.visit_declaration(decl);
    }
}

pub fn walk_declaration<V: Visitor + ?Sized>(v: &mut V, decl: &Declaration) {
    match decl {
        Declaration::Control(c) => v.visit_control(c),
        Declaration::Parser(p) => v.visit_parser(p),
        Declaration::Action(a) => v.visit_action(a),
        Declaration::Function(f) => v.visit_function(f),
        Declaration::Table(t) => v.visit_table(t),
        Declaration::Constant(c) => v.visit_expr(&c.value),
        Declaration::Variable {
            init: Some(init), ..
        } => v.visit_expr(init),
        _ => {}
    }
}

pub fn walk_control<V: Visitor + ?Sized>(v: &mut V, control: &ControlDecl) {
    for local in &control.locals {
        v.visit_declaration(local);
    }
    v.visit_block(&control.apply);
}

pub fn walk_parser<V: Visitor + ?Sized>(v: &mut V, parser: &ParserDecl) {
    for local in &parser.locals {
        v.visit_declaration(local);
    }
    for state in &parser.states {
        for stmt in &state.statements {
            v.visit_statement(stmt);
        }
        if let Transition::Select { selector, cases } = &state.transition {
            v.visit_expr(selector);
            for case in cases {
                if let Some(value) = &case.value {
                    v.visit_expr(value);
                }
            }
        }
    }
}

pub fn walk_block<V: Visitor + ?Sized>(v: &mut V, block: &Block) {
    for stmt in &block.statements {
        v.visit_statement(stmt);
    }
}

pub fn walk_statement<V: Visitor + ?Sized>(v: &mut V, stmt: &Statement) {
    match stmt {
        Statement::Assign { lhs, rhs } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        Statement::Call(call) => {
            for arg in &call.args {
                v.visit_expr(arg);
            }
        }
        Statement::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit_expr(cond);
            v.visit_statement(then_branch);
            if let Some(else_stmt) = else_branch {
                v.visit_statement(else_stmt);
            }
        }
        Statement::Block(block) => v.visit_block(block),
        Statement::Declare {
            init: Some(init), ..
        } => v.visit_expr(init),
        Statement::Constant { value, .. } => v.visit_expr(value),
        Statement::Return(Some(expr)) => v.visit_expr(expr),
        _ => {}
    }
}

pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match expr {
        Expr::Member { base, .. } | Expr::Slice { base, .. } => v.visit_expr(base),
        Expr::Unary { operand, .. } => v.visit_expr(operand),
        Expr::Cast { expr, .. } => v.visit_expr(expr),
        Expr::Binary { left, right, .. } => {
            v.visit_expr(left);
            v.visit_expr(right);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            v.visit_expr(cond);
            v.visit_expr(then_expr);
            v.visit_expr(else_expr);
        }
        Expr::Call(call) => {
            for arg in &call.args {
                v.visit_expr(arg);
            }
        }
        _ => {}
    }
}

/// In-place transforming traversal.  Hooks receive `&mut` nodes; the default
/// implementations recurse into children.  Passes override the hooks they
/// need and rely on the defaults for the rest — the same structure as a P4C
/// `Transform`.
pub trait Mutator {
    fn mutate_program(&mut self, program: &mut Program) {
        mutate_walk_program(self, program);
    }
    fn mutate_declaration(&mut self, decl: &mut Declaration) {
        mutate_walk_declaration(self, decl);
    }
    fn mutate_control(&mut self, control: &mut ControlDecl) {
        mutate_walk_control(self, control);
    }
    fn mutate_parser(&mut self, parser: &mut ParserDecl) {
        mutate_walk_parser(self, parser);
    }
    fn mutate_table(&mut self, _table: &mut TableDecl) {}
    fn mutate_action(&mut self, action: &mut ActionDecl) {
        self.mutate_block(&mut action.body);
    }
    fn mutate_function(&mut self, function: &mut FunctionDecl) {
        self.mutate_block(&mut function.body);
    }
    fn mutate_block(&mut self, block: &mut Block) {
        mutate_walk_block(self, block);
    }
    fn mutate_statement(&mut self, stmt: &mut Statement) {
        mutate_walk_statement(self, stmt);
    }
    fn mutate_expr(&mut self, expr: &mut Expr) {
        mutate_walk_expr(self, expr);
    }
}

pub fn mutate_walk_program<M: Mutator + ?Sized>(m: &mut M, program: &mut Program) {
    for decl in &mut program.declarations {
        m.mutate_declaration(decl);
    }
}

pub fn mutate_walk_declaration<M: Mutator + ?Sized>(m: &mut M, decl: &mut Declaration) {
    match decl {
        Declaration::Control(c) => m.mutate_control(c),
        Declaration::Parser(p) => m.mutate_parser(p),
        Declaration::Action(a) => m.mutate_action(a),
        Declaration::Function(f) => m.mutate_function(f),
        Declaration::Table(t) => m.mutate_table(t),
        Declaration::Constant(c) => m.mutate_expr(&mut c.value),
        Declaration::Variable {
            init: Some(init), ..
        } => m.mutate_expr(init),
        _ => {}
    }
}

pub fn mutate_walk_control<M: Mutator + ?Sized>(m: &mut M, control: &mut ControlDecl) {
    for local in &mut control.locals {
        m.mutate_declaration(local);
    }
    m.mutate_block(&mut control.apply);
}

pub fn mutate_walk_parser<M: Mutator + ?Sized>(m: &mut M, parser: &mut ParserDecl) {
    for local in &mut parser.locals {
        m.mutate_declaration(local);
    }
    for state in &mut parser.states {
        for stmt in &mut state.statements {
            m.mutate_statement(stmt);
        }
        if let Transition::Select { selector, cases } = &mut state.transition {
            m.mutate_expr(selector);
            for case in cases {
                if let Some(value) = &mut case.value {
                    m.mutate_expr(value);
                }
            }
        }
    }
}

pub fn mutate_walk_block<M: Mutator + ?Sized>(m: &mut M, block: &mut Block) {
    for stmt in &mut block.statements {
        m.mutate_statement(stmt);
    }
}

pub fn mutate_walk_statement<M: Mutator + ?Sized>(m: &mut M, stmt: &mut Statement) {
    match stmt {
        Statement::Assign { lhs, rhs } => {
            m.mutate_expr(lhs);
            m.mutate_expr(rhs);
        }
        Statement::Call(call) => {
            for arg in &mut call.args {
                m.mutate_expr(arg);
            }
        }
        Statement::If {
            cond,
            then_branch,
            else_branch,
        } => {
            m.mutate_expr(cond);
            m.mutate_statement(then_branch);
            if let Some(else_stmt) = else_branch {
                m.mutate_statement(else_stmt);
            }
        }
        Statement::Block(block) => m.mutate_block(block),
        Statement::Declare {
            init: Some(init), ..
        } => m.mutate_expr(init),
        Statement::Constant { value, .. } => m.mutate_expr(value),
        Statement::Return(Some(expr)) => m.mutate_expr(expr),
        _ => {}
    }
}

pub fn mutate_walk_expr<M: Mutator + ?Sized>(m: &mut M, expr: &mut Expr) {
    match expr {
        Expr::Member { base, .. } | Expr::Slice { base, .. } => m.mutate_expr(base),
        Expr::Unary { operand, .. } => m.mutate_expr(operand),
        Expr::Cast { expr, .. } => m.mutate_expr(expr),
        Expr::Binary { left, right, .. } => {
            m.mutate_expr(left);
            m.mutate_expr(right);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            m.mutate_expr(cond);
            m.mutate_expr(then_expr);
            m.mutate_expr(else_expr);
        }
        Expr::Call(call) => {
            for arg in &mut call.args {
                m.mutate_expr(arg);
            }
        }
        _ => {}
    }
}

/// Applies `f` to every statement *list* reachable from `block`, outermost
/// first: the block's own list, then — in statement order — the lists nested
/// inside child blocks and `if` branches.  Statement lists (rather than
/// individual statements) are the unit of interest for transformations that
/// insert, splice, or reorder statements: `p4-mutate`'s program mutators and
/// `p4-reduce`'s statement-level ddmin both address sites this way.
pub fn for_each_statement_list<F: FnMut(&[Statement])>(block: &Block, f: &mut F) {
    f(&block.statements);
    for stmt in &block.statements {
        nested_statement_lists(stmt, f);
    }
}

fn nested_statement_lists<F: FnMut(&[Statement])>(stmt: &Statement, f: &mut F) {
    match stmt {
        Statement::Block(block) => for_each_statement_list(block, f),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            nested_statement_lists(then_branch, f);
            if let Some(else_stmt) = else_branch {
                nested_statement_lists(else_stmt, f);
            }
        }
        _ => {}
    }
}

/// Mutable counterpart of [`for_each_statement_list`]: `f` receives each
/// statement list as `&mut Vec<Statement>` and may grow, shrink, or reorder
/// it in place.  The traversal descends into whatever the list contains
/// *after* `f` ran on it, so statements inserted by `f` are themselves
/// visited — callers that must mutate only one site should latch on the
/// first hit.
pub fn for_each_statement_list_mut<F: FnMut(&mut Vec<Statement>)>(block: &mut Block, f: &mut F) {
    f(&mut block.statements);
    for stmt in &mut block.statements {
        nested_statement_lists_mut(stmt, f);
    }
}

fn nested_statement_lists_mut<F: FnMut(&mut Vec<Statement>)>(stmt: &mut Statement, f: &mut F) {
    match stmt {
        Statement::Block(block) => for_each_statement_list_mut(block, f),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            nested_statement_lists_mut(then_branch, f);
            if let Some(else_stmt) = else_branch {
                nested_statement_lists_mut(else_stmt, f);
            }
        }
        _ => {}
    }
}

/// Counts occurrences of various node kinds; useful for tests and for the
/// generator's size accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeCounter {
    pub statements: usize,
    pub expressions: usize,
    pub calls: usize,
    pub tables: usize,
}

impl Visitor for NodeCounter {
    fn visit_statement(&mut self, stmt: &Statement) {
        self.statements += 1;
        if matches!(stmt, Statement::Call(_)) {
            self.calls += 1;
        }
        walk_statement(self, stmt);
    }

    fn visit_expr(&mut self, expr: &Expr) {
        self.expressions += 1;
        if matches!(expr, Expr::Call(_)) {
            self.calls += 1;
        }
        walk_expr(self, expr);
    }

    fn visit_table(&mut self, table: &TableDecl) {
        self.tables += 1;
        for key in &table.keys {
            self.visit_expr(&key.expr);
        }
    }
}

impl NodeCounter {
    /// Convenience: count nodes in a whole program.
    pub fn count(program: &Program) -> NodeCounter {
        let mut counter = NodeCounter::default();
        counter.visit_program(program);
        counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Block, ControlDecl, Declaration, Program, Statement};
    use crate::types::{Direction, Param, Type};

    fn sample_program() -> Program {
        let mut program = Program::new("v1model");
        let apply = Block::new(vec![
            Statement::assign(Expr::dotted(&["hdr", "a"]), Expr::uint(1, 8)),
            Statement::if_then(
                Expr::binary(BinOp::Eq, Expr::dotted(&["hdr", "a"]), Expr::uint(1, 8)),
                Statement::call(vec!["t", "apply"], vec![]),
            ),
        ]);
        program.declarations.push(Declaration::Control(ControlDecl {
            name: "ig".into(),
            params: vec![Param::new(
                Direction::InOut,
                "hdr",
                Type::Struct("headers_t".into()),
            )],
            locals: vec![],
            apply,
        }));
        program
    }

    #[test]
    fn node_counter_counts_statements_and_calls() {
        let counts = NodeCounter::count(&sample_program());
        assert_eq!(counts.statements, 3);
        assert_eq!(counts.calls, 1);
        assert!(counts.expressions >= 5);
    }

    struct RenamePaths;
    impl Mutator for RenamePaths {
        fn mutate_expr(&mut self, expr: &mut Expr) {
            if let Expr::Path(name) = expr {
                if name == "hdr" {
                    *name = "headers".into();
                }
            }
            mutate_walk_expr(self, expr);
        }
    }

    #[test]
    fn statement_list_walkers_cover_nested_lists() {
        let nested = Block::new(vec![
            Statement::assign(Expr::dotted(&["hdr", "a"]), Expr::uint(1, 8)),
            Statement::if_else(
                Expr::Bool(true),
                Statement::Block(Block::new(vec![Statement::Exit])),
                Statement::assign(Expr::dotted(&["hdr", "a"]), Expr::uint(2, 8)),
            ),
            Statement::Block(Block::new(vec![Statement::Empty])),
        ]);
        let mut lists = 0;
        let mut statements = 0;
        for_each_statement_list(&nested, &mut |list| {
            lists += 1;
            statements += list.len();
        });
        // Outer list, the `then` block, and the trailing block (the bare
        // `else` statement is not a list).
        assert_eq!(lists, 3);
        assert_eq!(statements, 5);

        // The mutable walker can splice; inserted statements are visited.
        let mut block = nested;
        let mut first = true;
        for_each_statement_list_mut(&mut block, &mut |list| {
            if first {
                first = false;
                list.insert(0, Statement::Empty);
            }
        });
        assert_eq!(block.statements.len(), 4);
        assert!(matches!(block.statements[0], Statement::Empty));
    }

    #[test]
    fn mutator_rewrites_paths_everywhere() {
        let mut program = sample_program();
        RenamePaths.mutate_program(&mut program);
        let text = crate::printer::print_program(&program);
        assert!(text.contains("headers.a"));
        assert!(!text.contains("hdr.a"));
    }
}
