//! Target architecture models.
//!
//! A P4 program is compiled against a *package* that lists the programmable
//! blocks of a target (paper §3, Figure 1).  This module describes the two
//! architectures the paper's back ends expose:
//!
//! * [`Architecture::v1model`] — the BMv2 "simple switch" package with
//!   parser, ingress, egress, and deparser blocks, plus the
//!   `standard_metadata_t` intrinsic struct.
//! * [`Architecture::tna`] — a reduced model of the Tofino Native
//!   Architecture with per-pipe ingress parser / ingress / deparser blocks
//!   and target restrictions that the back end enforces (no multiplications,
//!   bounded operand widths), standing in for the closed-source compiler's
//!   constraints.

use crate::ast::{Field, StructDecl};
use crate::types::{Direction, Param, Type};
use serde::{Deserialize, Serialize};

/// The role a programmable block plays, which determines how the symbolic
/// interpreter and the targets treat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// A parser state machine: bytes in, parsed headers out.
    Parser,
    /// A match-action control block.
    Control,
    /// A deparser control block: headers in, bytes out.
    Deparser,
}

/// One programmable slot of a package.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSpec {
    /// Slot name used in the package instantiation, e.g. `"ingress"`.
    pub slot: String,
    pub kind: BlockKind,
    /// The parameter signature a user declaration must match for this slot.
    pub params: Vec<Param>,
}

/// Restrictions a back end places on programs (used by the random program
/// generator to stay within the target's supported subset, and by the
/// "proprietary" Tofino-like back end to reject programs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetRestrictions {
    /// Maximum bit width of any arithmetic operand.
    pub max_operand_width: u32,
    /// Whether `*` is supported in the data plane.
    pub allows_multiplication: bool,
    /// Whether variable (non-constant) shift amounts are supported.
    pub allows_variable_shift: bool,
    /// Maximum number of table applications per control.
    pub max_tables_per_control: usize,
}

impl Default for TargetRestrictions {
    fn default() -> Self {
        TargetRestrictions {
            max_operand_width: 128,
            allows_multiplication: true,
            allows_variable_shift: true,
            max_tables_per_control: 64,
        }
    }
}

/// A target architecture: its package name, programmable block slots,
/// intrinsic metadata struct, and restrictions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Architecture {
    /// Architecture identifier: `"v1model"` or `"tna"`.
    pub name: String,
    /// Package type name used in the `main` instantiation.
    pub package_name: String,
    pub blocks: Vec<BlockSpec>,
    /// Intrinsic structs the architecture injects into every program
    /// (e.g. `standard_metadata_t`).
    pub intrinsic_structs: Vec<StructDecl>,
    pub restrictions: TargetRestrictions,
}

/// Name of the user headers struct every generated program uses.
pub const HEADERS_STRUCT: &str = "headers_t";
/// Name of the user metadata struct every generated program uses.
pub const META_STRUCT: &str = "metadata_t";
/// Name of the v1model intrinsic metadata struct.
pub const STD_META_STRUCT: &str = "standard_metadata_t";
/// Name of the tna intrinsic metadata struct.
pub const TNA_META_STRUCT: &str = "ingress_intrinsic_metadata_t";

impl Architecture {
    /// The BMv2 / v1model architecture (paper §3: "simple switch").
    pub fn v1model() -> Architecture {
        let std_meta = StructDecl {
            name: STD_META_STRUCT.into(),
            fields: vec![
                Field::new("ingress_port", Type::bits(9)),
                Field::new("egress_spec", Type::bits(9)),
                Field::new("egress_port", Type::bits(9)),
                Field::new("instance_type", Type::bits(32)),
                Field::new("packet_length", Type::bits(32)),
                Field::new("enq_timestamp", Type::bits(32)),
                Field::new("deq_qdepth", Type::bits(19)),
            ],
        };
        let hdr = |dir| Param::new(dir, "hdr", Type::Named(HEADERS_STRUCT.into()));
        let meta = |dir| Param::new(dir, "meta", Type::Named(META_STRUCT.into()));
        let std = |dir| {
            Param::new(
                dir,
                "standard_metadata",
                Type::Named(STD_META_STRUCT.into()),
            )
        };
        Architecture {
            name: "v1model".into(),
            package_name: "V1Switch".into(),
            blocks: vec![
                BlockSpec {
                    slot: "parser".into(),
                    kind: BlockKind::Parser,
                    params: vec![
                        Param::new(Direction::None, "packet", Type::Packet),
                        hdr(Direction::Out),
                        meta(Direction::InOut),
                        std(Direction::InOut),
                    ],
                },
                BlockSpec {
                    slot: "ingress".into(),
                    kind: BlockKind::Control,
                    params: vec![
                        hdr(Direction::InOut),
                        meta(Direction::InOut),
                        std(Direction::InOut),
                    ],
                },
                BlockSpec {
                    slot: "egress".into(),
                    kind: BlockKind::Control,
                    params: vec![
                        hdr(Direction::InOut),
                        meta(Direction::InOut),
                        std(Direction::InOut),
                    ],
                },
                BlockSpec {
                    slot: "deparser".into(),
                    kind: BlockKind::Deparser,
                    params: vec![
                        Param::new(Direction::None, "packet", Type::Packet),
                        hdr(Direction::In),
                    ],
                },
            ],
            intrinsic_structs: vec![std_meta],
            restrictions: TargetRestrictions::default(),
        }
    }

    /// A reduced Tofino Native Architecture model: one ingress pipe with a
    /// hardware-flavoured restriction set.
    pub fn tna() -> Architecture {
        let ig_meta = StructDecl {
            name: TNA_META_STRUCT.into(),
            fields: vec![
                Field::new("ingress_port", Type::bits(9)),
                Field::new("ucast_egress_port", Type::bits(9)),
                Field::new("drop_ctl", Type::bits(3)),
                Field::new("ingress_mac_tstamp", Type::bits(48)),
            ],
        };
        let hdr = |dir| Param::new(dir, "hdr", Type::Named(HEADERS_STRUCT.into()));
        let meta = |dir| Param::new(dir, "meta", Type::Named(META_STRUCT.into()));
        let ig = |dir| Param::new(dir, "ig_intr_md", Type::Named(TNA_META_STRUCT.into()));
        Architecture {
            name: "tna".into(),
            package_name: "Pipeline".into(),
            blocks: vec![
                BlockSpec {
                    slot: "ingress_parser".into(),
                    kind: BlockKind::Parser,
                    params: vec![
                        Param::new(Direction::None, "packet", Type::Packet),
                        hdr(Direction::Out),
                        meta(Direction::InOut),
                        ig(Direction::InOut),
                    ],
                },
                BlockSpec {
                    slot: "ingress".into(),
                    kind: BlockKind::Control,
                    params: vec![
                        hdr(Direction::InOut),
                        meta(Direction::InOut),
                        ig(Direction::InOut),
                    ],
                },
                BlockSpec {
                    slot: "ingress_deparser".into(),
                    kind: BlockKind::Deparser,
                    params: vec![
                        Param::new(Direction::None, "packet", Type::Packet),
                        hdr(Direction::In),
                    ],
                },
            ],
            intrinsic_structs: vec![ig_meta],
            restrictions: TargetRestrictions {
                max_operand_width: 32,
                allows_multiplication: false,
                allows_variable_shift: false,
                max_tables_per_control: 16,
            },
        }
    }

    /// Look up an architecture by name.
    pub fn by_name(name: &str) -> Option<Architecture> {
        match name {
            "v1model" => Some(Architecture::v1model()),
            "tna" => Some(Architecture::tna()),
            _ => None,
        }
    }

    /// The block spec for a slot name.
    pub fn block(&self, slot: &str) -> Option<&BlockSpec> {
        self.blocks.iter().find(|b| b.slot == slot)
    }

    /// Slots holding match-action controls (the blocks translation
    /// validation and symbolic execution analyse).
    pub fn control_slots(&self) -> impl Iterator<Item = &BlockSpec> {
        self.blocks.iter().filter(|b| b.kind == BlockKind::Control)
    }

    /// The parser slot, if the architecture has one.
    pub fn parser_slot(&self) -> Option<&BlockSpec> {
        self.blocks.iter().find(|b| b.kind == BlockKind::Parser)
    }

    /// The deparser slot, if the architecture has one.
    pub fn deparser_slot(&self) -> Option<&BlockSpec> {
        self.blocks.iter().find(|b| b.kind == BlockKind::Deparser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1model_has_four_blocks() {
        let arch = Architecture::v1model();
        assert_eq!(arch.blocks.len(), 4);
        assert!(arch.block("ingress").is_some());
        assert!(arch.block("egress").is_some());
        assert_eq!(arch.control_slots().count(), 2);
        assert_eq!(arch.parser_slot().unwrap().slot, "parser");
        assert_eq!(arch.deparser_slot().unwrap().slot, "deparser");
    }

    #[test]
    fn tna_is_more_restricted() {
        let tna = Architecture::tna();
        let v1 = Architecture::v1model();
        assert!(tna.restrictions.max_operand_width < v1.restrictions.max_operand_width);
        assert!(!tna.restrictions.allows_multiplication);
        assert!(v1.restrictions.allows_multiplication);
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(Architecture::by_name("v1model").unwrap().name, "v1model");
        assert_eq!(Architecture::by_name("tna").unwrap().name, "tna");
        assert!(Architecture::by_name("psa").is_none());
    }

    #[test]
    fn ingress_signature_uses_copy_in_copy_out() {
        let arch = Architecture::v1model();
        let ingress = arch.block("ingress").unwrap();
        assert!(ingress
            .params
            .iter()
            .all(|p| p.direction == Direction::InOut));
    }
}
