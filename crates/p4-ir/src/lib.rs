//! # p4-ir — intermediate representation for the P4-16 subset
//!
//! This crate is the foundation of the Gauntlet reproduction: a typed AST /
//! IR for a representative subset of P4-16, the target architecture models
//! (v1model and a reduced TNA), a deterministic `ToP4` pretty printer, a
//! visitor/mutator framework used by compiler passes, and builders for
//! constructing complete skeleton programs.
//!
//! Every other crate in the workspace — the parser, type checker, nanopass
//! compiler, symbolic interpreter, concrete targets, and the random program
//! generator — operates on the types defined here, mirroring how the
//! original Gauntlet is written against P4C's IR.

pub mod arch;
pub mod ast;
pub mod builder;
pub mod census;
pub mod env;
pub mod intern;
pub mod printer;
pub mod types;
pub mod visit;

pub use arch::{Architecture, BlockKind, BlockSpec, TargetRestrictions};
pub use ast::{
    ActionDecl, ActionRef, BinOp, Block, CallExpr, ConstantDecl, ControlDecl, Declaration, Expr,
    Field, FunctionDecl, HeaderDecl, KeyElement, PackageInstance, ParserDecl, ParserState, Program,
    SelectCase, Statement, StructDecl, TableDecl, Transition, TypedefDecl, UnOp,
};
pub use census::ConstructCensus;
pub use env::{type_of, Aggregate, AggregateKind, Scope, TypeEnv};
pub use intern::{Interner, Symbol};
pub use printer::{print_expr, print_program, print_statement};
pub use types::{max_unsigned, truncate, Direction, MatchKind, Param, Type};
pub use visit::{
    for_each_statement_list, for_each_statement_list_mut, Mutator, NodeCounter, Visitor,
};
