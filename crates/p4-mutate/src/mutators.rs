//! The semantics-preserving mutator catalogue.
//!
//! Each mutator implements [`Mutator`]: given a well-typed program and a
//! seeded RNG it performs *one* rewrite at an RNG-chosen site, returning the
//! registry rule that fired.  Every rewrite preserves the program's
//! semantics by construction — a compiled mutant that diverges from its
//! compiled seed is therefore a compiler bug, no reference semantics needed
//! (the EMI-style oracle of the paper's §8 future-work discussion).
//!
//! Site selection is two-phase and fully deterministic: an immutable walk
//! counts candidate sites (using `p4_ir::for_each_statement_list`), the RNG
//! picks one, and a mutable walk rewrites exactly that site.  Mutation is
//! restricted to the apply blocks of control declarations — the blocks the
//! symbolic interpreter models end-to-end.

use p4_ir::{
    for_each_statement_list, for_each_statement_list_mut, max_unsigned, type_of, BinOp, Block,
    ControlDecl, Declaration, Expr, Program, Scope, Statement, Type, TypeEnv, UnOp,
};
use rand::rngs::StdRng;
use rand::Rng;

/// A semantics-preserving program mutator.
///
/// Implementations must be pure functions of `(program, rng)` — the engine
/// relies on that for byte-deterministic mutants per seed — and must keep
/// the program well-typed and printable (the property suite in
/// `tests/prop_mutators.rs` enforces both, plus equivalence of mutation
/// chains against the reference interpreter).
pub trait Mutator {
    /// Registry name (first column of [`crate::registry::ALL_MUTATORS`]).
    fn name(&self) -> &'static str;

    /// The registry rules this mutator can fire.
    fn rules(&self) -> &'static [&'static str];

    /// Attempts one rewrite at an RNG-chosen site.  Returns the rule that
    /// fired, or `None` when the program offers no candidate site.
    fn apply(&self, program: &mut Program, rng: &mut StdRng) -> Option<&'static str>;
}

/// The full mutator catalogue, in [`crate::registry::ALL_MUTATORS`] order.
pub fn standard_mutators() -> Vec<Box<dyn Mutator>> {
    vec![
        Box::new(AlgebraicRewrite),
        Box::new(ControlFlowWrap),
        Box::new(OpaqueGuard),
        Box::new(ReorderIndependent),
    ]
}

// ---------------------------------------------------------------------------
// Shared site-selection plumbing.
// ---------------------------------------------------------------------------

/// A flat scope of every name visible anywhere in `control`: top-level
/// constants/variables, parameters, control locals, and every local
/// declaration in the apply block.  Flattening ignores block scoping, which
/// is sound here because the scope is only used to *look up widths* of
/// l-values that the well-typed input already resolves; a pathological
/// shadowing clash at worst mis-sizes a rewrite, which the engine's
/// re-typecheck gate then discards.
fn control_scope(env: &TypeEnv, program: &Program, control: &ControlDecl) -> Scope {
    let mut scope = Scope::new();
    for decl in &program.declarations {
        match decl {
            Declaration::Constant(c) => scope.declare(c.name.clone(), env.resolve(&c.ty)),
            Declaration::Variable { name, ty, .. } => {
                scope.declare(name.clone(), env.resolve(ty));
            }
            _ => {}
        }
    }
    for param in &control.params {
        scope.declare(param.name.clone(), env.resolve(&param.ty));
    }
    for local in &control.locals {
        match local {
            Declaration::Variable { name, ty, .. } => {
                scope.declare(name.clone(), env.resolve(ty));
            }
            Declaration::Constant(c) => scope.declare(c.name.clone(), env.resolve(&c.ty)),
            _ => {}
        }
    }
    for_each_statement_list(&control.apply, &mut |list| {
        for stmt in list {
            match stmt {
                Statement::Declare { name, ty, .. } | Statement::Constant { name, ty, .. } => {
                    scope.declare(name.clone(), env.resolve(ty));
                }
                _ => {}
            }
        }
    });
    scope
}

/// Picks the `target`'th candidate site across every statement list of every
/// control (counted by `count_in`) and applies `mutate` to
/// `(list, ordinal-within-list)`.  Counting and application share one
/// traversal order, so phase 1 and phase 2 agree; `mutate` runs at most
/// once.
fn apply_at_nth_site(
    program: &mut Program,
    target: usize,
    count_in: &dyn Fn(&[Statement]) -> usize,
    mutate: &mut dyn FnMut(&mut Vec<Statement>, usize) -> Option<&'static str>,
) -> Option<&'static str> {
    let mut seen = 0usize;
    let mut fired = None;
    for control in program.controls_mut() {
        if fired.is_some() {
            break;
        }
        for_each_statement_list_mut(&mut control.apply, &mut |list| {
            if fired.is_some() {
                return;
            }
            let here = count_in(list);
            if seen + here > target {
                fired = mutate(list, target - seen);
            }
            seen += here;
        });
    }
    fired
}

fn total_sites(program: &Program, count_in: &dyn Fn(&[Statement]) -> usize) -> usize {
    let mut total = 0usize;
    for control in program.controls() {
        for_each_statement_list(&control.apply, &mut |list| total += count_in(list));
    }
    total
}

// ---------------------------------------------------------------------------
// AlgebraicRewrite — identity rewrites on assignment right-hand sides.
// ---------------------------------------------------------------------------

/// Rewrites the right-hand side of an assignment through a known algebraic
/// identity: `x ^ 0`, `x & all-ones`, `~~x`, `x << 0`.  The identity's
/// literal widths come from the assignment target's declared type, so the
/// rewrite is well-typed whenever the original assignment was.
pub struct AlgebraicRewrite;

/// The width of an assignment whose target is an unsigned `bit<N>` l-value
/// (the shapes the identities are defined on); `None` for anything else.
fn assign_width(env: &TypeEnv, scope: &Scope, stmt: &Statement) -> Option<u32> {
    let Statement::Assign { lhs, .. } = stmt else {
        return None;
    };
    match type_of(env, scope, lhs)? {
        Type::Bits {
            width,
            signed: false,
        } if width > 0 => Some(width),
        _ => None,
    }
}

fn rewrite_rhs(rhs: &mut Expr, width: u32, pick: u8) -> &'static str {
    // `~~x` needs the operand's own width to be inferable; an unsized
    // integer literal has none, so those sites fall back to `x ^ 0` (whose
    // sized right operand fixes the width for both sides).
    let unsized_literal = matches!(rhs, Expr::Int { width: None, .. });
    let old = std::mem::replace(rhs, Expr::Bool(false));
    let (new, rule) = match pick {
        1 => (
            Expr::binary(BinOp::BitAnd, old, Expr::uint(max_unsigned(width), width)),
            "and_all_ones",
        ),
        2 if !unsized_literal => (
            Expr::unary(UnOp::BitNot, Expr::unary(UnOp::BitNot, old)),
            "double_negation",
        ),
        3 => (
            Expr::binary(BinOp::Shl, old, Expr::uint(0, width)),
            "shift_zero",
        ),
        _ => (
            Expr::binary(BinOp::BitXor, old, Expr::uint(0, width)),
            "xor_zero",
        ),
    };
    *rhs = new;
    rule
}

impl Mutator for AlgebraicRewrite {
    fn name(&self) -> &'static str {
        "AlgebraicRewrite"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["xor_zero", "and_all_ones", "double_negation", "shift_zero"]
    }

    fn apply(&self, program: &mut Program, rng: &mut StdRng) -> Option<&'static str> {
        let env = TypeEnv::from_program(program);
        // Phase 1: candidate assignments per control, under that control's
        // scope (needed to size the identity literals).
        let mut controls: Vec<(String, Scope, usize)> = Vec::new();
        let mut total = 0usize;
        for control in program.controls() {
            let scope = control_scope(&env, program, control);
            let mut count = 0usize;
            for_each_statement_list(&control.apply, &mut |list| {
                count += list
                    .iter()
                    .filter(|s| assign_width(&env, &scope, s).is_some())
                    .count();
            });
            total += count;
            controls.push((control.name.clone(), scope, count));
        }
        if total == 0 {
            return None;
        }
        let target = rng.gen_range(0..total);
        let pick = rng.gen_range(0u8..4);
        // Phase 2: rewrite the target'th candidate in its control.
        let mut seen = 0usize;
        for (name, scope, count) in controls {
            if seen + count <= target {
                seen += count;
                continue;
            }
            let mut remaining = target - seen;
            let mut fired = None;
            let control = program
                .control_mut(&name)
                .expect("control name from phase 1");
            for_each_statement_list_mut(&mut control.apply, &mut |list| {
                if fired.is_some() {
                    return;
                }
                for stmt in list.iter_mut() {
                    let Some(width) = assign_width(&env, &scope, stmt) else {
                        continue;
                    };
                    if remaining > 0 {
                        remaining -= 1;
                        continue;
                    }
                    let Statement::Assign { rhs, .. } = stmt else {
                        unreachable!("assign_width only accepts assignments");
                    };
                    fired = Some(rewrite_rhs(rhs, width, pick));
                    return;
                }
            });
            return fired;
        }
        None
    }
}

// ---------------------------------------------------------------------------
// ControlFlowWrap — block introduction / unwrapping and if-true hoisting.
// ---------------------------------------------------------------------------

/// Wraps and unwraps control flow without changing it: `s` ⇄ `{ s }`,
/// `s` → `if (true) { s }`, and `if (true) { s } …` → the taken branch.
/// Declarations are never wrapped (a block would change their scope) and
/// blocks containing declarations are never spliced, so name resolution is
/// preserved exactly.
pub struct ControlFlowWrap;

fn wrappable(stmt: &Statement) -> bool {
    !matches!(
        stmt,
        Statement::Declare { .. } | Statement::Constant { .. } | Statement::Empty
    )
}

fn splicable_block(stmt: &Statement) -> bool {
    matches!(stmt, Statement::Block(block) if !block.statements.iter().any(
        |s| matches!(s, Statement::Declare { .. } | Statement::Constant { .. })
    ))
}

fn hoistable_if_true(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::If {
            cond: Expr::Bool(true),
            ..
        }
    )
}

fn cfw_predicate(rule: &str) -> fn(&Statement) -> bool {
    match rule {
        "block_unwrap" => splicable_block,
        "if_true_hoist" => hoistable_if_true,
        _ => wrappable,
    }
}

/// Index of the `ordinal`'th statement in `list` satisfying `pred`.
fn nth_matching(list: &[Statement], pred: fn(&Statement) -> bool, ordinal: usize) -> Option<usize> {
    list.iter()
        .enumerate()
        .filter(|(_, s)| pred(s))
        .nth(ordinal)
        .map(|(index, _)| index)
}

impl Mutator for ControlFlowWrap {
    fn name(&self) -> &'static str {
        "ControlFlowWrap"
    }

    fn rules(&self) -> &'static [&'static str] {
        &[
            "block_wrap",
            "if_true_wrap",
            "block_unwrap",
            "if_true_hoist",
        ]
    }

    fn apply(&self, program: &mut Program, rng: &mut StdRng) -> Option<&'static str> {
        let rules = self.rules();
        let start = rng.gen_range(0..rules.len());
        for offset in 0..rules.len() {
            let rule = rules[(start + offset) % rules.len()];
            let pred = cfw_predicate(rule);
            let count_in = move |list: &[Statement]| list.iter().filter(|s| pred(s)).count();
            let total = total_sites(program, &count_in);
            if total == 0 {
                continue;
            }
            let target = rng.gen_range(0..total);
            return apply_at_nth_site(program, target, &count_in, &mut |list, ordinal| {
                let index = nth_matching(list, pred, ordinal)?;
                match rule {
                    "block_wrap" => {
                        let old = std::mem::replace(&mut list[index], Statement::Empty);
                        list[index] = Statement::Block(Block::new(vec![old]));
                    }
                    "if_true_wrap" => {
                        let old = std::mem::replace(&mut list[index], Statement::Empty);
                        list[index] = Statement::if_then(
                            Expr::Bool(true),
                            Statement::Block(Block::new(vec![old])),
                        );
                    }
                    "block_unwrap" => {
                        let Statement::Block(block) = list.remove(index) else {
                            unreachable!("splicable_block only accepts blocks");
                        };
                        for (offset, stmt) in block.statements.into_iter().enumerate() {
                            list.insert(index + offset, stmt);
                        }
                    }
                    "if_true_hoist" => {
                        let Statement::If { then_branch, .. } =
                            std::mem::replace(&mut list[index], Statement::Empty)
                        else {
                            unreachable!("hoistable_if_true only accepts if (true)");
                        };
                        list[index] = *then_branch;
                    }
                    _ => unreachable!("rule comes from ControlFlowWrap::rules"),
                }
                Some(rule)
            });
        }
        None
    }
}

// ---------------------------------------------------------------------------
// OpaqueGuard — dead code behind an opaquely false branch.
// ---------------------------------------------------------------------------

/// Injects a branch that can never be taken, guarded by an opaque condition
/// over fresh metadata: a new zero-initialised local (`__opq<n>`) compared
/// against its known value.  The dead branch writes only that local, so no
/// live state can be disturbed even if a buggy pass *does* take it.
pub struct OpaqueGuard;

fn fresh_opaque_name(program: &Program) -> String {
    let mut highest: Option<u32> = None;
    for control in program.controls() {
        for_each_statement_list(&control.apply, &mut |list| {
            for stmt in list {
                if let Statement::Declare { name, .. } = stmt {
                    if let Some(index) = name.strip_prefix("__opq").and_then(|s| s.parse().ok()) {
                        highest = Some(highest.map_or(index, |h: u32| h.max(index)));
                    }
                }
            }
        });
    }
    format!("__opq{}", highest.map_or(0, |h| h + 1))
}

impl Mutator for OpaqueGuard {
    fn name(&self) -> &'static str {
        "OpaqueGuard"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["opaque_false_branch"]
    }

    fn apply(&self, program: &mut Program, rng: &mut StdRng) -> Option<&'static str> {
        let count_in = |list: &[Statement]| list.len() + 1;
        let total = total_sites(program, &count_in);
        if total == 0 {
            return None;
        }
        let target = rng.gen_range(0..total);
        let fresh = fresh_opaque_name(program);
        apply_at_nth_site(program, target, &count_in, &mut |list, position| {
            let guard = Statement::if_then(
                Expr::binary(BinOp::Ne, Expr::path(&fresh), Expr::uint(0, 8)),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::path(&fresh),
                    Expr::uint(1, 8),
                )])),
            );
            list.insert(position, guard);
            list.insert(
                position,
                Statement::Declare {
                    name: fresh.clone(),
                    ty: Type::bits(8),
                    init: Some(Expr::uint(0, 8)),
                },
            );
            Some("opaque_false_branch")
        })
    }
}

// ---------------------------------------------------------------------------
// ReorderIndependent — def/use-checked swap of adjacent assignments.
// ---------------------------------------------------------------------------

/// Swaps two adjacent assignments whose def/use sets are provably disjoint.
/// L-values are compared as full dotted paths with prefix overlap counted as
/// a conflict (`hdr.h` vs `hdr.h.a`), slices of a field conservatively both
/// read and write the whole field, and any call disqualifies the pair.
pub struct ReorderIndependent;

/// The full dotted path of a pure l-value chain (`hdr.h.a`); slices resolve
/// to their base field.  `None` for anything else.
fn lvalue_path(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Path(name) => Some(name.clone()),
        Expr::Member { base, member } => Some(format!("{}.{member}", lvalue_path(base)?)),
        Expr::Slice { base, .. } => lvalue_path(base),
        _ => None,
    }
}

/// Collects the paths `expr` reads.  Returns `None` when the expression
/// contains anything opaque (a call, a member of a non-path base), in which
/// case the statement must not be reordered.
fn collect_read_paths(expr: &Expr, out: &mut Vec<String>) -> Option<()> {
    match expr {
        Expr::Bool(_) | Expr::Int { .. } => Some(()),
        Expr::Path(_) | Expr::Member { .. } | Expr::Slice { .. } => {
            out.push(lvalue_path(expr)?);
            Some(())
        }
        Expr::Unary { operand, .. } => collect_read_paths(operand, out),
        Expr::Cast { expr, .. } => collect_read_paths(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_read_paths(left, out)?;
            collect_read_paths(right, out)
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            collect_read_paths(cond, out)?;
            collect_read_paths(then_expr, out)?;
            collect_read_paths(else_expr, out)
        }
        Expr::Call(_) => None,
    }
}

/// `(written path, read paths)` of a call-free assignment.
fn assign_def_use(stmt: &Statement) -> Option<(String, Vec<String>)> {
    let Statement::Assign { lhs, rhs } = stmt else {
        return None;
    };
    let def = lvalue_path(lhs)?;
    let mut uses = Vec::new();
    collect_read_paths(rhs, &mut uses)?;
    // A partial (slice) write also reads the untouched bits of its base.
    if matches!(lhs, Expr::Slice { .. }) {
        uses.push(def.clone());
    }
    Some((def, uses))
}

fn paths_conflict(a: &str, b: &str) -> bool {
    a == b || a.starts_with(&format!("{b}.")) || b.starts_with(&format!("{a}."))
}

fn independent_pair(first: &Statement, second: &Statement) -> bool {
    if first == second {
        // Swapping identical statements is a no-op, not a mutation.
        return false;
    }
    let Some((def1, uses1)) = assign_def_use(first) else {
        return false;
    };
    let Some((def2, uses2)) = assign_def_use(second) else {
        return false;
    };
    !paths_conflict(&def1, &def2)
        && !uses2.iter().any(|used| paths_conflict(&def1, used))
        && !uses1.iter().any(|used| paths_conflict(&def2, used))
}

impl Mutator for ReorderIndependent {
    fn name(&self) -> &'static str {
        "ReorderIndependent"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["swap_independent"]
    }

    fn apply(&self, program: &mut Program, rng: &mut StdRng) -> Option<&'static str> {
        let count_in = |list: &[Statement]| {
            (0..list.len().saturating_sub(1))
                .filter(|&i| independent_pair(&list[i], &list[i + 1]))
                .count()
        };
        let total = total_sites(program, &count_in);
        if total == 0 {
            return None;
        }
        let target = rng.gen_range(0..total);
        apply_at_nth_site(program, target, &count_in, &mut |list, ordinal| {
            let index = (0..list.len().saturating_sub(1))
                .filter(|&i| independent_pair(&list[i], &list[i + 1]))
                .nth(ordinal)?;
            list.swap(index, index + 1);
            Some("swap_independent")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ALL_MUTATORS;
    use p4_ir::builder;
    use rand::SeedableRng;

    fn two_assign_program() -> Program {
        builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            ]),
        )
    }

    #[test]
    fn catalogue_matches_the_registry() {
        let mutators = standard_mutators();
        assert_eq!(mutators.len(), ALL_MUTATORS.len());
        for (mutator, (name, rules)) in mutators.iter().zip(ALL_MUTATORS) {
            assert_eq!(mutator.name(), *name);
            assert_eq!(mutator.rules(), *rules);
        }
    }

    #[test]
    fn every_mutator_fires_on_a_simple_program_and_stays_well_typed() {
        for mutator in standard_mutators() {
            let mut program = two_assign_program();
            let rule = mutator
                .apply(&mut program, &mut StdRng::seed_from_u64(7))
                .unwrap_or_else(|| panic!("{} found no site", mutator.name()));
            assert!(mutator.rules().contains(&rule), "{rule}");
            assert!(
                p4_check::check_program(&program).is_empty(),
                "{} broke typing: {}",
                mutator.name(),
                p4_ir::print_program(&program)
            );
            assert_ne!(
                p4_ir::print_program(&program),
                p4_ir::print_program(&two_assign_program()),
                "{} must actually change the program",
                mutator.name()
            );
        }
    }

    #[test]
    fn opaque_guard_names_are_fresh() {
        let mut program = two_assign_program();
        for _ in 0..3 {
            OpaqueGuard
                .apply(&mut program, &mut StdRng::seed_from_u64(11))
                .expect("insertion sites always exist");
        }
        let text = p4_ir::print_program(&program);
        for index in 0..3 {
            assert!(text.contains(&format!("__opq{index}")), "{text}");
        }
    }

    #[test]
    fn reorder_respects_def_use_dependencies() {
        // b = a; a = 1;  — dependent, must never swap.
        let dependent = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::dotted(&["hdr", "h", "a"]),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
            ]),
        );
        let mut program = dependent.clone();
        assert_eq!(
            ReorderIndependent.apply(&mut program, &mut StdRng::seed_from_u64(3)),
            None
        );

        let mut independent = two_assign_program();
        assert_eq!(
            ReorderIndependent.apply(&mut independent, &mut StdRng::seed_from_u64(3)),
            Some("swap_independent")
        );
    }

    #[test]
    fn if_true_hoist_recovers_the_wrapped_statement() {
        let mut program = two_assign_program();
        ControlFlowWrap
            .apply(&mut program, &mut StdRng::seed_from_u64(1))
            .expect("wrap site exists");
        // Keep applying until a hoist/unwrap undoes some wrapping; the
        // program must remain well-typed throughout.
        for step in 0..6u64 {
            ControlFlowWrap.apply(&mut program, &mut StdRng::seed_from_u64(step));
            assert!(p4_check::check_program(&program).is_empty());
        }
    }
}
