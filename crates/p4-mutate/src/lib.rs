//! # p4-mutate — semantics-preserving program mutation for metamorphic testing
//!
//! Gauntlet's translation validation checks each compiled program against
//! *its own* source, pass by pass (paper §5).  That oracle is blind to two
//! defect shapes: a miscompilation the validator's model mis-models the same
//! way, and corruption applied to the program *before the first snapshot* is
//! taken — every adjacent snapshot pair is then self-consistent and the
//! chain validates clean.  The paper's §8 names semantics-preserving
//! transformation ("EMI-style") testing as the complementary oracle; this
//! crate supplies it as a second bug-finding dimension:
//!
//! * [`mutators`] — the [`Mutator`] trait and the catalogue of
//!   semantics-preserving program mutators: opaque-guard dead-code
//!   injection, algebraic identity rewrites, reordering of provably
//!   independent assignments, and control-flow wrapping/unwrapping;
//! * [`registry`] — the static mutator/rule registry
//!   ([`registry::ALL_MUTATORS`]) and [`MutationCoverage`] counters,
//!   mirroring `p4c::coverage`'s pass-rule registry so mutation coverage is
//!   reportable the same way pass-rewrite coverage is;
//! * [`engine`] — the deterministic, seedable [`MutationEngine`] that turns
//!   one seed program into a [`Mutant`] (program + applied-mutation chain),
//!   with chain replay for test-case reduction;
//! * [`check`] — the [`MetamorphicChecker`]: compile the seed, compile each
//!   mutant, and prove mutant ≡ seed end-to-end through one hash-consed
//!   incremental `p4_symbolic::ValidationSession`.  A divergence is a
//!   compiler bug by construction (the mutant is equivalent to the seed at
//!   the source level), de-duplicated by mutator chain + diverging field.
//!
//! Every mutator preserves well-typedness, printer→parser round-trips, and
//! byte-determinism per seed; the property suite in
//! `tests/prop_mutators.rs` enforces all three plus chain-equivalence
//! against the reference interpreter.

pub mod check;
pub mod engine;
pub mod mutators;
pub mod registry;

pub use check::{
    divergence_headline, ChainOutcome, MetamorphicChecker, MetamorphicFinding,
    MetamorphicFindingKind, MetamorphicOptions, MetamorphicOutcome, CAMPAIGN_MUTATION_SEED,
};
pub use engine::{chain_key, hunt_mutation_seed, AppliedMutation, Mutant, MutationEngine};
pub use mutators::{standard_mutators, Mutator};
pub use registry::{all_rule_keys, rule_key, total_rules, MutationCoverage, ALL_MUTATORS};
