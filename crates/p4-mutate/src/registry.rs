//! The static mutator/rule registry and mutation-coverage counters.
//!
//! Mirrors `p4c::coverage`: every semantics-preserving rewrite a mutator can
//! perform is registered here as a `"mutator/rule"` key, [`MutationCoverage`]
//! counts firings, and campaigns report "mutator rules fired / total" next
//! to the pass-rewrite coverage block.  [`crate::standard_mutators`] is
//! pinned against this table by a unit test so the two cannot drift apart.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Every registered mutation rule, grouped by mutator.  The campaign layer
/// treats this as the mutation-coverage universe.
pub const ALL_MUTATORS: &[(&str, &[&str])] = &[
    (
        "AlgebraicRewrite",
        &["xor_zero", "and_all_ones", "double_negation", "shift_zero"],
    ),
    (
        "ControlFlowWrap",
        &[
            "block_wrap",
            "if_true_wrap",
            "block_unwrap",
            "if_true_hoist",
        ],
    ),
    ("OpaqueGuard", &["opaque_false_branch"]),
    ("ReorderIndependent", &["swap_independent"]),
];

/// Number of rules in the static registry (the denominator of
/// "mutator rules fired / total").
pub fn total_rules() -> usize {
    ALL_MUTATORS.iter().map(|(_, rules)| rules.len()).sum()
}

/// The canonical flat key of a rule: `"mutator/rule"`.
pub fn rule_key(mutator: &str, rule: &str) -> String {
    format!("{mutator}/{rule}")
}

/// All registered rule keys, sorted.
pub fn all_rule_keys() -> Vec<String> {
    let mut keys: Vec<String> = ALL_MUTATORS
        .iter()
        .flat_map(|(mutator, rules)| rules.iter().map(|rule| rule_key(mutator, rule)))
        .collect();
    keys.sort();
    keys
}

/// Applied-mutation counters: `"mutator/rule"` → number of applications.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationCoverage {
    counts: BTreeMap<String, u64>,
}

impl MutationCoverage {
    pub fn new() -> MutationCoverage {
        MutationCoverage::default()
    }

    /// Increments the counter for one rule application.
    pub fn record(&mut self, mutator: &str, rule: &str) {
        debug_assert!(
            ALL_MUTATORS
                .iter()
                .any(|(m, rules)| *m == mutator && rules.contains(&rule)),
            "unregistered mutation rule {mutator}/{rule}; add it to registry::ALL_MUTATORS"
        );
        *self.counts.entry(rule_key(mutator, rule)).or_insert(0) += 1;
    }

    /// Adds every counter of `other` into `self` (commutative, so campaigns
    /// may merge per-seed maps in any order).
    pub fn merge(&mut self, other: &MutationCoverage) {
        for (key, count) in &other.counts {
            *self.counts.entry(key.clone()).or_insert(0) += count;
        }
    }

    /// Number of distinct rules applied at least once.
    pub fn distinct_rules(&self) -> usize {
        self.counts.len()
    }

    /// Application count of one rule key (`"mutator/rule"`).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Whether the given rule key has been applied.
    pub fn fired(&self, key: &str) -> bool {
        self.counts.contains_key(key)
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The sorted applied-rule keys.
    pub fn fired_keys(&self) -> Vec<String> {
        self.counts.keys().cloned().collect()
    }

    /// Registered rules never applied, in sorted key order.
    pub fn unfired_keys(&self) -> Vec<String> {
        all_rule_keys()
            .into_iter()
            .filter(|key| !self.fired(key))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent_and_keyed() {
        assert_eq!(total_rules(), all_rule_keys().len());
        assert!(total_rules() >= 10);
        assert!(all_rule_keys().contains(&"OpaqueGuard/opaque_false_branch".to_string()));
    }

    #[test]
    fn coverage_counts_and_merges_commutatively() {
        let mut a = MutationCoverage::new();
        a.record("AlgebraicRewrite", "xor_zero");
        a.record("AlgebraicRewrite", "xor_zero");
        let mut b = MutationCoverage::new();
        b.record("OpaqueGuard", "opaque_false_branch");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count("AlgebraicRewrite/xor_zero"), 2);
        assert_eq!(ab.distinct_rules(), 2);
        assert_eq!(ab.unfired_keys().len(), total_rules() - 2);
    }
}
