//! The metamorphic checker: prove mutant ≡ seed *end-to-end*.
//!
//! Translation validation compares consecutive pass snapshots of one
//! compile.  The metamorphic oracle instead compares the **fully compiled**
//! forms of two source-equivalent programs: the seed and one of its
//! semantics-preserving mutants.  Because mutant ≡ seed holds at the source
//! level by construction, `compile(mutant) ≢ compile(seed)` convicts the
//! compiler — including defect shapes per-pass validation provably cannot
//! see, such as corruption applied before the first snapshot is taken
//! (every snapshot pair is then self-consistent) or a miscompilation the
//! validator's model mis-models identically on both sides of one pass.
//!
//! Equivalence of the two compiled programs is decided by the same
//! hash-consed incremental [`ValidationSession`] translation validation
//! uses, so mutants whose optimised form collapses back onto the seed's
//! (the common case on a correct compiler) are discharged without touching
//! the solver.

use crate::engine::{chain_key, AppliedMutation, MutationEngine};
use crate::registry::MutationCoverage;
use p4_ir::Program;
use p4_symbolic::{Equivalence, EquivalenceError, ValidationSession};
use p4c::{CompileError, Compiler};
use serde::{Deserialize, Serialize};

/// The fixed mutation-stream seed used where no per-seed stream exists: the
/// seeded-bug table campaign and its reduction oracles (`SeededBug::detect`
/// and `SeededBug::oracle` must derive identical mutant families or their
/// dedup keys would never match).
pub const CAMPAIGN_MUTATION_SEED: u64 = 0x4D55_5441_5445;

/// Options of a metamorphic check (the `--mutate` knobs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetamorphicOptions {
    /// Mutants generated and checked per seed program
    /// (`--mutations-per-seed`).
    pub mutants_per_seed: usize,
    /// Maximum mutation-chain length per mutant.
    pub max_chain: usize,
}

impl Default for MetamorphicOptions {
    fn default() -> Self {
        MetamorphicOptions {
            mutants_per_seed: 3,
            max_chain: 4,
        }
    }
}

/// How one mutant family member related to its seed.
#[derive(Debug, Clone)]
pub enum ChainOutcome {
    /// The mutant's compiled form is provably equivalent to the seed's.
    Equivalent,
    /// The compiled forms differ: a miscompilation, by the metamorphic
    /// argument.  `detail` is the solver's counterexample rendering.
    Divergence { field: String, detail: String },
    /// The compiler crashed on the mutant (but not on the seed).
    Crash { pass: String, message: String },
    /// The compiler rejected the well-typed mutant.
    Rejected { pass: String, message: String },
    /// The pair could not be compared (unsupported construct or structure
    /// mismatch) — skipped, as the pipeline does for its own oracle gaps
    /// (paper §8).
    Skipped,
}

/// What kind of defect a [`MetamorphicFinding`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetamorphicFindingKind {
    /// compile(mutant) ≢ compile(seed).
    Divergence,
    /// The compiler crashed on a mutant.
    Crash,
    /// The compiler rejected a well-typed mutant.
    Rejection,
}

/// One metamorphic finding.
#[derive(Debug, Clone)]
pub struct MetamorphicFinding {
    pub kind: MetamorphicFindingKind,
    /// The pass a crash/rejection is attributed to (`None` for divergences:
    /// the end-to-end oracle cannot localise a pass — the price of seeing
    /// what per-pass validation cannot).
    pub pass: Option<String>,
    /// The applied-mutation chain that produced the offending mutant
    /// (minimised ddmin-style by `p4-reduce` before reporting).
    pub chain: Vec<AppliedMutation>,
    /// The first diverging output field (divergences only).
    pub field: Option<String>,
    /// Full message body: counterexample rendering or crash message.
    pub detail: String,
}

impl MetamorphicFinding {
    /// The chain's dedup identity (mutator names in application order).
    pub fn chain_key(&self) -> String {
        chain_key(&self.chain)
    }

    /// The finding's first message line — the de-duplication anchor shared
    /// by `gauntlet-core`'s `BugReport::dedup_key` and `p4-reduce`'s oracle
    /// signatures.  Divergences are keyed by mutator chain + diverging
    /// field; crashes and rejections keep the compiler's own first line so
    /// they collapse with the same defect found by plain crash detection.
    pub fn headline(&self) -> String {
        match self.kind {
            MetamorphicFindingKind::Divergence => {
                divergence_headline(&self.chain_key(), self.field.as_deref().unwrap_or("?"))
            }
            _ => self.detail.lines().next().unwrap_or("").to_string(),
        }
    }
}

/// The canonical first line of a divergence finding.
pub fn divergence_headline(chain: &str, field: &str) -> String {
    format!("mutation chain `{chain}` diverges on `{field}`")
}

/// Everything one seed program's mutant family produced.
#[derive(Debug, Clone, Default)]
pub struct MetamorphicOutcome {
    pub findings: Vec<MetamorphicFinding>,
    /// Which mutation rules were applied while building the family.
    pub coverage: MutationCoverage,
    /// Mutants that actually mutated (empty chains are not counted).
    pub mutants_checked: usize,
}

/// The metamorphic checker: owns the compiler under test, the mutation
/// engine, and one incremental validation session shared across every
/// mutant (and, when held by a campaign worker, across every seed).
pub struct MetamorphicChecker {
    compiler: Compiler,
    session: ValidationSession,
    engine: MutationEngine,
}

impl MetamorphicChecker {
    pub fn new(compiler: Compiler) -> MetamorphicChecker {
        MetamorphicChecker {
            compiler,
            session: ValidationSession::new(),
            engine: MutationEngine::standard(),
        }
    }

    /// A checker whose validation session attaches to a shared epoch cache:
    /// campaign workers hand every checker (and every translation-validation
    /// session) of one epoch the same [`p4_symbolic::EpochCache`], so a
    /// mutant family whose compiled forms another worker already interpreted
    /// or decided is discharged from the memo.
    pub fn with_cache(
        compiler: Compiler,
        cache: std::sync::Arc<p4_symbolic::EpochCache>,
    ) -> MetamorphicChecker {
        MetamorphicChecker {
            compiler,
            session: ValidationSession::with_cache(cache),
            engine: MutationEngine::standard(),
        }
    }

    /// Enables portfolio solving on the checker's session (see
    /// [`ValidationSession::set_portfolio`]).
    pub fn set_portfolio(&mut self, options: smt::PortfolioOptions) {
        self.session.set_portfolio(options);
    }

    /// How many of the checker's queries escalated to a portfolio race.
    pub fn portfolio_races(&self) -> u64 {
        self.session.portfolio_races()
    }

    pub fn engine(&self) -> &MutationEngine {
        &self.engine
    }

    /// Usage counters of the shared validation session.
    pub fn session_stats(&self) -> p4_symbolic::SessionStats {
        self.session.stats()
    }

    /// Checks `options.mutants_per_seed` mutants of `program` against it.
    /// A seed program the compiler does not accept yields an empty outcome
    /// — the open-compiler pipeline owns that finding.
    pub fn check(
        &mut self,
        program: &Program,
        options: &MetamorphicOptions,
        seed: u64,
    ) -> MetamorphicOutcome {
        let Some(seed_final) = self.compile_seed(program) else {
            return MetamorphicOutcome::default();
        };
        self.check_against(&seed_final, program, options, seed)
    }

    /// [`MetamorphicChecker::check`] with the seed's compiled form supplied
    /// by the caller — campaign workers already compiled the seed for the
    /// open-compiler check, so handing it over avoids a second full
    /// pipeline run per hunted program.
    pub fn check_against(
        &mut self,
        seed_final: &Program,
        program: &Program,
        options: &MetamorphicOptions,
        seed: u64,
    ) -> MetamorphicOutcome {
        let _telemetry = gauntlet_telemetry::Span::begin(gauntlet_telemetry::Stage::Mutate);
        let mut outcome = MetamorphicOutcome::default();
        for index in 0..options.mutants_per_seed {
            let mutant = self.engine.mutate(
                program,
                MutationEngine::mutant_seed(seed, index),
                options.max_chain,
            );
            if mutant.chain.is_empty() {
                continue;
            }
            outcome.mutants_checked += 1;
            for step in &mutant.chain {
                outcome.coverage.record(&step.mutator, &step.rule);
            }
            match self.compare(seed_final, &mutant.program) {
                ChainOutcome::Equivalent | ChainOutcome::Skipped => {}
                ChainOutcome::Divergence { field, detail } => {
                    outcome.findings.push(MetamorphicFinding {
                        kind: MetamorphicFindingKind::Divergence,
                        pass: None,
                        chain: mutant.chain.clone(),
                        field: Some(field),
                        detail,
                    });
                }
                ChainOutcome::Crash { pass, message } => {
                    outcome.findings.push(MetamorphicFinding {
                        kind: MetamorphicFindingKind::Crash,
                        pass: Some(pass),
                        chain: mutant.chain.clone(),
                        field: None,
                        detail: message,
                    });
                }
                ChainOutcome::Rejected { pass, message } => {
                    outcome.findings.push(MetamorphicFinding {
                        kind: MetamorphicFindingKind::Rejection,
                        pass: Some(pass),
                        chain: mutant.chain.clone(),
                        field: None,
                        detail: message,
                    });
                }
            }
        }
        outcome
    }

    /// The fully compiled form of a seed program, or `None` when the
    /// compiler does not accept it.  Chain-minimisation loops compile the
    /// (invariant) seed once through this and probe with
    /// [`MetamorphicChecker::check_chain_against`].
    pub fn compile_seed(&self, program: &Program) -> Option<Program> {
        self.compiler.compile(program).ok().map(|r| r.program)
    }

    /// Re-checks one recorded chain against `program`.
    pub fn check_chain(&mut self, program: &Program, steps: &[AppliedMutation]) -> ChainOutcome {
        let Some(seed_final) = self.compile_seed(program) else {
            return ChainOutcome::Skipped;
        };
        self.check_chain_against(&seed_final, program, steps)
    }

    /// [`MetamorphicChecker::check_chain`] with the seed's compiled form
    /// supplied by the caller — the per-probe cost is then one mutant
    /// compile instead of two full pipelines.
    pub fn check_chain_against(
        &mut self,
        seed_final: &Program,
        program: &Program,
        steps: &[AppliedMutation],
    ) -> ChainOutcome {
        let mutant = self.engine.apply_chain(program, steps);
        self.compare(seed_final, &mutant)
    }

    /// Compiles the mutant and decides `seed_final ≡ mutant_final`.
    fn compare(&mut self, seed_final: &Program, mutant: &Program) -> ChainOutcome {
        let mutant_final = match self.compiler.compile(mutant) {
            Ok(result) => result.program,
            Err(CompileError::Crash { pass, message, .. }) => {
                return ChainOutcome::Crash { pass, message };
            }
            Err(CompileError::Rejected { pass, diagnostics }) => {
                return ChainOutcome::Rejected {
                    pass,
                    message: diagnostics.join("; "),
                };
            }
        };
        match self.session.check_pair(seed_final, &mutant_final) {
            Ok(Equivalence::Equal) => ChainOutcome::Equivalent,
            Ok(Equivalence::NotEqual(counterexample)) => ChainOutcome::Divergence {
                field: counterexample.primary_field().unwrap_or("?").to_string(),
                detail: format!("{counterexample}"),
            },
            Err(EquivalenceError::StructureMismatch { .. } | EquivalenceError::Interpreter(_)) => {
                ChainOutcome::Skipped
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::{builder, Block, Expr, Statement};

    fn seed_program() -> Program {
        builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            ]),
        )
    }

    #[test]
    fn reference_compiler_is_metamorphically_clean() {
        let mut checker = MetamorphicChecker::new(Compiler::reference());
        let outcome = checker.check(&seed_program(), &MetamorphicOptions::default(), 0xABCD);
        assert!(
            outcome.findings.is_empty(),
            "false alarm: {:#?}",
            outcome.findings
        );
        assert!(outcome.mutants_checked > 0);
        assert!(!outcome.coverage.is_empty());
    }

    #[test]
    fn empty_chain_on_the_same_program_is_equivalent() {
        let mut checker = MetamorphicChecker::new(Compiler::reference());
        assert!(matches!(
            checker.check_chain(&seed_program(), &[]),
            ChainOutcome::Equivalent
        ));
    }

    #[test]
    fn divergence_headline_is_stable() {
        assert_eq!(
            divergence_headline("OpaqueGuard>AlgebraicRewrite", "hdr.h.a"),
            "mutation chain `OpaqueGuard>AlgebraicRewrite` diverges on `hdr.h.a`"
        );
    }
}
