//! The deterministic, seedable mutation engine.
//!
//! [`MutationEngine::mutate`] turns one seed program into a [`Mutant`]: the
//! mutated program plus the chain of applied mutations.  Everything derives
//! from the engine seed alone — mutator choice, site choice, and rule choice
//! all come from per-step SplitMix streams — so the same `(program, seed)`
//! pair yields a byte-identical mutant on every run and on every worker
//! thread, which is what lets the campaign engine fold mutation hunting
//! into its ordered-commit determinism contract.
//!
//! Each recorded [`AppliedMutation`] carries the per-step seed, so a chain
//! can be *replayed* ([`MutationEngine::apply_chain`]) — on the original
//! program (reproducing the mutant exactly) or on a shrunk candidate during
//! test-case reduction, where steps that no longer find a site are skipped
//! but keep their label, keeping the chain's dedup key stable.

use crate::mutators::{standard_mutators, Mutator};
use p4_ir::Program;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// One applied mutation: which mutator, which of its rules fired, and the
/// per-step RNG seed that makes the step replayable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedMutation {
    pub mutator: String,
    pub rule: String,
    pub step_seed: u64,
}

/// A mutated program together with the chain that produced it.
#[derive(Debug, Clone)]
pub struct Mutant {
    pub program: Program,
    pub chain: Vec<AppliedMutation>,
}

impl Mutant {
    /// The chain's identity for de-duplication: mutator names in application
    /// order.  Rules are deliberately excluded — a replay on a reduced
    /// program may pick a different rule at a shifted site, and the dedup
    /// key must survive that.
    pub fn chain_key(&self) -> String {
        chain_key(&self.chain)
    }
}

/// Formats a chain's dedup identity (see [`Mutant::chain_key`]).
pub fn chain_key(steps: &[AppliedMutation]) -> String {
    steps
        .iter()
        .map(|step| step.mutator.as_str())
        .collect::<Vec<_>>()
        .join(">")
}

/// Derives the stream seed used by a hunt for the mutants of one campaign
/// seed (exposed so reduction oracles can re-derive the exact mutant family
/// a worker checked).
pub fn hunt_mutation_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x4D55_5441_5445
}

/// The mutation engine: a mutator catalogue plus deterministic application.
pub struct MutationEngine {
    mutators: Vec<Box<dyn Mutator>>,
}

impl Default for MutationEngine {
    fn default() -> Self {
        MutationEngine::standard()
    }
}

impl MutationEngine {
    /// An engine over the full registered catalogue.
    pub fn standard() -> MutationEngine {
        MutationEngine {
            mutators: standard_mutators(),
        }
    }

    /// An engine over an explicit catalogue (tests, focused campaigns).
    pub fn with_mutators(mutators: Vec<Box<dyn Mutator>>) -> MutationEngine {
        assert!(!mutators.is_empty(), "engine needs at least one mutator");
        MutationEngine { mutators }
    }

    pub fn mutators(&self) -> &[Box<dyn Mutator>] {
        &self.mutators
    }

    /// Derives mutant `index`'s engine seed from a campaign seed: each of a
    /// seed's mutants gets its own independent stream.
    pub fn mutant_seed(seed: u64, index: usize) -> u64 {
        seed ^ (index as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)
    }

    /// Produces one mutant by applying up to `max_chain` mutations.  Steps
    /// whose chosen mutator finds no site are skipped (the chain records
    /// only mutations that actually applied); a program with no candidate
    /// sites at all yields an empty chain and an unchanged program.
    pub fn mutate(&self, seed_program: &Program, engine_seed: u64, max_chain: usize) -> Mutant {
        let mut rng = StdRng::seed_from_u64(engine_seed);
        let mut program = seed_program.clone();
        let mut chain = Vec::new();
        for _ in 0..max_chain {
            let step_seed = rng.next_u64();
            if let Some(applied) = self.apply_step(&mut program, step_seed) {
                chain.push(applied);
            }
        }
        Mutant { program, chain }
    }

    /// One mutation step: rotate through the catalogue from an RNG-chosen
    /// start until a mutator fires.
    fn apply_step(&self, program: &mut Program, step_seed: u64) -> Option<AppliedMutation> {
        let mut rng = StdRng::seed_from_u64(step_seed);
        let start = rng.gen_range(0..self.mutators.len());
        for offset in 0..self.mutators.len() {
            let index = (start + offset) % self.mutators.len();
            if let Some(applied) = self.apply_indexed(program, index, step_seed) {
                return Some(applied);
            }
        }
        None
    }

    /// Applies mutator `index` with its per-step RNG stream.  The result is
    /// gated through the fast typecheck — a mutator violating its
    /// well-typedness contract on an exotic input (hand-written trigger,
    /// corpus entry) discards its rewrite instead of poisoning the mutant.
    fn apply_indexed(
        &self,
        program: &mut Program,
        index: usize,
        step_seed: u64,
    ) -> Option<AppliedMutation> {
        let mutator = &self.mutators[index];
        let mut candidate = program.clone();
        let mut rng = StdRng::seed_from_u64(step_rng_seed(step_seed, index));
        let rule = mutator.apply(&mut candidate, &mut rng)?;
        if !p4_check::program_well_typed(&candidate) {
            return None;
        }
        *program = candidate;
        Some(AppliedMutation {
            mutator: mutator.name().to_string(),
            rule: rule.to_string(),
            step_seed,
        })
    }

    /// Replays a recorded chain on (a possibly different version of) the
    /// seed program.  Each step re-applies its *recorded* mutator with its
    /// recorded per-step seed — no catalogue rotation — so replaying on the
    /// unchanged program reproduces the mutant exactly, and replaying on a
    /// reduced program degrades gracefully: steps whose mutator no longer
    /// finds a site are skipped.
    pub fn apply_chain(&self, seed_program: &Program, steps: &[AppliedMutation]) -> Program {
        let mut program = seed_program.clone();
        for step in steps {
            let Some(index) = self.mutators.iter().position(|m| m.name() == step.mutator) else {
                continue;
            };
            let _ = self.apply_indexed(&mut program, index, step.step_seed);
        }
        program
    }
}

/// The RNG stream of one (step, mutator) pair — shared by first application
/// and replay, which is what makes chains replayable.
fn step_rng_seed(step_seed: u64, mutator_index: usize) -> u64 {
    step_seed ^ (mutator_index as u64 + 1).wrapping_mul(0xBF58476D1CE4E5B9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::{builder, print_program, Block, Expr, Statement};

    fn seed_program() -> Program {
        builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(3, 8)),
            ]),
        )
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let engine = MutationEngine::standard();
        let program = seed_program();
        let a = engine.mutate(&program, 42, 4);
        let b = engine.mutate(&program, 42, 4);
        assert_eq!(print_program(&a.program), print_program(&b.program));
        assert_eq!(a.chain, b.chain);
        assert!(
            !a.chain.is_empty(),
            "three assignments offer plenty of sites"
        );
        let c = engine.mutate(&program, 43, 4);
        assert_ne!(
            print_program(&a.program),
            print_program(&c.program),
            "different seeds should diverge on this program"
        );
    }

    #[test]
    fn chain_replay_reproduces_the_mutant() {
        let engine = MutationEngine::standard();
        let program = seed_program();
        let mutant = engine.mutate(&program, 7, 6);
        let replayed = engine.apply_chain(&program, &mutant.chain);
        assert_eq!(print_program(&mutant.program), print_program(&replayed));
    }

    #[test]
    fn chain_key_joins_mutator_names() {
        let steps = vec![
            AppliedMutation {
                mutator: "OpaqueGuard".into(),
                rule: "opaque_false_branch".into(),
                step_seed: 1,
            },
            AppliedMutation {
                mutator: "AlgebraicRewrite".into(),
                rule: "xor_zero".into(),
                step_seed: 2,
            },
        ];
        assert_eq!(chain_key(&steps), "OpaqueGuard>AlgebraicRewrite");
        assert_eq!(chain_key(&[]), "");
    }

    #[test]
    fn mutants_stay_well_typed() {
        let engine = MutationEngine::standard();
        let program = seed_program();
        for seed in 0..16u64 {
            let mutant = engine.mutate(&program, seed, 8);
            assert!(
                p4_check::check_program(&mutant.program).is_empty(),
                "seed {seed}: {}",
                print_program(&mutant.program)
            );
        }
    }
}
