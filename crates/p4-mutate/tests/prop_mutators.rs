//! Property tests for the mutator catalogue — the contract that makes the
//! metamorphic oracle sound: for *any* generated seed program,
//!
//! * every registered mutator preserves well-typedness
//!   (`p4_check::program_well_typed`),
//! * mutants survive a printer→parser round trip unchanged,
//! * mutation is byte-deterministic for a fixed seed, and
//! * a random chain of ≤ 8 mutations still validates ≡ against the
//!   unmutated seed on the reference interpreter (so a compiled divergence
//!   can only ever be the compiler's fault).

use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_ir::print_program;
use p4_mutate::{standard_mutators, MutationEngine};
use p4_parser::parse_program;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn generated_program(seed: u64) -> p4_ir::Program {
    RandomProgramGenerator::new(GeneratorConfig::tiny(), seed).generate()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Each mutator, applied alone to an arbitrary generated program, keeps
    /// it well-typed and printable, round-trips through the parser, and is
    /// byte-deterministic per RNG seed.
    #[test]
    fn every_mutator_preserves_typing_roundtrip_and_determinism(seed in any::<u64>()) {
        let program = generated_program(seed);
        for (index, mutator) in standard_mutators().iter().enumerate() {
            let rng_seed = seed.wrapping_add(index as u64);
            let mut first = program.clone();
            let mut second = program.clone();
            let rule_first = mutator.apply(&mut first, &mut StdRng::seed_from_u64(rng_seed));
            let rule_second = mutator.apply(&mut second, &mut StdRng::seed_from_u64(rng_seed));

            // Byte determinism: identical rule and identical program text.
            prop_assert_eq!(rule_first, rule_second, "{} not deterministic", mutator.name());
            prop_assert_eq!(
                print_program(&first),
                print_program(&second),
                "{} produced different mutants for one seed",
                mutator.name()
            );

            let Some(rule) = rule_first else { continue };
            prop_assert!(
                mutator.rules().contains(&rule),
                "{} fired unregistered rule {rule}",
                mutator.name()
            );

            // Well-typedness is preserved.
            let errors = p4_check::check_program(&first);
            prop_assert!(
                errors.is_empty(),
                "{} broke typing (seed {seed}): {errors:#?}\n{}",
                mutator.name(),
                print_program(&first)
            );

            // Printer → parser round trip is lossless.
            let printed = print_program(&first);
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("{} mutant does not parse: {e}\n{printed}", mutator.name()));
            prop_assert_eq!(
                print_program(&reparsed),
                printed,
                "{} mutant does not round-trip",
                mutator.name()
            );
        }
    }

    /// Chains are deterministic and chain replay reproduces the mutant.
    #[test]
    fn chains_are_deterministic_and_replayable(seed in any::<u64>()) {
        let program = generated_program(seed ^ 0x5EED);
        let engine = MutationEngine::standard();
        let first = engine.mutate(&program, seed, 6);
        let second = engine.mutate(&program, seed, 6);
        prop_assert_eq!(&first.chain, &second.chain);
        prop_assert_eq!(
            print_program(&first.program),
            print_program(&second.program)
        );
        let replayed = engine.apply_chain(&program, &first.chain);
        prop_assert_eq!(
            print_program(&replayed),
            print_program(&first.program),
            "chain replay must reproduce the mutant"
        );
    }
}

proptest! {
    // Equivalence checks run the solver, so fewer cases carry this one.
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The cross-mutator contract: a random chain of up to 8 mutations is
    /// still provably equivalent to the unmutated seed on the reference
    /// interpreter (programs the interpreter cannot model are skipped, as
    /// the pipeline does).
    #[test]
    fn random_chains_validate_against_the_unmutated_seed(seed in any::<u64>()) {
        let program = generated_program(seed ^ 0xC0DE);
        let engine = MutationEngine::standard();
        let mutant = engine.mutate(&program, seed, 8);
        prop_assert!(
            p4_check::check_program(&mutant.program).is_empty(),
            "chain broke typing: {}",
            print_program(&mutant.program)
        );
        // Programs the interpreter cannot model are skipped (Err), as the
        // pipeline does.
        if let Ok(verdict) = p4_symbolic::check_equivalence(&program, &mutant.program) {
            prop_assert!(
                verdict.is_equal(),
                "chain `{}` changed semantics (seed {seed}):\nseed program:\n{}\nmutant:\n{}",
                mutant.chain_key(),
                print_program(&program),
                print_program(&mutant.program)
            );
        }
    }
}
