//! The reduction pass catalogue.
//!
//! Each [`ReductionPass`] proposes structurally smaller candidate programs
//! and keeps a candidate whenever the driver's `check` callback accepts it
//! (the callback typechecks the candidate and asks the bug oracle whether
//! the original finding still reproduces).  Passes are pure functions of
//! their input program and the sequence of `check` verdicts, which keeps the
//! whole reducer deterministic.

use crate::ddmin::ddmin;
use p4_ir::visit::{walk_statement, Visitor};
use p4_ir::{BinOp, Block, Declaration, Expr, Program, Statement, Transition, Type, UnOp};

/// The candidate-acceptance callback handed to every pass: returns true when
/// the candidate typechecks and still reproduces the target bug.
pub type Check<'a> = dyn FnMut(&Program) -> bool + 'a;

/// One reduction strategy over the program AST.
pub trait ReductionPass {
    /// Stable name used in stats and debug output.
    fn name(&self) -> &'static str;

    /// Tries to shrink `program`, consulting `check` for every candidate.
    /// Returns the reduced program if any candidate was accepted.
    fn reduce(&self, program: &Program, check: &mut Check) -> Option<Program>;
}

/// Counts executable statements across every block of the program (control
/// bodies, actions, functions, parser states, nested blocks).  This is the
/// size metric reduction reports use — AST node counts over-weight wide
/// expressions.
pub fn statement_count(program: &Program) -> usize {
    struct Counter {
        count: usize,
    }
    impl Visitor for Counter {
        fn visit_statement(&mut self, stmt: &Statement) {
            self.count += 1;
            walk_statement(self, stmt);
        }
    }
    let mut counter = Counter { count: 0 };
    counter.visit_program(program);
    counter.count
}

// ---------------------------------------------------------------------------
// Pass 1: ddmin over the top-level declaration list.
// ---------------------------------------------------------------------------

/// Delta-debugs the top-level declaration list: unused headers, constants,
/// actions, functions and tables disappear wholesale.  Declarations the
/// package instantiation or any surviving code still references are
/// protected implicitly — removing them produces an ill-typed candidate,
/// which the `check` callback rejects before the oracle ever runs.
pub struct DeclarationDdmin;

impl ReductionPass for DeclarationDdmin {
    fn name(&self) -> &'static str {
        "decl-ddmin"
    }

    fn reduce(&self, program: &Program, check: &mut Check) -> Option<Program> {
        let reduced = ddmin(&program.declarations, &mut |subset| {
            if subset.len() == program.declarations.len() {
                return false;
            }
            let mut candidate = program.clone();
            candidate.declarations = subset.to_vec();
            check(&candidate)
        });
        if reduced.len() < program.declarations.len() {
            let mut result = program.clone();
            result.declarations = reduced;
            Some(result)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Statement-list plumbing shared by the statement passes.
// ---------------------------------------------------------------------------

/// Applies `f` to every statement list in the program (control `apply`
/// blocks, action/function bodies — top-level and control-local — parser
/// state bodies, and nested blocks and `if` arms), in a fixed deterministic
/// order.
fn for_each_stmt_list(program: &mut Program, f: &mut dyn FnMut(&mut Vec<Statement>)) {
    fn in_stmt(stmt: &mut Statement, f: &mut dyn FnMut(&mut Vec<Statement>)) {
        match stmt {
            Statement::Block(block) => in_block(block, f),
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                in_stmt(then_branch, f);
                if let Some(else_stmt) = else_branch {
                    in_stmt(else_stmt, f);
                }
            }
            _ => {}
        }
    }
    fn in_block(block: &mut Block, f: &mut dyn FnMut(&mut Vec<Statement>)) {
        f(&mut block.statements);
        for stmt in &mut block.statements {
            in_stmt(stmt, f);
        }
    }
    fn in_decl(decl: &mut Declaration, f: &mut dyn FnMut(&mut Vec<Statement>)) {
        match decl {
            Declaration::Action(a) => in_block(&mut a.body, f),
            Declaration::Function(func) => in_block(&mut func.body, f),
            Declaration::Control(c) => {
                for local in &mut c.locals {
                    in_decl(local, f);
                }
                in_block(&mut c.apply, f);
            }
            Declaration::Parser(p) => {
                for state in &mut p.states {
                    f(&mut state.statements);
                    for stmt in &mut state.statements {
                        in_stmt(stmt, f);
                    }
                }
            }
            _ => {}
        }
    }
    for decl in &mut program.declarations {
        in_decl(decl, f);
    }
}

/// Read-only twin of [`for_each_stmt_list`]: same sites, same order,
/// without requiring a mutable (or cloned) program.  The two must stay in
/// lock-step; `stmt_list_traversals_agree` pins them together.
fn for_each_stmt_list_ref(program: &Program, f: &mut dyn FnMut(&[Statement])) {
    fn in_stmt(stmt: &Statement, f: &mut dyn FnMut(&[Statement])) {
        match stmt {
            Statement::Block(block) => in_block(block, f),
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                in_stmt(then_branch, f);
                if let Some(else_stmt) = else_branch {
                    in_stmt(else_stmt, f);
                }
            }
            _ => {}
        }
    }
    fn in_block(block: &Block, f: &mut dyn FnMut(&[Statement])) {
        f(&block.statements);
        for stmt in &block.statements {
            in_stmt(stmt, f);
        }
    }
    fn in_decl(decl: &Declaration, f: &mut dyn FnMut(&[Statement])) {
        match decl {
            Declaration::Action(a) => in_block(&a.body, f),
            Declaration::Function(func) => in_block(&func.body, f),
            Declaration::Control(c) => {
                for local in &c.locals {
                    in_decl(local, f);
                }
                in_block(&c.apply, f);
            }
            Declaration::Parser(p) => {
                for state in &p.states {
                    f(&state.statements);
                    for stmt in &state.statements {
                        in_stmt(stmt, f);
                    }
                }
            }
            _ => {}
        }
    }
    for decl in &program.declarations {
        in_decl(decl, f);
    }
}

/// Number of statement-list sites in the program.
fn stmt_list_count(program: &Program) -> usize {
    let mut count = 0usize;
    for_each_stmt_list_ref(program, &mut |_| count += 1);
    count
}

/// A copy of `program` with statement-list site `site` replaced by `list`.
fn with_stmt_list(program: &Program, site: usize, list: &[Statement]) -> Program {
    let mut candidate = program.clone();
    let mut index = 0usize;
    for_each_stmt_list(&mut candidate, &mut |statements| {
        if index == site {
            *statements = list.to_vec();
        }
        index += 1;
    });
    candidate
}

/// The statement list at site `site`.
fn stmt_list_at(program: &Program, site: usize) -> Vec<Statement> {
    let mut index = 0usize;
    let mut result = Vec::new();
    for_each_stmt_list_ref(program, &mut |statements| {
        if index == site {
            result = statements.to_vec();
        }
        index += 1;
    });
    result
}

// ---------------------------------------------------------------------------
// Pass 2: ddmin inside every statement list.
// ---------------------------------------------------------------------------

/// Delta-debugs every statement list in the program, outermost first.  This
/// is where most of the shrinking happens: of the hundreds of statements in
/// a random program, typically only a handful interact with the defective
/// code path.  Def-use chains are respected for free — deleting the
/// declaration of a still-used variable fails `p4_check` re-typechecking,
/// so the candidate never reaches the oracle.
pub struct StatementDdmin;

impl ReductionPass for StatementDdmin {
    fn name(&self) -> &'static str {
        "stmt-ddmin"
    }

    fn reduce(&self, program: &Program, check: &mut Check) -> Option<Program> {
        let mut current = program.clone();
        let mut progressed = false;
        let mut site = 0usize;
        // The site count shrinks as nested blocks get deleted; re-evaluate
        // every iteration and simply stop at the (possibly reduced) end.
        while site < stmt_list_count(&current) {
            let list = stmt_list_at(&current, site);
            if !list.is_empty() {
                let reduced = ddmin(&list, &mut |subset| {
                    if subset.len() == list.len() {
                        return false;
                    }
                    check(&with_stmt_list(&current, site, subset))
                });
                if reduced.len() < list.len() {
                    current = with_stmt_list(&current, site, &reduced);
                    progressed = true;
                }
            }
            site += 1;
        }
        progressed.then_some(current)
    }
}

// ---------------------------------------------------------------------------
// Pass 3: expression simplification.
// ---------------------------------------------------------------------------

/// Simplification candidates for one expression node, smallest first.  Every
/// candidate preserves the node's type by construction where the IR makes
/// that decidable locally (operand hoisting, boolean constants, zero
/// constants of a known width); anything else is filtered by re-typechecking.
fn expr_candidates(expr: &Expr) -> Vec<Expr> {
    /// A zero constant with the width of `model`, when that width is
    /// locally known.
    fn zero_like(model: &Expr) -> Option<Expr> {
        match model {
            Expr::Int {
                width: Some(width), ..
            } => Some(Expr::uint(0, *width)),
            _ => None,
        }
    }
    match expr {
        Expr::Binary { op, left, right } => {
            let mut candidates = Vec::new();
            if op.is_comparison() {
                candidates.push(Expr::Bool(true));
                candidates.push(Expr::Bool(false));
            } else if op.is_logical() {
                candidates.push(Expr::Bool(true));
                candidates.push(Expr::Bool(false));
                candidates.push((**left).clone());
                candidates.push((**right).clone());
            } else {
                match op {
                    // The result width of a shift is the left operand's;
                    // the right operand cannot substitute for it.
                    BinOp::Shl | BinOp::Shr => candidates.push((**left).clone()),
                    // Concatenation changes width; no operand substitutes.
                    BinOp::Concat => {}
                    _ => {
                        if let Some(zero) = zero_like(left).or_else(|| zero_like(right)) {
                            candidates.push(zero);
                        }
                        candidates.push((**left).clone());
                        candidates.push((**right).clone());
                    }
                }
            }
            candidates
        }
        Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } => {
            vec![(**then_expr).clone(), (**else_expr).clone()]
        }
        // `!`, `~` and `-` all preserve their operand's type.
        Expr::Unary {
            op: UnOp::Not | UnOp::BitNot | UnOp::Neg,
            operand,
        } => {
            vec![(**operand).clone()]
        }
        Expr::Cast {
            ty: Type::Bits {
                width,
                signed: false,
            },
            ..
        } => vec![Expr::uint(0, *width)],
        Expr::Slice { hi, lo, .. } => vec![Expr::uint(0, hi - lo + 1)],
        Expr::Int {
            value,
            width: Some(width),
            ..
        } if *value != 0 => {
            vec![Expr::uint(0, *width)]
        }
        _ => Vec::new(),
    }
}

/// Pre-order visit of every simplifiable expression position: assignment
/// right-hand sides, call arguments, conditions, initialisers and return
/// values.  Assignment left-hand sides are skipped — they must stay
/// l-values, so no candidate we generate could survive the type checker.
fn find_expr(program: &mut Program, target: usize) -> (usize, Option<&mut Expr>) {
    fn in_expr<'a>(expr: &'a mut Expr, counter: &mut usize, target: usize) -> Option<&'a mut Expr> {
        if *counter == target {
            return Some(expr);
        }
        *counter += 1;
        match expr {
            Expr::Member { base, .. } | Expr::Slice { base, .. } => in_expr(base, counter, target),
            Expr::Unary { operand, .. } => in_expr(operand, counter, target),
            Expr::Cast { expr, .. } => in_expr(expr, counter, target),
            Expr::Binary { left, right, .. } => {
                if let Some(found) = in_expr(left, counter, target) {
                    return Some(found);
                }
                in_expr(right, counter, target)
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if let Some(found) = in_expr(cond, counter, target) {
                    return Some(found);
                }
                if let Some(found) = in_expr(then_expr, counter, target) {
                    return Some(found);
                }
                in_expr(else_expr, counter, target)
            }
            Expr::Call(call) => {
                for arg in &mut call.args {
                    if let Some(found) = in_expr(arg, counter, target) {
                        return Some(found);
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn in_stmt<'a>(
        stmt: &'a mut Statement,
        counter: &mut usize,
        target: usize,
    ) -> Option<&'a mut Expr> {
        match stmt {
            Statement::Assign { rhs, .. } => in_expr(rhs, counter, target),
            Statement::Call(call) => {
                for arg in &mut call.args {
                    if let Some(found) = in_expr(arg, counter, target) {
                        return Some(found);
                    }
                }
                None
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if let Some(found) = in_expr(cond, counter, target) {
                    return Some(found);
                }
                if let Some(found) = in_stmt(then_branch, counter, target) {
                    return Some(found);
                }
                match else_branch {
                    Some(else_stmt) => in_stmt(else_stmt, counter, target),
                    None => None,
                }
            }
            Statement::Block(block) => in_block(block, counter, target),
            Statement::Declare {
                init: Some(init), ..
            } => in_expr(init, counter, target),
            Statement::Constant { value, .. } => in_expr(value, counter, target),
            Statement::Return(Some(expr)) => in_expr(expr, counter, target),
            _ => None,
        }
    }
    fn in_block<'a>(
        block: &'a mut Block,
        counter: &mut usize,
        target: usize,
    ) -> Option<&'a mut Expr> {
        for stmt in &mut block.statements {
            if let Some(found) = in_stmt(stmt, counter, target) {
                return Some(found);
            }
        }
        None
    }

    let mut counter = 0usize;
    for decl in &mut program.declarations {
        let found = match decl {
            Declaration::Action(a) => in_block(&mut a.body, &mut counter, target),
            Declaration::Function(f) => in_block(&mut f.body, &mut counter, target),
            Declaration::Control(c) => {
                let mut found = None;
                for local in &mut c.locals {
                    // Mirrors `for_each_stmt_list`: control locals with a
                    // body (actions and functions) are simplifiable too.
                    let body = match local {
                        Declaration::Action(a) => Some(&mut a.body),
                        Declaration::Function(f) => Some(&mut f.body),
                        _ => None,
                    };
                    if let Some(body) = body {
                        found = in_block(body, &mut counter, target);
                        if found.is_some() {
                            break;
                        }
                    }
                }
                match found {
                    Some(found) => Some(found),
                    None => in_block(&mut c.apply, &mut counter, target),
                }
            }
            Declaration::Parser(p) => {
                let mut found = None;
                for state in &mut p.states {
                    for stmt in &mut state.statements {
                        found = in_stmt(stmt, &mut counter, target);
                        if found.is_some() {
                            break;
                        }
                    }
                    if found.is_some() {
                        break;
                    }
                }
                found
            }
            _ => None,
        };
        if found.is_some() {
            return (counter, found);
        }
    }
    (counter, None)
}

/// Read-only snapshot of the expression node at pre-order index `target`
/// (a clone of the node alone — never of the whole program, which keeps
/// the per-site cost of `ExprSimplify`'s scan small).  Visits exactly the
/// positions [`find_expr`] visits, in the same order; the two are pinned
/// node-by-node by the `expr_traversals_agree` test.
fn expr_at(program: &Program, target: usize) -> Option<Expr> {
    fn in_expr(expr: &Expr, counter: &mut usize, target: usize) -> Option<Expr> {
        if *counter == target {
            return Some(expr.clone());
        }
        *counter += 1;
        match expr {
            Expr::Member { base, .. } | Expr::Slice { base, .. } => in_expr(base, counter, target),
            Expr::Unary { operand, .. } => in_expr(operand, counter, target),
            Expr::Cast { expr, .. } => in_expr(expr, counter, target),
            Expr::Binary { left, right, .. } => {
                in_expr(left, counter, target).or_else(|| in_expr(right, counter, target))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => in_expr(cond, counter, target)
                .or_else(|| in_expr(then_expr, counter, target))
                .or_else(|| in_expr(else_expr, counter, target)),
            Expr::Call(call) => call
                .args
                .iter()
                .find_map(|arg| in_expr(arg, counter, target)),
            _ => None,
        }
    }
    // Top-level expressions of one statement, in `find_expr` order.  Nested
    // statements are *not* recursed into here: the statement-list traversal
    // below already enumerates every nested list, and `if` arms that are
    // not blocks are handled explicitly.
    fn stmt_exprs(stmt: &Statement, counter: &mut usize, target: usize) -> Option<Expr> {
        match stmt {
            Statement::Assign { rhs, .. } => in_expr(rhs, counter, target),
            Statement::Call(call) => call
                .args
                .iter()
                .find_map(|arg| in_expr(arg, counter, target)),
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if let Some(found) = in_expr(cond, counter, target) {
                    return Some(found);
                }
                if let Some(found) = stmt_exprs(then_branch, counter, target) {
                    return Some(found);
                }
                match else_branch {
                    Some(else_stmt) => stmt_exprs(else_stmt, counter, target),
                    None => None,
                }
            }
            Statement::Block(block) => block
                .statements
                .iter()
                .find_map(|s| stmt_exprs(s, counter, target)),
            Statement::Declare {
                init: Some(init), ..
            } => in_expr(init, counter, target),
            Statement::Constant { value, .. } => in_expr(value, counter, target),
            Statement::Return(Some(expr)) => in_expr(expr, counter, target),
            _ => None,
        }
    }
    // `find_expr` walks bodies in declaration order and recurses through
    // nested statements from each body root; replaying the same recursion
    // from only the *top-level* body lists reproduces the same order.
    fn in_decl(decl: &Declaration, counter: &mut usize, target: usize) -> Option<Expr> {
        match decl {
            Declaration::Action(a) => a
                .body
                .statements
                .iter()
                .find_map(|s| stmt_exprs(s, counter, target)),
            Declaration::Function(f) => f
                .body
                .statements
                .iter()
                .find_map(|s| stmt_exprs(s, counter, target)),
            Declaration::Control(c) => c
                .locals
                .iter()
                .filter(|l| matches!(l, Declaration::Action(_) | Declaration::Function(_)))
                .find_map(|l| in_decl(l, counter, target))
                .or_else(|| {
                    c.apply
                        .statements
                        .iter()
                        .find_map(|s| stmt_exprs(s, counter, target))
                }),
            Declaration::Parser(p) => p.states.iter().find_map(|state| {
                state
                    .statements
                    .iter()
                    .find_map(|s| stmt_exprs(s, counter, target))
            }),
            _ => None,
        }
    }
    let mut counter = 0usize;
    program
        .declarations
        .iter()
        .find_map(|decl| in_decl(decl, &mut counter, target))
}

/// Greedy expression shrinking: walks every expression position in pre-order
/// and tries to replace the subexpression with a typed constant or one of
/// its own operands, keeping the first accepted candidate and re-examining
/// the (now smaller) node before moving on.
pub struct ExprSimplify;

impl ReductionPass for ExprSimplify {
    fn name(&self) -> &'static str {
        "expr-simplify"
    }

    fn reduce(&self, program: &Program, check: &mut Check) -> Option<Program> {
        let mut current = program.clone();
        let mut progressed = false;
        let mut site = 0usize;
        // Snapshot the node at `site` (if any) and try its candidates.
        while let Some(node) = expr_at(&current, site) {
            let node_size = node.size();
            let candidates = expr_candidates(&node);
            let mut accepted = false;
            for candidate_expr in candidates {
                // Filter on the snapshot before paying for a program clone.
                // Equal-size replacements are allowed only for the
                // non-re-proposable constant rewrites (literal zeroing), so
                // the greedy revisit loop still terminates.
                if candidate_expr == node || candidate_expr.size() > node_size {
                    continue;
                }
                let mut candidate = current.clone();
                let (_, slot) = find_expr(&mut candidate, site);
                *slot.expect("site was just observed") = candidate_expr;
                if check(&candidate) {
                    current = candidate;
                    progressed = true;
                    accepted = true;
                    break;
                }
            }
            if !accepted {
                site += 1;
            }
            // If accepted, revisit the same site: the replacement may
            // itself be simplifiable (and strictly shrank, so this
            // terminates).
        }
        progressed.then_some(current)
    }
}

// ---------------------------------------------------------------------------
// Pass 4: structural pruning of tables and parser states.
// ---------------------------------------------------------------------------

/// Prunes coarse structure that ddmin over statements cannot reach: whole
/// control-local declarations (tables, actions, variables), table key
/// elements and action lists, parser `select` transitions (collapsed to the
/// default target) and entire parser states (with transitions into them
/// redirected to `accept`).
pub struct StructurePrune;

impl StructurePrune {
    fn prune_control_locals(program: &Program, check: &mut Check) -> Option<Program> {
        let mut current = program.clone();
        let mut progressed = false;
        for decl_index in 0..current.declarations.len() {
            let Declaration::Control(control) = &current.declarations[decl_index] else {
                continue;
            };
            let locals = control.locals.clone();
            if locals.is_empty() {
                continue;
            }
            let reduced = ddmin(&locals, &mut |subset| {
                if subset.len() == locals.len() {
                    return false;
                }
                let mut candidate = current.clone();
                let Declaration::Control(control) = &mut candidate.declarations[decl_index] else {
                    unreachable!("declaration kinds are stable under local pruning");
                };
                control.locals = subset.to_vec();
                check(&candidate)
            });
            if reduced.len() < locals.len() {
                let Declaration::Control(control) = &mut current.declarations[decl_index] else {
                    unreachable!("declaration kinds are stable under local pruning");
                };
                control.locals = reduced;
                progressed = true;
            }
        }
        progressed.then_some(current)
    }

    fn prune_tables(program: &Program, check: &mut Check) -> Option<Program> {
        let mut current = program.clone();
        let mut progressed = false;
        // Table sites: top-level tables and control-local tables, addressed
        // by (declaration index, optional local index).
        let mut sites: Vec<(usize, Option<usize>)> = Vec::new();
        for (index, decl) in current.declarations.iter().enumerate() {
            match decl {
                Declaration::Table(_) => sites.push((index, None)),
                Declaration::Control(control) => {
                    for (local_index, local) in control.locals.iter().enumerate() {
                        if matches!(local, Declaration::Table(_)) {
                            sites.push((index, Some(local_index)));
                        }
                    }
                }
                _ => {}
            }
        }
        let table_at = |program: &Program, site: &(usize, Option<usize>)| {
            let decl = &program.declarations[site.0];
            let decl = match site.1 {
                Some(local_index) => match decl {
                    Declaration::Control(control) => &control.locals[local_index],
                    _ => decl,
                },
                None => decl,
            };
            match decl {
                Declaration::Table(table) => Some(table.clone()),
                _ => None,
            }
        };
        let with_table =
            |program: &Program, site: &(usize, Option<usize>), table: p4_ir::TableDecl| {
                let mut candidate = program.clone();
                let slot = match site.1 {
                    Some(local_index) => match &mut candidate.declarations[site.0] {
                        Declaration::Control(control) => &mut control.locals[local_index],
                        other => other,
                    },
                    None => &mut candidate.declarations[site.0],
                };
                *slot = Declaration::Table(table);
                candidate
            };
        for site in &sites {
            // Drop key elements one at a time (greedy, first-to-last).
            let mut accepted = true;
            while accepted {
                accepted = false;
                let Some(table) = table_at(&current, site) else {
                    break;
                };
                for key_index in 0..table.keys.len() {
                    let mut pruned = table.clone();
                    pruned.keys.remove(key_index);
                    let candidate = with_table(&current, site, pruned);
                    if check(&candidate) {
                        current = candidate;
                        progressed = true;
                        accepted = true;
                        break;
                    }
                }
            }
            // Drop non-default actions from the action list.
            let mut accepted = true;
            while accepted {
                accepted = false;
                let Some(table) = table_at(&current, site) else {
                    break;
                };
                for action_index in 0..table.actions.len() {
                    if table.actions.len() <= 1 {
                        break;
                    }
                    if table.actions[action_index].name == table.default_action.name {
                        continue;
                    }
                    let mut pruned = table.clone();
                    pruned.actions.remove(action_index);
                    let candidate = with_table(&current, site, pruned);
                    if check(&candidate) {
                        current = candidate;
                        progressed = true;
                        accepted = true;
                        break;
                    }
                }
            }
        }
        progressed.then_some(current)
    }

    fn prune_parser_states(program: &Program, check: &mut Check) -> Option<Program> {
        let mut current = program.clone();
        let mut progressed = false;
        for decl_index in 0..current.declarations.len() {
            if !matches!(current.declarations[decl_index], Declaration::Parser(_)) {
                continue;
            }
            // Collapse `select` transitions to their default target.
            let mut accepted = true;
            while accepted {
                accepted = false;
                let Declaration::Parser(parser) = &current.declarations[decl_index] else {
                    break;
                };
                for (state_index, state) in parser.states.iter().enumerate() {
                    if let Transition::Select { cases, .. } = &state.transition {
                        let default_target = cases
                            .iter()
                            .find(|case| case.value.is_none())
                            .map(|case| case.next_state.clone())
                            .unwrap_or_else(|| "accept".to_string());
                        let mut candidate = current.clone();
                        let Declaration::Parser(parser) = &mut candidate.declarations[decl_index]
                        else {
                            unreachable!("declaration kinds are stable under state pruning");
                        };
                        parser.states[state_index].transition = Transition::Direct(default_target);
                        if check(&candidate) {
                            current = candidate;
                            progressed = true;
                            accepted = true;
                            break;
                        }
                    }
                }
            }
            // Remove whole states, redirecting inbound transitions to
            // `accept`.  The `start` state is the entry point and stays.
            let mut accepted = true;
            while accepted {
                accepted = false;
                let Declaration::Parser(parser) = &current.declarations[decl_index] else {
                    break;
                };
                let removable: Vec<String> = parser
                    .states
                    .iter()
                    .filter(|state| state.name != "start")
                    .map(|state| state.name.clone())
                    .collect();
                for name in removable {
                    let mut candidate = current.clone();
                    let Declaration::Parser(parser) = &mut candidate.declarations[decl_index]
                    else {
                        unreachable!("declaration kinds are stable under state pruning");
                    };
                    parser.states.retain(|state| state.name != name);
                    for state in &mut parser.states {
                        match &mut state.transition {
                            Transition::Direct(target) if *target == name => {
                                *target = "accept".to_string();
                            }
                            Transition::Select { cases, .. } => {
                                for case in cases {
                                    if case.next_state == name {
                                        case.next_state = "accept".to_string();
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    if check(&candidate) {
                        current = candidate;
                        progressed = true;
                        accepted = true;
                        break;
                    }
                }
            }
        }
        progressed.then_some(current)
    }
}

impl ReductionPass for StructurePrune {
    fn name(&self) -> &'static str {
        "structure-prune"
    }

    fn reduce(&self, program: &Program, check: &mut Check) -> Option<Program> {
        let mut current = program.clone();
        let mut progressed = false;
        if let Some(reduced) = Self::prune_control_locals(&current, check) {
            current = reduced;
            progressed = true;
        }
        if let Some(reduced) = Self::prune_tables(&current, check) {
            current = reduced;
            progressed = true;
        }
        if let Some(reduced) = Self::prune_parser_states(&current, check) {
            current = reduced;
            progressed = true;
        }
        progressed.then_some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;

    #[test]
    fn statement_count_counts_nested_statements() {
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::Bool(true),
                Statement::Block(Block::new(vec![
                    Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                    Statement::Exit,
                ])),
                Statement::Empty,
            )]),
        );
        // The skeleton parser contributes extract statements as well; the
        // ingress contributes if + block + assign + exit + empty = 5.
        assert!(statement_count(&program) >= 5);
    }

    #[test]
    fn declaration_ddmin_drops_unreferenced_declarations() {
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(1, 8),
            )]),
        );
        // Accept everything that still contains the ingress control: the
        // pass should strip as much as the callback allows.
        let before = program.declarations.len();
        let reduced = DeclarationDdmin
            .reduce(&program, &mut |candidate: &Program| {
                candidate.control("ingress_impl").is_some()
            })
            .expect("some declaration is droppable");
        assert!(reduced.declarations.len() < before);
    }

    #[test]
    fn stmt_list_sites_cover_nested_blocks() {
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Block(Block::new(vec![Statement::Exit]))]),
        );
        // start-state list, parse_h list (skeleton parser), ingress apply,
        // nested block — at least 3 sites exist.
        assert!(stmt_list_count(&program) >= 3);
    }

    /// A program exercising every traversal corner: control-local action
    /// *and* function bodies, nested blocks, `if` arms, parser states.
    fn traversal_fixture() -> Program {
        use p4_ir::{ActionDecl, Declaration, FunctionDecl, Param, Type};
        let action = ActionDecl {
            name: "act".into(),
            params: vec![],
            body: Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(1, 8),
                ),
            )]),
        };
        let function = FunctionDecl {
            name: "fun".into(),
            return_type: Type::bits(8),
            params: vec![Param::new(p4_ir::Direction::In, "x", Type::bits(8))],
            body: Block::new(vec![Statement::Return(Some(Expr::binary(
                BinOp::Mul,
                Expr::path("x"),
                Expr::uint(2, 8),
            )))]),
        };
        builder::v1model_program(
            vec![Declaration::Action(action), Declaration::Function(function)],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Lt,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(9, 8),
                ),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["meta", "flag"]),
                    Expr::ternary(Expr::Bool(true), Expr::uint(1, 8), Expr::uint(2, 8)),
                )])),
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(3, 8)),
            )]),
        )
    }

    /// The read-only and mutable statement-list traversals enumerate the
    /// same sites in the same order.
    #[test]
    fn stmt_list_traversals_agree() {
        let program = traversal_fixture();
        let mut ref_lists: Vec<Vec<Statement>> = Vec::new();
        for_each_stmt_list_ref(&program, &mut |list| ref_lists.push(list.to_vec()));
        let mut mut_lists: Vec<Vec<Statement>> = Vec::new();
        let mut scratch = program.clone();
        for_each_stmt_list(&mut scratch, &mut |list| mut_lists.push(list.clone()));
        assert_eq!(ref_lists, mut_lists);
        assert_eq!(ref_lists.len(), stmt_list_count(&program));
    }

    /// `expr_at` (read-only snapshot) and `find_expr` (mutable applier)
    /// agree node-by-node — including inside control-local function bodies.
    #[test]
    fn expr_traversals_agree() {
        let program = traversal_fixture();
        let mut sites = 0usize;
        let mut saw_function_body_expr = false;
        while let Some(snapshot) = expr_at(&program, sites) {
            let mut scratch = program.clone();
            let (_, node) = find_expr(&mut scratch, sites);
            assert_eq!(Some(&snapshot), node.as_deref(), "site {sites}");
            if snapshot == Expr::binary(BinOp::Mul, Expr::path("x"), Expr::uint(2, 8)) {
                saw_function_body_expr = true;
            }
            sites += 1;
        }
        assert!(
            sites >= 10,
            "fixture should expose many expression sites, got {sites}"
        );
        assert!(
            saw_function_body_expr,
            "control-local function bodies must be covered"
        );
        // Past the end, the mutable finder agrees there is nothing left.
        let mut scratch = program.clone();
        assert!(find_expr(&mut scratch, sites).1.is_none());
    }

    #[test]
    fn expr_candidates_respect_operator_classes() {
        let cmp = Expr::binary(BinOp::Lt, Expr::path("x"), Expr::uint(3, 8));
        assert!(expr_candidates(&cmp).contains(&Expr::Bool(true)));
        let shift = Expr::binary(BinOp::Shl, Expr::path("x"), Expr::path("y"));
        assert_eq!(expr_candidates(&shift), vec![Expr::path("x")]);
        let concat = Expr::binary(BinOp::Concat, Expr::path("x"), Expr::path("y"));
        assert!(expr_candidates(&concat).is_empty());
        let add = Expr::binary(BinOp::Add, Expr::path("x"), Expr::uint(3, 8));
        let candidates = expr_candidates(&add);
        assert!(candidates.contains(&Expr::uint(0, 8)));
        assert!(candidates.contains(&Expr::path("x")));
    }
}
