//! # p4-reduce — delta-debugging test-case reduction for Gauntlet findings
//!
//! The paper's workflow does not end when a bug fires: every one of the 96
//! reports filed upstream was first *reduced* to a minimal reproducer (§7).
//! This crate supplies that missing stage as a standalone subsystem:
//!
//! * [`mod@ddmin`] — the Zeller/Hildebrandt delta-debugging minimisation
//!   algorithm over an arbitrary item list;
//! * [`oracle`] — the pluggable [`Oracle`] trait plus concrete oracles for
//!   the three detection techniques: [`CrashOracle`] (the compiler still
//!   aborts or rejects), [`SemanticOracle`] (translation validation still
//!   reports inequivalence at the same pass, re-using one incremental
//!   [`p4_symbolic::ValidationSession`] across every shrink step), and
//!   [`TestgenOracle`] (any `targets::Target` — BMv2, Tofino, the
//!   reference interpreter, or a custom registration — still diverges on
//!   generated tests);
//! * [`metamorphic`] — the [`MetamorphicOracle`] for `p4-mutate` findings:
//!   the applied-mutation *chain* is ddmin-minimised first
//!   ([`minimize_chain`]), then the seed program shrinks through the
//!   standard reducer while the minimised chain keeps reproducing the same
//!   divergence;
//! * [`passes`] — the [`ReductionPass`] catalogue: ddmin over top-level
//!   declarations, statement-list ddmin inside every block, expression
//!   simplification, and table/parser-state pruning;
//! * [`reducer`] — the fixpoint [`Reducer`] driver with a deterministic
//!   schedule, an oracle-call budget, and [`ReductionStats`].
//!
//! Every candidate is gated through `p4_check` before the oracle sees it, so
//! a reducer output always typechecks; and a candidate is only accepted when
//! the oracle reproduces the *same* bug signature (the de-duplication key of
//! the original finding), so reduction can never migrate onto a different
//! bug.  All passes are deterministic, which makes the minimised program a
//! pure function of (program, signature, budget).

pub mod ddmin;
pub mod metamorphic;
pub mod oracle;
pub mod passes;
pub mod reducer;

pub use ddmin::ddmin;
pub use metamorphic::{
    metamorphic_findings, metamorphic_findings_against, metamorphic_signature, minimize_chain,
    minimize_chain_against, MetamorphicOracle,
};
pub use oracle::{
    bug_signature, CrashOracle, FnOracle, Oracle, SemanticOracle, TestgenOracle, PLATFORM_BMV2,
    PLATFORM_P4C, PLATFORM_REFINTERP, PLATFORM_TOFINO,
};
pub use passes::{
    statement_count, DeclarationDdmin, ExprSimplify, ReductionPass, StatementDdmin, StructurePrune,
};
pub use reducer::{Reducer, ReducerConfig, Reduction, ReductionStats};
