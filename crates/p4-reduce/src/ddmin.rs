//! The ddmin minimising delta-debugging algorithm (Zeller & Hildebrandt,
//! "Simplifying and Isolating Failure-Inducing Input", TSE 2002).
//!
//! `ddmin` shrinks a list of items while a caller-supplied test keeps
//! succeeding on the shrunk list.  It is the workhorse under the
//! declaration- and statement-level reduction passes: the "items" are
//! declarations or statements, and the test builds a candidate program and
//! asks the bug oracle whether it still reproduces the target finding.

/// Minimises `items` under `test`: returns a (locally) 1-minimal
/// subsequence for which `test` still returns true.
///
/// `test` is never called on the full input — the caller has already
/// established that it passes — and is monotonically budgeted by the caller
/// (a `test` that starts returning `false` forever simply freezes the
/// current result, so an exhausted oracle budget degrades gracefully).
pub fn ddmin<T: Clone>(items: &[T], test: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.len() < 2 {
        // A single item can still be droppable: try the empty list.
        if current.len() == 1 && test(&[]) {
            current.clear();
        }
        return current;
    }
    let mut granularity = 2usize;
    loop {
        if current.len() == 1 {
            // Chunked splitting cannot propose the empty list; try it
            // directly before settling on a single-item result.
            if test(&[]) {
                current.clear();
            }
            return current;
        }
        let chunks = split_points(current.len(), granularity);
        let mut progressed = false;

        // First try each chunk alone (big cuts), then each complement.
        for window in chunks.windows(2) {
            let subset: Vec<T> = current[window[0]..window[1]].to_vec();
            if subset.len() < current.len() && test(&subset) {
                current = subset;
                granularity = 2;
                progressed = true;
                break;
            }
        }
        if !progressed && granularity > 2 {
            for window in chunks.windows(2) {
                let mut complement: Vec<T> = Vec::with_capacity(current.len());
                complement.extend_from_slice(&current[..window[0]]);
                complement.extend_from_slice(&current[window[1]..]);
                if complement.len() < current.len() && test(&complement) {
                    current = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    progressed = true;
                    break;
                }
            }
        }
        if progressed {
            if current.is_empty() {
                return current;
            }
            continue;
        }
        if granularity >= current.len() {
            return current;
        }
        granularity = (granularity * 2).min(current.len());
    }
}

/// The `n + 1` split points dividing `len` items into `n` near-equal chunks.
fn split_points(len: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.min(len).max(1);
    (0..=chunks).map(|i| i * len / chunks).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_failure_inducing_item() {
        let items: Vec<u32> = (0..64).collect();
        let mut calls = 0;
        let result = ddmin(&items, &mut |subset| {
            calls += 1;
            subset.contains(&37)
        });
        assert_eq!(result, vec![37]);
        assert!(
            calls < 200,
            "ddmin should be far cheaper than brute force: {calls}"
        );
    }

    #[test]
    fn finds_scattered_pair() {
        let items: Vec<u32> = (0..32).collect();
        let result = ddmin(&items, &mut |subset| {
            subset.contains(&3) && subset.contains(&29)
        });
        assert_eq!(result, vec![3, 29]);
    }

    #[test]
    fn preserves_order() {
        let items = vec![5, 4, 3, 2, 1];
        let result = ddmin(&items, &mut |subset| {
            subset.contains(&4) && subset.contains(&2)
        });
        assert_eq!(result, vec![4, 2]);
    }

    #[test]
    fn empty_result_when_nothing_is_needed() {
        let items = vec![1, 2, 3];
        let result = ddmin(&items, &mut |_| true);
        assert!(result.is_empty());
    }

    #[test]
    fn keeps_everything_when_everything_is_needed() {
        let items = vec![1, 2, 3, 4];
        let result = ddmin(&items, &mut |subset| subset.len() == 4);
        assert_eq!(result, vec![1, 2, 3, 4]);
    }

    #[test]
    fn single_item_lists() {
        assert!(ddmin(&[7], &mut |s: &[u32]| s.contains(&7)) == vec![7]);
        assert!(ddmin(&[7], &mut |_s: &[u32]| true).is_empty());
    }
}
