//! The fixpoint reduction driver.
//!
//! Runs the [`ReductionPass`] schedule round-robin until a full round makes
//! no progress (or the oracle-call budget runs out), gating every candidate
//! through `p4_check` re-typechecking and the bug oracle.  Everything is
//! deterministic: the schedule is fixed, the passes are pure, and the
//! budget is counted in oracle calls rather than wall-clock time, so the
//! minimised program is a pure function of (program, target signature,
//! configuration) — which is what lets the campaign engine shard reduction
//! across worker threads and still commit byte-identical reports.

use crate::oracle::Oracle;
use crate::passes::{
    statement_count, DeclarationDdmin, ExprSimplify, ReductionPass, StatementDdmin, StructurePrune,
};
use p4_ir::Program;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Reduction budget and schedule limits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReducerConfig {
    /// Hard budget of oracle invocations (the expensive part of a shrink
    /// step; typechecking rejected candidates is not counted).  When the
    /// budget runs out the reducer freezes the current best program.
    pub max_oracle_calls: usize,
    /// Maximum rounds over the full pass schedule; reduction normally
    /// reaches a fixpoint in two or three.
    pub max_rounds: usize,
}

impl Default for ReducerConfig {
    fn default() -> Self {
        ReducerConfig {
            max_oracle_calls: 512,
            max_rounds: 4,
        }
    }
}

/// Counters describing one reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStats {
    /// Executable statements before / after reduction.
    pub initial_statements: usize,
    pub final_statements: usize,
    /// AST nodes before / after reduction.
    pub initial_nodes: usize,
    pub final_nodes: usize,
    /// Oracle invocations spent (including the initial reproduction check).
    pub oracle_calls: usize,
    /// Candidates rejected by `p4_check` before reaching the oracle.
    pub typecheck_rejections: usize,
    /// Accepted shrink steps.
    pub accepted_steps: usize,
    /// Schedule rounds executed.
    pub rounds: usize,
}

impl ReductionStats {
    /// Final size as a fraction of the initial size, by statement count
    /// (1.0 = no reduction).
    pub fn statement_ratio(&self) -> f64 {
        if self.initial_statements == 0 {
            1.0
        } else {
            self.final_statements as f64 / self.initial_statements as f64
        }
    }
}

/// The outcome of a successful reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The minimised program; it typechecks and reproduces the target
    /// signature through the oracle it was reduced under.
    pub program: Program,
    pub stats: ReductionStats,
    /// Wall-clock time of the run (informational; never part of rendered
    /// reports, which must be byte-identical across schedules).
    pub wall_clock: Duration,
}

/// The delta-debugging driver.
pub struct Reducer {
    config: ReducerConfig,
    passes: Vec<Box<dyn ReductionPass>>,
}

impl Reducer {
    /// A reducer with the default schedule: declaration ddmin, structural
    /// pruning, statement ddmin, expression simplification — coarsest
    /// first, so the expensive fine-grained passes see a small program.
    pub fn new(config: ReducerConfig) -> Reducer {
        Reducer {
            config,
            passes: vec![
                Box::new(DeclarationDdmin),
                Box::new(StructurePrune),
                Box::new(StatementDdmin),
                Box::new(ExprSimplify),
            ],
        }
    }

    /// A reducer with a custom pass schedule.
    pub fn with_passes(config: ReducerConfig, passes: Vec<Box<dyn ReductionPass>>) -> Reducer {
        Reducer { config, passes }
    }

    pub fn config(&self) -> &ReducerConfig {
        &self.config
    }

    /// Reduces `program` to a smaller program that still reproduces
    /// `target` (a dedup-key signature, see [`crate::bug_signature`])
    /// through `oracle`.
    ///
    /// Returns `None` when the original program does not reproduce the
    /// target — reduction of a non-reproducing input is meaningless (and a
    /// sign the caller paired the wrong oracle with the finding).
    pub fn reduce(
        &self,
        oracle: &mut dyn Oracle,
        program: &Program,
        target: &str,
    ) -> Option<Reduction> {
        let _telemetry = gauntlet_telemetry::Span::begin(gauntlet_telemetry::Stage::Reduce);
        let started = std::time::Instant::now();
        let mut stats = ReductionStats {
            initial_statements: statement_count(program),
            initial_nodes: program.size(),
            ..ReductionStats::default()
        };

        stats.oracle_calls += 1;
        if !oracle.reproduces(program, target) {
            return None;
        }

        let mut current = program.clone();
        for _ in 0..self.config.max_rounds {
            if stats.oracle_calls >= self.config.max_oracle_calls {
                break;
            }
            stats.rounds += 1;
            let mut round_progressed = false;
            for pass in &self.passes {
                let mut check = |candidate: &Program| -> bool {
                    if stats.oracle_calls >= self.config.max_oracle_calls {
                        return false;
                    }
                    if !p4_check::program_well_typed(candidate) {
                        stats.typecheck_rejections += 1;
                        return false;
                    }
                    stats.oracle_calls += 1;
                    let reproduces = oracle.reproduces(candidate, target);
                    if reproduces {
                        stats.accepted_steps += 1;
                    }
                    reproduces
                };
                if let Some(reduced) = pass.reduce(&current, &mut check) {
                    current = reduced;
                    round_progressed = true;
                }
                if stats.oracle_calls >= self.config.max_oracle_calls {
                    break;
                }
            }
            if !round_progressed {
                break;
            }
        }

        stats.final_statements = statement_count(&current);
        stats.final_nodes = current.size();
        Some(Reduction {
            program: current,
            stats,
            wall_clock: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CrashOracle, FnOracle, SemanticOracle};
    use p4_ir::{builder, print_program, Block, Expr, Statement};
    use p4c::{Compiler, FrontEndBugClass};

    fn buggy_compiler(class: FrontEndBugClass) -> Compiler {
        let mut compiler = Compiler::reference();
        compiler.replace_pass(class.faulty_pass());
        compiler
    }

    /// A trigger statement buried in noise reduces down to (almost) just
    /// the trigger.
    #[test]
    fn reduces_a_padded_defuse_trigger() {
        let mut statements = Vec::new();
        for i in 0..10 {
            statements.push(Statement::assign(
                Expr::dotted(&["meta", "flag"]),
                Expr::uint(i % 16, 8),
            ));
        }
        statements.push(Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::uint(1, 8),
        ));
        let program = builder::v1model_program(vec![], Block::new(statements));

        let mut oracle =
            SemanticOracle::new(buggy_compiler(FrontEndBugClass::DefUseDropsParameterWrites));
        let signatures = oracle.signatures(&program);
        let target = signatures.first().expect("trigger reproduces").clone();

        let reducer = Reducer::new(ReducerConfig::default());
        let reduction = reducer
            .reduce(&mut oracle, &program, &target)
            .expect("reproduces");
        assert!(
            reduction.stats.final_statements < reduction.stats.initial_statements,
            "no shrinking happened: {:?}",
            reduction.stats
        );
        // The reduced program still typechecks and reproduces.
        assert!(p4_check::check_program(&reduction.program).is_empty());
        assert!(oracle.reproduces(&reduction.program, &target));
    }

    /// Reduction is deterministic: two runs give byte-identical programs.
    #[test]
    fn reduction_is_deterministic() {
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(7, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            ]),
        );
        let run = || {
            let mut oracle =
                SemanticOracle::new(buggy_compiler(FrontEndBugClass::DefUseDropsParameterWrites));
            let target = oracle
                .signatures(&program)
                .first()
                .expect("reproduces")
                .clone();
            let reducer = Reducer::new(ReducerConfig::default());
            let reduction = reducer
                .reduce(&mut oracle, &program, &target)
                .expect("reproduces");
            print_program(&reduction.program)
        };
        assert_eq!(run(), run());
    }

    /// A non-reproducing program is refused instead of "reduced" onto a
    /// different bug.
    #[test]
    fn refuses_non_reproducing_input() {
        let program = builder::trivial_program();
        let mut oracle = CrashOracle::new(Compiler::reference());
        let reducer = Reducer::new(ReducerConfig::default());
        assert!(reducer
            .reduce(&mut oracle, &program, "Crash|P4c|X|nope")
            .is_none());
    }

    /// The oracle budget is a hard ceiling.
    #[test]
    fn budget_caps_oracle_calls() {
        let program = builder::v1model_program(
            vec![],
            Block::new(
                (0..20)
                    .map(|i| Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(i, 8)))
                    .collect(),
            ),
        );
        let mut calls = 0usize;
        let mut oracle = FnOracle::new("counting", |_p: &p4_ir::Program| {
            calls += 1;
            vec!["always".to_string()]
        });
        let reducer = Reducer::new(ReducerConfig {
            max_oracle_calls: 10,
            max_rounds: 8,
        });
        let reduction = reducer
            .reduce(&mut oracle, &program, "always")
            .expect("reproduces");
        assert!(reduction.stats.oracle_calls <= 10, "{:?}", reduction.stats);
    }
}
