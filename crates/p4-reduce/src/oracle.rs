//! Pluggable bug oracles.
//!
//! A reduction step is only sound if the shrunk program still triggers *the
//! same* bug — not merely *a* bug (a reducer that drifts onto a second,
//! shallower defect produces a useless report).  Gauntlet's campaign layer
//! identifies findings by a de-duplication key (`kind|platform|pass|first
//! message line`, mirroring how the authors used P4C's distinct assertion
//! messages, paper §7.3); an [`Oracle`] re-runs one detection technique on a
//! candidate program and reports the keys of every finding it triggers.
//! The [`crate::Reducer`] accepts a candidate only when the original key is
//! among them.

use p4_ir::Program;
use p4_symbolic::{Equivalence, EquivalenceError, ValidationSession};
use p4c::{CompileError, CompileResult, Compiler};
use targets::{drive_target, Target, TargetFinding};

/// `Platform` label of the open P4C pipeline, as it appears in dedup keys.
pub const PLATFORM_P4C: &str = "P4c";
/// `Platform` label of the BMv2 back end, as it appears in dedup keys.
pub const PLATFORM_BMV2: &str = "Bmv2";
/// `Platform` label of the Tofino back end, as it appears in dedup keys.
pub const PLATFORM_TOFINO: &str = "Tofino";
/// `Platform` label of the reference-interpreter back end.
pub const PLATFORM_REFINTERP: &str = "RefInterp";

/// Builds a finding signature in the campaign layer's dedup-key format:
/// `kind|platform|pass|first-message-line`.
///
/// The format must stay in lock-step with `BugReport::dedup_key` in
/// `gauntlet-core` (which cannot be referenced from here without a
/// dependency cycle); the campaign crate carries a test pinning the two
/// together for every seeded bug class.
pub fn bug_signature(kind: &str, platform: &str, pass: Option<&str>, message: &str) -> String {
    format!(
        "{kind}|{platform}|{}|{}",
        pass.unwrap_or("-"),
        message.lines().next().unwrap_or("")
    )
}

/// A bug oracle: re-runs one detection technique on a candidate program.
pub trait Oracle {
    /// Short name used in stats and debug output.
    fn name(&self) -> &str;

    /// Dedup-key signatures of every finding the candidate triggers, in
    /// detection order.  An empty vector means the candidate is clean.
    fn signatures(&mut self, program: &Program) -> Vec<String>;

    /// Whether the candidate still reproduces the target finding.
    fn reproduces(&mut self, program: &Program, target: &str) -> bool {
        self.signatures(program).iter().any(|s| s == target)
    }
}

/// Crash/rejection oracle: the compiler under test still aborts (or still
/// incorrectly rejects the valid program) with the same message in the same
/// pass.  The cheapest oracle — it stops at the compiler driver and never
/// touches the solver.
pub struct CrashOracle {
    compiler: Compiler,
}

impl CrashOracle {
    pub fn new(compiler: Compiler) -> CrashOracle {
        CrashOracle { compiler }
    }
}

impl Oracle for CrashOracle {
    fn name(&self) -> &str {
        "crash"
    }

    fn signatures(&mut self, program: &Program) -> Vec<String> {
        match self.compiler.compile(program) {
            Err(CompileError::Crash { pass, message, .. }) => {
                vec![bug_signature("Crash", PLATFORM_P4C, Some(&pass), &message)]
            }
            Err(CompileError::Rejected { pass, diagnostics }) => {
                vec![bug_signature(
                    "Rejection",
                    PLATFORM_P4C,
                    Some(&pass),
                    &diagnostics.join("; "),
                )]
            }
            Ok(_) => Vec::new(),
        }
    }
}

/// Translation-validation oracle: the compiled pass chain still contains an
/// inequivalent (or unparseable, or structurally broken) snapshot pair
/// attributed to the same pass.
///
/// One incremental [`ValidationSession`] is shared across *every* shrink
/// step: candidate programs differ from each other by a handful of removed
/// statements, so their per-pass snapshots hash-cons onto largely identical
/// terms and the session's semantics cache and term-to-CNF memo make
/// re-validation much cheaper than the first run.
pub struct SemanticOracle {
    compiler: Compiler,
    session: ValidationSession,
}

impl SemanticOracle {
    pub fn new(compiler: Compiler) -> SemanticOracle {
        SemanticOracle {
            compiler,
            session: ValidationSession::new(),
        }
    }

    /// Usage counters of the shared validation session.
    pub fn session_stats(&self) -> p4_symbolic::SessionStats {
        self.session.stats()
    }

    fn validate(&mut self, result: &CompileResult) -> Vec<String> {
        let mut signatures = Vec::new();
        for (before, after) in result.pass_pairs() {
            if let Err(error) = p4_parser::parse_program(&after.printed) {
                signatures.push(bug_signature(
                    "InvalidTransformation",
                    PLATFORM_P4C,
                    Some(&after.pass_name),
                    &format!("emitted program no longer parses: {error}"),
                ));
                continue;
            }
            match self.session.check_pair(&before.program, &after.program) {
                Ok(Equivalence::Equal) => {}
                Ok(Equivalence::NotEqual(counterexample)) => {
                    signatures.push(bug_signature(
                        "Semantic",
                        PLATFORM_P4C,
                        Some(&after.pass_name),
                        &format!("{counterexample}"),
                    ));
                }
                Err(EquivalenceError::StructureMismatch { block, detail }) => {
                    signatures.push(bug_signature(
                        "InvalidTransformation",
                        PLATFORM_P4C,
                        Some(&after.pass_name),
                        &format!("structure mismatch in `{block}`: {detail}"),
                    ));
                }
                Err(EquivalenceError::Interpreter(_)) => {
                    // Unsupported construct: skip the pair, as the pipeline
                    // does (paper §8).
                }
            }
        }
        signatures
    }
}

impl Oracle for SemanticOracle {
    fn name(&self) -> &str {
        "semantic"
    }

    fn signatures(&mut self, program: &Program) -> Vec<String> {
        match self.compiler.compile(program) {
            Err(CompileError::Crash { pass, message, .. }) => {
                vec![bug_signature("Crash", PLATFORM_P4C, Some(&pass), &message)]
            }
            Err(CompileError::Rejected { pass, diagnostics }) => {
                vec![bug_signature(
                    "Rejection",
                    PLATFORM_P4C,
                    Some(&pass),
                    &diagnostics.join("; "),
                )]
            }
            Ok(result) => self.validate(&result),
        }
    }
}

/// Symbolic-execution oracle: the black-box target still diverges from the
/// input program's semantics on generated tests (or its compiler still
/// crashes in the same back-end stage).  Works for any [`Target`]
/// implementation — the oracle goes through the same `drive_target` path as
/// the detection pipeline, so its finding messages (and therefore its
/// signatures) stay in lock-step by construction.
pub struct TestgenOracle {
    target: Box<dyn Target>,
    name: String,
    max_tests: usize,
}

impl TestgenOracle {
    pub fn new(target: Box<dyn Target>, max_tests: usize) -> TestgenOracle {
        let name = format!("testgen-{}", target.name());
        TestgenOracle {
            target,
            name,
            max_tests,
        }
    }
}

impl Oracle for TestgenOracle {
    fn name(&self) -> &str {
        &self.name
    }

    fn signatures(&mut self, program: &Program) -> Vec<String> {
        drive_target(&*self.target, program, self.max_tests)
            .into_iter()
            .map(|finding| match finding {
                TargetFinding::Crash { pass, message } => {
                    bug_signature("Crash", self.target.platform_label(), Some(&pass), &message)
                }
                TargetFinding::Semantic { message } => {
                    bug_signature("Semantic", self.target.platform_label(), None, &message)
                }
            })
            .collect()
    }
}

/// A closure-backed oracle, mostly for tests and custom campaigns.
pub struct FnOracle<F: FnMut(&Program) -> Vec<String>> {
    name: String,
    f: F,
}

impl<F: FnMut(&Program) -> Vec<String>> FnOracle<F> {
    pub fn new(name: impl Into<String>, f: F) -> FnOracle<F> {
        FnOracle {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(&Program) -> Vec<String>> Oracle for FnOracle<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn signatures(&mut self, program: &Program) -> Vec<String> {
        (self.f)(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;

    #[test]
    fn signature_format_uses_first_line_only() {
        let sig = bug_signature(
            "Crash",
            PLATFORM_P4C,
            Some("SimplifyDefUse"),
            "boom\ndetail",
        );
        assert_eq!(sig, "Crash|P4c|SimplifyDefUse|boom");
        let sig = bug_signature("Semantic", PLATFORM_BMV2, None, "mismatch");
        assert_eq!(sig, "Semantic|Bmv2|-|mismatch");
    }

    #[test]
    fn crash_oracle_is_silent_on_the_reference_compiler() {
        let mut oracle = CrashOracle::new(Compiler::reference());
        assert!(oracle.signatures(&builder::trivial_program()).is_empty());
    }

    #[test]
    fn semantic_oracle_reports_a_seeded_defuse_bug() {
        let mut compiler = Compiler::reference();
        compiler.replace_pass(p4c::FrontEndBugClass::DefUseDropsParameterWrites.faulty_pass());
        let mut oracle = SemanticOracle::new(compiler);
        let signatures = oracle.signatures(&builder::trivial_program());
        assert!(
            signatures
                .iter()
                .any(|s| s.starts_with("Semantic|P4c|SimplifyDefUse|")),
            "unexpected signatures: {signatures:?}"
        );
        // Shrink-step reuse: a second query on the same program is served
        // entirely from the session cache.
        let before = oracle.session_stats();
        let again = oracle.signatures(&builder::trivial_program());
        assert_eq!(again, signatures);
        let after = oracle.session_stats();
        assert!(after.semantics_hits > before.semantics_hits);
    }
}
