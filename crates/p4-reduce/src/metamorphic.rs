//! The metamorphic reduction oracle and chain minimisation.
//!
//! A metamorphic finding has *two* things to shrink: the mutation chain
//! that produced the diverging mutant, and the seed program itself.  This
//! module owns both, in that order:
//!
//! 1. **Chain minimisation** ([`minimize_chain`]) — the applied-mutation
//!    chain is ddmin-ed first: drop subsets of mutations (replaying the
//!    survivors with their recorded per-step seeds) while the mutant keeps
//!    diverging on the same output field.  A four-step chain whose opaque
//!    guard alone triggers the bug reports as `OpaqueGuard`, not as a
//!    four-mutator pile-up — which is also what keys the finding for
//!    de-duplication.
//! 2. **Program reduction** ([`MetamorphicOracle`]) — the standard
//!    [`crate::Reducer`] then shrinks the seed program through an oracle
//!    that re-runs the full metamorphic search (same mutant family, same
//!    chain minimisation) on every candidate, so a candidate is only
//!    accepted when it still produces the *identical* dedup key.
//!
//! [`metamorphic_findings`] is the shared detection path: both
//! `gauntlet-core`'s `Gauntlet::check_mutants` and the oracle go through
//! it, which keeps report dedup keys and oracle signatures in lock-step by
//! construction.

use crate::ddmin::ddmin;
use crate::oracle::{bug_signature, Oracle, PLATFORM_P4C};
use p4_ir::Program;
use p4_mutate::{
    ChainOutcome, MetamorphicChecker, MetamorphicFinding, MetamorphicFindingKind,
    MetamorphicOptions, MetamorphicOutcome,
};

/// Ddmin-shrinks a divergence finding's mutation chain in place: mutations
/// are dropped while the replayed remainder still diverges on the same
/// output field.  Crash/rejection findings are left alone (their dedup key
/// is the compiler's own message, not the chain).
pub fn minimize_chain(
    checker: &mut MetamorphicChecker,
    program: &Program,
    finding: &mut MetamorphicFinding,
) {
    if finding.kind != MetamorphicFindingKind::Divergence || finding.chain.len() < 2 {
        return;
    }
    // The seed's compiled form is invariant across probes: compile it once,
    // so each ddmin probe costs one mutant compile, not two full pipelines.
    let Some(seed_final) = checker.compile_seed(program) else {
        return;
    };
    minimize_chain_against(checker, &seed_final, program, finding);
}

/// [`minimize_chain`] with the seed's compiled form supplied by the caller.
pub fn minimize_chain_against(
    checker: &mut MetamorphicChecker,
    seed_final: &Program,
    program: &Program,
    finding: &mut MetamorphicFinding,
) {
    if finding.kind != MetamorphicFindingKind::Divergence {
        return;
    }
    let Some(original_field) = finding.field.clone() else {
        return;
    };
    if finding.chain.len() < 2 {
        return;
    }
    let steps = finding.chain.clone();
    let shrunk = ddmin(&steps, &mut |subset| {
        matches!(
            checker.check_chain_against(seed_final, program, subset),
            ChainOutcome::Divergence { ref field, .. } if *field == original_field
        )
    });
    if shrunk.len() < steps.len() {
        // Re-derive the counterexample for the shrunk chain so the reported
        // detail matches what a replay of the minimised chain produces.
        if let ChainOutcome::Divergence { field, detail } =
            checker.check_chain_against(seed_final, program, &shrunk)
        {
            finding.chain = shrunk;
            finding.field = Some(field);
            finding.detail = detail;
        }
    }
}

/// Runs the metamorphic checker on `program` and minimises every divergence
/// chain.  This is the one detection path shared by the campaign pipeline
/// and [`MetamorphicOracle::signatures`]; the seed is compiled exactly once
/// for the whole check-plus-minimise run.
pub fn metamorphic_findings(
    checker: &mut MetamorphicChecker,
    program: &Program,
    options: &MetamorphicOptions,
    seed: u64,
) -> MetamorphicOutcome {
    let Some(seed_final) = checker.compile_seed(program) else {
        return MetamorphicOutcome::default();
    };
    metamorphic_findings_against(checker, &seed_final, program, options, seed)
}

/// [`metamorphic_findings`] with the seed's compiled form supplied by the
/// caller (campaign workers reuse the open-compiler check's compile).
pub fn metamorphic_findings_against(
    checker: &mut MetamorphicChecker,
    seed_final: &Program,
    program: &Program,
    options: &MetamorphicOptions,
    seed: u64,
) -> MetamorphicOutcome {
    let mut outcome = checker.check_against(seed_final, program, options, seed);
    for finding in &mut outcome.findings {
        minimize_chain_against(checker, seed_final, program, finding);
    }
    // Distinct mutants of one seed often minimise to the same chain and
    // diverging field; keep one finding per dedup key so the campaign does
    // not commit (and re-reduce) byte-identical reports.
    let mut seen = std::collections::BTreeSet::new();
    outcome
        .findings
        .retain(|finding| seen.insert(metamorphic_signature(finding)));
    outcome
}

/// The campaign-layer dedup key of a metamorphic finding.  Must stay in
/// lock-step with how `gauntlet-core` packages the finding as a
/// `BugReport` (pinned by the seeded-bug signature test in that crate).
pub fn metamorphic_signature(finding: &MetamorphicFinding) -> String {
    let kind = match finding.kind {
        MetamorphicFindingKind::Divergence => "Metamorphic",
        MetamorphicFindingKind::Crash => "Crash",
        MetamorphicFindingKind::Rejection => "Rejection",
    };
    bug_signature(
        kind,
        PLATFORM_P4C,
        finding.pass.as_deref(),
        &finding.headline(),
    )
}

/// Metamorphic-mutation oracle: the candidate program's mutant family
/// (derived with the *same* mutation-stream seed the detecting campaign
/// used) still contains a mutant whose compiled form diverges from the
/// candidate's — with the identical minimised chain and diverging field.
pub struct MetamorphicOracle {
    checker: MetamorphicChecker,
    options: MetamorphicOptions,
    seed: u64,
}

impl MetamorphicOracle {
    pub fn new(
        compiler: p4c::Compiler,
        options: MetamorphicOptions,
        seed: u64,
    ) -> MetamorphicOracle {
        MetamorphicOracle {
            checker: MetamorphicChecker::new(compiler),
            options,
            seed,
        }
    }
}

impl Oracle for MetamorphicOracle {
    fn name(&self) -> &str {
        "metamorphic"
    }

    fn signatures(&mut self, program: &Program) -> Vec<String> {
        metamorphic_findings(&mut self.checker, program, &self.options, self.seed)
            .findings
            .iter()
            .map(metamorphic_signature)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::{builder, Block, Expr, Statement};
    use p4c::{Compiler, DriverBugClass};

    fn corrupted_compiler() -> Compiler {
        let mut compiler = Compiler::reference();
        compiler.seed_input_corruption(DriverBugClass::SnapshotDropsFinalWrite);
        compiler
    }

    fn trigger() -> p4_ir::Program {
        builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(7, 8)),
            ]),
        )
    }

    #[test]
    fn oracle_is_silent_on_the_reference_compiler() {
        let mut oracle = MetamorphicOracle::new(
            Compiler::reference(),
            MetamorphicOptions::default(),
            p4_mutate::CAMPAIGN_MUTATION_SEED,
        );
        assert!(oracle.signatures(&trigger()).is_empty());
    }

    #[test]
    fn oracle_convicts_the_pre_snapshot_corruption_with_a_minimised_chain() {
        let mut oracle = MetamorphicOracle::new(
            corrupted_compiler(),
            MetamorphicOptions::default(),
            p4_mutate::CAMPAIGN_MUTATION_SEED,
        );
        let signatures = oracle.signatures(&trigger());
        assert!(
            signatures
                .iter()
                .any(|s| s.starts_with("Metamorphic|P4c|-|mutation chain `")),
            "expected a metamorphic divergence, got {signatures:?}"
        );
        // Determinism: the oracle is a pure function of the program.
        assert_eq!(signatures, oracle.signatures(&trigger()));
    }
}
