//! Out-of-band JSONL event log.
//!
//! Every line is one JSON object tagged `"schema":"gauntlet-events-v1"` with
//! a wall-clock `ts_ms` timestamp.  The log is *explicitly excluded* from the
//! deterministic artifacts: reports and corpus bytes are identical whether or
//! not an event log is attached, and nothing in the engine ever reads one
//! back.  Timestamps and event interleaving are schedule-dependent by nature
//! — that is the point of an out-of-band channel.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;

/// Schema tag carried by every event line.
pub const EVENTS_SCHEMA: &str = "gauntlet-events-v1";

/// Milliseconds since the Unix epoch, for event timestamps.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// An append-only JSONL event sink shared across workers.
pub struct EventLog {
    out: Mutex<BufWriter<File>>,
}

impl EventLog {
    /// Create (truncate) the event file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<EventLog> {
        let file = File::create(path)?;
        Ok(EventLog {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Append one event.  `fields` are `(key, value)` pairs where the value
    /// is already rendered as JSON (use [`json::string`] / [`json::number`]
    /// or plain integer formatting).  Errors are swallowed: telemetry must
    /// never fail a campaign.
    pub fn emit(&self, event: &str, fields: &[(&str, String)]) {
        let mut line = format!(
            "{{\"schema\":{},\"ts_ms\":{},\"event\":{}",
            json::string(EVENTS_SCHEMA),
            now_ms(),
            json::string(event)
        );
        for (key, value) in fields {
            line.push(',');
            line.push_str(&json::string(key));
            line.push(':');
            line.push_str(value);
        }
        line.push_str("}\n");
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_schema_tagged_jsonl() {
        let path =
            std::env::temp_dir().join(format!("gauntlet-events-test-{}.jsonl", std::process::id()));
        let log = EventLog::create(&path).expect("create event log");
        log.emit("campaign_start", &[("seeds", "10".to_string())]);
        log.emit(
            "bug",
            &[
                ("seed", "3".to_string()),
                ("kind", json::string("Semantic")),
            ],
        );
        drop(log);

        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed = json::parse(line).expect("line parses");
            assert_eq!(
                parsed.get("schema").and_then(|s| s.as_str()),
                Some(EVENTS_SCHEMA)
            );
            assert!(parsed.get("ts_ms").and_then(|t| t.as_u64()).is_some());
            assert!(parsed.get("event").and_then(|e| e.as_str()).is_some());
        }
        assert_eq!(
            json::parse(lines[1])
                .unwrap()
                .get("kind")
                .and_then(|k| k.as_str()),
            Some("Semantic")
        );
        let _ = std::fs::remove_file(&path);
    }
}
