//! Out-of-band JSONL event log.
//!
//! Every line is one JSON object tagged `"schema":"gauntlet-events-v1"` with
//! a wall-clock `ts_ms` timestamp.  The log is *explicitly excluded* from the
//! deterministic artifacts: reports and corpus bytes are identical whether or
//! not an event log is attached, and nothing in the engine ever reads one
//! back.  Timestamps and event interleaving are schedule-dependent by nature
//! — that is the point of an out-of-band channel.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;

/// Schema tag carried by every event line.
pub const EVENTS_SCHEMA: &str = "gauntlet-events-v1";

/// Every event kind the in-tree emitters produce: the campaign engine's
/// per-run events plus the fleet coordinator's lifecycle events.  Consumers
/// (`examples/validate_events.rs`) treat kinds outside this list as a
/// *warning*, not an error — the schema is forward-compatible by
/// construction, so a newer emitter never breaks an older validator.
pub const KNOWN_EVENTS: &[&str] = &[
    // Campaign engine (`ParallelCampaign`).
    "campaign_start",
    "campaign_end",
    "seed",
    "bug",
    "epoch",
    "cache",
    // Fleet coordinator (`gauntlet-fleet`).
    "fleet_start",
    "fleet_end",
    "worker_spawn",
    "worker_exit",
    "shard_assign",
    "shard_done",
    "shard_reassign",
    "checkpoint",
];

/// Milliseconds since the Unix epoch, for event timestamps.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// An append-only JSONL event sink shared across workers.  Usually a file
/// ([`EventLog::create`]); fleet workers instead hand it a framing adapter
/// over their stdout protocol channel ([`EventLog::with_sink`]).
pub struct EventLog {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl EventLog {
    /// Create (truncate) the event file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<EventLog> {
        let file = File::create(path)?;
        Ok(EventLog::with_sink(Box::new(file)))
    }

    /// Wrap an arbitrary writer (a pipe, a protocol framer, a test buffer).
    pub fn with_sink(sink: Box<dyn Write + Send>) -> EventLog {
        EventLog {
            out: Mutex::new(BufWriter::new(sink)),
        }
    }

    /// Append one event.  `fields` are `(key, value)` pairs where the value
    /// is already rendered as JSON (use [`json::string`] / [`json::number`]
    /// or plain integer formatting).  Errors are swallowed: telemetry must
    /// never fail a campaign.
    pub fn emit(&self, event: &str, fields: &[(&str, String)]) {
        let mut tail = format!(",\"event\":{}", json::string(event));
        for (key, value) in fields {
            tail.push(',');
            tail.push_str(&json::string(key));
            tail.push(':');
            tail.push_str(value);
        }
        tail.push('}');
        if let Ok(mut out) = self.out.lock() {
            // The timestamp is taken *under* the writer lock so that write
            // order and `ts_ms` order agree: concurrent campaign threads
            // share one log, and the event validator checks per-process
            // monotonicity.
            let head = format!(
                "{{\"schema\":{},\"ts_ms\":{}",
                json::string(EVENTS_SCHEMA),
                now_ms()
            );
            let _ = out.write_all(head.as_bytes());
            let _ = out.write_all(tail.as_bytes());
            let _ = out.write_all(b"\n");
            let _ = out.flush();
        }
    }

    /// Append one already-rendered JSON object as its own line.  Used by the
    /// fleet coordinator to relay worker events (which already carry their
    /// own `ts_ms`) into the merged log verbatim, plus provenance.
    pub fn emit_raw(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_schema_tagged_jsonl() {
        let path =
            std::env::temp_dir().join(format!("gauntlet-events-test-{}.jsonl", std::process::id()));
        let log = EventLog::create(&path).expect("create event log");
        log.emit("campaign_start", &[("seeds", "10".to_string())]);
        log.emit(
            "bug",
            &[
                ("seed", "3".to_string()),
                ("kind", json::string("Semantic")),
            ],
        );
        drop(log);

        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed = json::parse(line).expect("line parses");
            assert_eq!(
                parsed.get("schema").and_then(|s| s.as_str()),
                Some(EVENTS_SCHEMA)
            );
            assert!(parsed.get("ts_ms").and_then(|t| t.as_u64()).is_some());
            assert!(parsed.get("event").and_then(|e| e.as_str()).is_some());
        }
        assert_eq!(
            json::parse(lines[1])
                .unwrap()
                .get("kind")
                .and_then(|k| k.as_str()),
            Some("Semantic")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn custom_sinks_receive_framed_and_raw_lines() {
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let log = EventLog::with_sink(Box::new(shared.clone()));
        log.emit("fleet_start", &[("workers", "2".to_string())]);
        log.emit_raw("{\"schema\":\"gauntlet-events-v1\",\"ts_ms\":1,\"event\":\"seed\"}");
        drop(log);

        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("emit line parses");
        assert_eq!(
            first.get("event").and_then(|e| e.as_str()),
            Some("fleet_start")
        );
        assert!(KNOWN_EVENTS.contains(&"fleet_start"));
        let second = json::parse(lines[1]).expect("raw line parses");
        assert_eq!(second.get("ts_ms").and_then(|t| t.as_u64()), Some(1));
    }
}
