//! `gauntlet-telemetry` — the flight recorder.
//!
//! Observation-only instrumentation for the campaign engine, in four parts:
//!
//! 1. **Span-based stage tracing** ([`Recorder`], [`Stage`], [`Span`]): a
//!    per-worker recorder installed thread-locally by the campaign.  The
//!    instrumented crates (`p4c`, `smt`, `p4-symbolic`, `p4-mutate`,
//!    `p4-reduce`, `core`) call the free functions in this module at their
//!    stage boundaries; with no recorder installed every call is one
//!    thread-local read and nothing else — in particular no `Instant::now()`
//!    — so a telemetry-off campaign pays effectively zero overhead.
//! 2. **Latency histograms** ([`LatencyHistogram`]): log-bucketed
//!    microsecond histograms whose merge is element-wise addition, keeping
//!    the aggregate independent of the work-stealing schedule.
//! 3. **JSONL event log** ([`EventLog`]): out-of-band wall-clock events,
//!    schema-tagged `gauntlet-events-v1`, excluded from deterministic
//!    artifacts by construction.
//! 4. **Progress heartbeat** ([`ProgressSink`], [`Heartbeat`]): live stderr
//!    status (seeds/sec, bugs, cache hit rate, ETA).
//!
//! The mirror-image discipline of `p4c::coverage` applies: recording is a
//! no-op without an installed sink, the sink is installed and drained by
//! exactly one layer (the campaign), and merges are commutative so the
//! aggregated counters are schedule-independent.  Telemetry must never
//! change what a campaign computes: the determinism matrix test pins
//! reports and corpus bytes byte-identical with telemetry on and off.

pub mod events;
pub mod histogram;
pub mod json;
pub mod progress;
pub mod recorder;

pub use events::{now_ms, EventLog, EVENTS_SCHEMA, KNOWN_EVENTS};
pub use histogram::LatencyHistogram;
pub use progress::{Heartbeat, ProgressSink};
pub use recorder::{Recorder, Stage, StageStats};

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The worker's recorder, if telemetry is on.  A single slot (not a
    /// stack): exactly one layer — the campaign worker loop — installs and
    /// drains it, and the instrumented crates only ever *add* to it.
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Install a recorder on this thread, returning any previously installed
/// one (campaign workers install a fresh recorder; nesting would indicate a
/// layering bug but is tolerated for tests).
pub fn install(recorder: Recorder) -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().replace(recorder))
}

/// Remove and return this thread's recorder.
pub fn take() -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().take())
}

/// Whether a recorder is installed on this thread.
pub fn enabled() -> bool {
    RECORDER.with(|slot| slot.borrow().is_some())
}

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    RECORDER.with(|slot| {
        if let Some(recorder) = slot.borrow_mut().as_mut() {
            f(recorder);
        }
    });
}

/// An in-flight stage span.  Begin one at a stage boundary; the elapsed
/// time is recorded when the guard drops, so spans survive panics unwinding
/// through a crashing pass the same way coverage scopes do.  When no
/// recorder is installed the span is inert and never reads the clock.
#[derive(Debug)]
pub struct Span {
    stage: Stage,
    started: Option<Instant>,
}

impl Span {
    pub fn begin(stage: Stage) -> Span {
        Span {
            stage,
            started: enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let us = started.elapsed().as_micros() as u64;
            with_recorder(|recorder| recorder.record_stage(self.stage, us));
        }
    }
}

/// Run `f` inside a span for `stage`.
pub fn time<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    let _span = Span::begin(stage);
    f()
}

/// Start timing one solver query.  Returns `None` (and skips the clock
/// read) when telemetry is off; pass the result to [`query_finish`].
pub fn query_start() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Record one solver-query latency into the histogram.
pub fn query_finish(started: Option<Instant>) {
    if let Some(started) = started {
        let us = started.elapsed().as_micros() as u64;
        with_recorder(|recorder| recorder.record_solver_query(us));
    }
}

/// Count one execution of a compiler pass.
pub fn count_pass(pass: &str) {
    with_recorder(|recorder| recorder.count_pass(pass));
}

/// Count one fired rewrite rule, keyed `"pass/rule"`.
pub fn count_rule(key: &str) {
    with_recorder(|recorder| recorder.count_rule(key));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_no_ops_without_a_recorder() {
        assert!(!enabled());
        count_pass("ConstantFolding");
        count_rule("ConstantFolding/fold_arith");
        query_finish(query_start());
        time(Stage::Gen, || ());
        assert!(take().is_none());
    }

    #[test]
    fn installed_recorder_collects_spans_and_counters() {
        install(Recorder::new());
        time(Stage::Compile, || {
            count_pass("ConstantFolding");
            count_rule("ConstantFolding/fold_arith");
        });
        query_finish(query_start());
        let recorder = take().expect("recorder installed");
        assert_eq!(recorder.stage(Stage::Compile).spans, 1);
        assert_eq!(recorder.passes()["ConstantFolding"], 1);
        assert_eq!(recorder.rules()["ConstantFolding/fold_arith"], 1);
        assert_eq!(recorder.solver().count(), 1);
        assert!(!enabled());
    }

    #[test]
    fn span_records_through_unwind() {
        install(Recorder::new());
        let result = std::panic::catch_unwind(|| {
            let _span = Span::begin(Stage::Compile);
            panic!("pass bug");
        });
        assert!(result.is_err());
        let recorder = take().expect("recorder installed");
        assert_eq!(recorder.stage(Stage::Compile).spans, 1);
    }
}
