//! Log-bucketed latency histograms.
//!
//! Buckets are powers of two over microseconds, so merging two histograms is
//! plain element-wise addition: associative, commutative, and therefore
//! independent of the order in which per-worker recorders are folded together
//! at the epoch barrier.  Percentiles are reconstructed from the buckets
//! (upper-bound estimate, clamped to the exact observed maximum), matching
//! the `p50_us`/`p90_us`/`p99_us`/`max_us` fields the committed `BENCH_*.json`
//! trajectory files carry.

/// Number of power-of-two buckets.  Bucket 63 holds everything from
/// `2^62` µs up, far beyond any realistic solver query.
const BUCKETS: usize = 64;

/// A latency histogram over microsecond samples with power-of-two buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    total_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

/// Bucket index for a sample: the number of significant bits, so bucket `i`
/// covers `[2^(i-1), 2^i - 1]` (bucket 0 covers exactly 0).
fn bucket_index(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, used as the percentile estimate.
fn bucket_upper(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Fold another histogram into this one.  Element-wise addition, so the
    /// result is independent of merge order and grouping.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Exact maximum sample, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`), clamped to
    /// the exact observed maximum.  Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).min(self.max_us);
            }
        }
        self.max_us
    }

    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.p99_us(), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped_to_max() {
        let mut h = LatencyHistogram::new();
        for us in [3u64, 5, 9, 17, 900, 1100] {
            h.record(us);
        }
        assert!(h.p50_us() <= h.p90_us());
        assert!(h.p90_us() <= h.p99_us());
        assert!(h.p99_us() <= h.max_us());
        assert_eq!(h.max_us(), 1100);
        assert_eq!(h.count(), 6);
        assert_eq!(h.total_us(), 3 + 5 + 9 + 17 + 900 + 1100);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            a.record(us);
        }
        for us in [1000u64, 10_000] {
            b.record(us);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = LatencyHistogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            direct.record(us);
        }
        assert_eq!(merged, direct);
    }
}
