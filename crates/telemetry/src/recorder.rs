//! The per-worker flight recorder: span-based stage stats, per-pass and
//! per-rule counters, and the solver-query latency histogram.
//!
//! One `Recorder` lives thread-locally on each worker (installed by the
//! campaign when `HuntConfig::telemetry` is set) and is merged into the
//! pool-wide aggregate at the epoch barrier.  All merges are plain addition
//! over sorted maps and fixed arrays, so the aggregated *counters* (span
//! counts, pass executions, fired rules, query counts) are independent of
//! the work-stealing schedule; the *timings* are wall-clock and therefore
//! run-descriptive, which is why the whole summary is excluded from
//! deterministic artifacts alongside `elapsed`.

use std::collections::BTreeMap;

use crate::histogram::LatencyHistogram;
use crate::json;

/// The pipeline stages a span can be attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Random program generation (`p4-gen`).
    Gen,
    /// The reference pass pipeline (`p4c::Compiler::compile`).
    Compile,
    /// Pair-wise translation validation (`ValidationSession::check_pair`).
    Validate,
    /// Symbolic test generation + target replay (`check_target` /
    /// `check_differential`).
    Testgen,
    /// Metamorphic mutant checking (`MetamorphicChecker::check`).
    Mutate,
    /// Delta-debugging reduction (`Reducer::reduce`).
    Reduce,
}

impl Stage {
    pub const ALL: [Stage; 6] = [
        Stage::Gen,
        Stage::Compile,
        Stage::Validate,
        Stage::Testgen,
        Stage::Mutate,
        Stage::Reduce,
    ];

    /// Stable lower-case name used in JSON output and event lines.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Gen => "gen",
            Stage::Compile => "compile",
            Stage::Validate => "validate",
            Stage::Testgen => "testgen",
            Stage::Mutate => "mutate",
            Stage::Reduce => "reduce",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Gen => 0,
            Stage::Compile => 1,
            Stage::Validate => 2,
            Stage::Testgen => 3,
            Stage::Mutate => 4,
            Stage::Reduce => 5,
        }
    }
}

/// Aggregate statistics for one stage.
///
/// Spans nest (a `Validate` span runs inside a `Mutate` span when a mutant
/// is proved equivalent), so stage totals measure time *within* that stage
/// and do not sum to wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Number of completed spans.
    pub spans: u64,
    /// Total time spent inside the stage, in microseconds.
    pub total_us: u64,
}

/// A thread-safe-by-construction flight recorder: each worker owns one
/// exclusively and the campaign merges them behind the epoch barrier.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recorder {
    stages: [StageStats; 6],
    passes: BTreeMap<String, u64>,
    rules: BTreeMap<String, u64>,
    solver: LatencyHistogram,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed span for `stage`.
    pub fn record_stage(&mut self, stage: Stage, us: u64) {
        let slot = &mut self.stages[stage.index()];
        slot.spans += 1;
        slot.total_us = slot.total_us.saturating_add(us);
    }

    /// Count one execution of a compiler pass.
    pub fn count_pass(&mut self, pass: &str) {
        *self.passes.entry(pass.to_string()).or_insert(0) += 1;
    }

    /// Count one fired rewrite rule, keyed `pass/rule` like the coverage map.
    pub fn count_rule(&mut self, key: &str) {
        *self.rules.entry(key.to_string()).or_insert(0) += 1;
    }

    /// Record one solver query latency, in microseconds.
    pub fn record_solver_query(&mut self, us: u64) {
        self.solver.record(us);
    }

    /// Stats for one stage.
    pub fn stage(&self, stage: Stage) -> StageStats {
        self.stages[stage.index()]
    }

    /// Per-pass execution counts, sorted by pass name.
    pub fn passes(&self) -> &BTreeMap<String, u64> {
        &self.passes
    }

    /// Per-rule fired-rewrite counts, sorted by `pass/rule` key.
    pub fn rules(&self) -> &BTreeMap<String, u64> {
        &self.rules
    }

    /// The solver-query latency histogram.
    pub fn solver(&self) -> &LatencyHistogram {
        &self.solver
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.spans == 0)
            && self.passes.is_empty()
            && self.rules.is_empty()
            && self.solver.count() == 0
    }

    /// Fold another recorder into this one.  Addition everywhere, so the
    /// result is independent of merge order and grouping — the property the
    /// proptest suite pins down.
    pub fn merge(&mut self, other: &Recorder) {
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.spans += theirs.spans;
            mine.total_us = mine.total_us.saturating_add(theirs.total_us);
        }
        for (pass, n) in &other.passes {
            *self.passes.entry(pass.clone()).or_insert(0) += n;
        }
        for (rule, n) in &other.rules {
            *self.rules.entry(rule.clone()).or_insert(0) += n;
        }
        self.solver.merge(&other.solver);
    }

    /// Render the recorder as one JSON object (stages, pass/rule counters,
    /// solver tail), used for the `telemetry` block of
    /// `gauntlet-report-v1`.  Key order is fixed so the output is stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":{");
        let mut first = true;
        for stage in Stage::ALL {
            let stats = self.stage(stage);
            if stats.spans == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"spans\":{},\"total_us\":{}}}",
                json::string(stage.name()),
                stats.spans,
                stats.total_us
            ));
        }
        out.push_str("},\"passes\":{");
        for (index, (pass, n)) in self.passes.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::string(pass), n));
        }
        out.push_str("},\"rules\":{");
        for (index, (rule, n)) in self.rules.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::string(rule), n));
        }
        out.push_str(&format!(
            "}},\"solver\":{{\"queries\":{},\"total_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}}}",
            self.solver.count(),
            self.solver.total_us(),
            self.solver.p50_us(),
            self.solver.p90_us(),
            self.solver.p99_us(),
            self.solver.max_us()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = Recorder::new();
        a.record_stage(Stage::Gen, 10);
        a.count_pass("ConstantFolding");
        a.count_rule("ConstantFolding/fold_add");
        a.record_solver_query(100);

        let mut b = Recorder::new();
        b.record_stage(Stage::Gen, 5);
        b.record_stage(Stage::Validate, 7);
        b.count_pass("ConstantFolding");
        b.count_pass("StrengthReduction");
        b.record_solver_query(200);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(
            merged.stage(Stage::Gen),
            StageStats {
                spans: 2,
                total_us: 15
            }
        );
        assert_eq!(merged.stage(Stage::Validate).spans, 1);
        assert_eq!(merged.passes()["ConstantFolding"], 2);
        assert_eq!(merged.passes()["StrengthReduction"], 1);
        assert_eq!(merged.rules()["ConstantFolding/fold_add"], 1);
        assert_eq!(merged.solver().count(), 2);
    }

    #[test]
    fn empty_recorder_reports_empty() {
        assert!(Recorder::new().is_empty());
        let mut r = Recorder::new();
        r.count_pass("p");
        assert!(!r.is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = Recorder::new();
        r.record_stage(Stage::Compile, 42);
        r.count_pass("ConstantFolding");
        r.count_rule("ConstantFolding/fold_add");
        r.record_solver_query(7);
        let json = r.to_json();
        let parsed = crate::json::parse(&json).expect("recorder JSON parses");
        assert_eq!(
            parsed
                .get("stages")
                .and_then(|s| s.get("compile"))
                .and_then(|c| c.get("spans"))
                .and_then(|n| n.as_u64()),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("solver")
                .and_then(|s| s.get("queries"))
                .and_then(|n| n.as_u64()),
            Some(1)
        );
    }
}
