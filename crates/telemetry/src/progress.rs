//! Live stderr progress: a heartbeat line for campaigns and a `note` sink
//! for run-descriptive one-liners (the cache summary in the examples).
//!
//! Everything goes to stderr so stdout — the deterministic rendered report —
//! stays byte-identical across `--jobs`, telemetry settings, and `--quiet`.

/// A point-in-time campaign progress snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct Heartbeat {
    /// Seeds committed so far.
    pub done: usize,
    /// Total seeds in the campaign.
    pub total: usize,
    /// Distinct bugs found so far.
    pub bugs: usize,
    /// Committed seeds per second since campaign start.
    pub seeds_per_sec: f64,
    /// Epoch-cache hit rate over all lookups, when a cache is attached.
    pub cache_hit_rate: Option<f64>,
    /// Estimated seconds remaining at the current rate.
    pub eta_secs: Option<f64>,
}

impl Heartbeat {
    /// Render the single-line form used on stderr.
    pub fn render(&self) -> String {
        let mut line = format!(
            "[gauntlet] {}/{} seeds · {:.1} seeds/s · {} bug(s)",
            self.done, self.total, self.seeds_per_sec, self.bugs
        );
        if let Some(rate) = self.cache_hit_rate {
            line.push_str(&format!(" · cache {:.0}% hit", rate * 100.0));
        }
        // A zero rate yields an infinite (or NaN) ETA — render it as
        // unknown rather than the literal `ETA infs`.
        match self.eta_secs.filter(|eta| eta.is_finite()) {
            Some(eta) => line.push_str(&format!(" · ETA {eta:.0}s")),
            None => line.push_str(" · ETA —"),
        }
        line
    }
}

/// The stderr sink.  With `enabled == false` (`--quiet`) every call is a
/// no-op, so examples route all their run-descriptive prints through one
/// object instead of scattering `eprintln!`s.
#[derive(Clone, Copy, Debug)]
pub struct ProgressSink {
    enabled: bool,
}

impl ProgressSink {
    pub fn new(enabled: bool) -> Self {
        ProgressSink { enabled }
    }

    /// A silent sink.
    pub fn quiet() -> Self {
        ProgressSink { enabled: false }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Print one run-descriptive line to stderr.
    pub fn note(&self, message: &str) {
        if self.enabled {
            eprintln!("{message}");
        }
    }

    /// Print a heartbeat line to stderr.
    pub fn heartbeat(&self, beat: &Heartbeat) {
        if self.enabled {
            eprintln!("{}", beat.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_renders_all_fields() {
        let beat = Heartbeat {
            done: 40,
            total: 100,
            bugs: 3,
            seeds_per_sec: 12.34,
            cache_hit_rate: Some(0.876),
            eta_secs: Some(4.9),
        };
        assert_eq!(
            beat.render(),
            "[gauntlet] 40/100 seeds · 12.3 seeds/s · 3 bug(s) · cache 88% hit · ETA 5s"
        );
    }

    #[test]
    fn heartbeat_omits_missing_cache_and_eta() {
        let beat = Heartbeat {
            done: 1,
            total: 10,
            bugs: 0,
            seeds_per_sec: 0.5,
            cache_hit_rate: None,
            eta_secs: None,
        };
        assert_eq!(
            beat.render(),
            "[gauntlet] 1/10 seeds · 0.5 seeds/s · 0 bug(s) · ETA —"
        );
    }

    #[test]
    fn heartbeat_clamps_non_finite_eta_to_unknown() {
        // A stalled campaign has rate 0, so the naive division produces an
        // infinite ETA; it must render as unknown, not `ETA infs`.
        let beat = Heartbeat {
            done: 0,
            total: 10,
            bugs: 0,
            seeds_per_sec: 0.0,
            cache_hit_rate: None,
            eta_secs: Some(f64::INFINITY),
        };
        assert_eq!(
            beat.render(),
            "[gauntlet] 0/10 seeds · 0.0 seeds/s · 0 bug(s) · ETA —"
        );
        let nan = Heartbeat {
            eta_secs: Some(f64::NAN),
            ..beat
        };
        assert!(nan.render().ends_with("ETA —"));
    }
}
