//! Minimal hand-rolled JSON: escape/serialize helpers for the writers and a
//! small recursive-descent parser for the readers.
//!
//! The workspace's `serde` shim is deliberately a no-op (the derive macros
//! generate nothing), so every JSON producer in the repo hand-formats its
//! output with a fixed key order — `trajectory.rs` set the precedent.  This
//! module centralises the escaping rules and adds the inverse direction: a
//! parser good enough to validate JSONL event streams and to prove the
//! rendered tables derivable from `gauntlet-report-v1` documents.

use std::collections::BTreeMap;

/// Escape and quote a string as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` the way the benches do: finite, plain decimal notation.
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.  Objects preserve their key order (the writers all
/// use fixed orders, and the golden tests check them).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral numbers only — fails on fractional values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object fields as a sorted map of integral counters; `None` if any
    /// value is not an integral number.
    pub fn as_counter_map(&self) -> Option<BTreeMap<String, u64>> {
        let fields = self.as_object()?;
        let mut map = BTreeMap::new();
        for (key, value) in fields {
            map.insert(key.clone(), value.as_u64()?);
        }
        Some(map)
    }
}

/// Render a parsed [`Json`] value back to compact JSON, preserving object
/// key order.  `parse` → `render` round-trips every document the in-tree
/// writers produce (integral numbers below 2^53 print without a fraction,
/// which covers `ts_ms` and every counter).
pub fn render(value: &Json) -> String {
    match value {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Number(n) => number(*n),
        Json::String(s) => string(s),
        Json::Array(items) => {
            let mut out = String::from("[");
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                out.push_str(&render(item));
            }
            out.push(']');
            out
        }
        Json::Object(fields) => {
            let mut out = String::from("{");
            for (index, (key, item)) in fields.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                out.push_str(&string(key));
                out.push(':');
                out.push_str(&render(item));
            }
            out.push('}');
            out
        }
    }
}

/// Parse one JSON document.  Trailing non-whitespace is an error, so a JSONL
/// line with garbage appended fails loudly.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let original = "line\none \"quoted\" \\ tab\t√";
        let quoted = string(original);
        let parsed = parse(&quoted).expect("parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#;
        let parsed = parse(doc).expect("parses");
        assert_eq!(
            parsed.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("b")
                .and_then(|b| b.get("c"))
                .and_then(|c| c.as_bool()),
            Some(true)
        );
        assert_eq!(parsed.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(parsed.get("e").and_then(|e| e.as_str()), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_numbers() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": 1.2.3}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn render_round_trips_preserving_key_order() {
        let doc = r#"{"b":[1,2,-3],"a":{"c":true,"d":null},"e":"x\ny","n":4294967296}"#;
        let parsed = parse(doc).expect("parses");
        assert_eq!(render(&parsed), doc);
        assert_eq!(parse(&render(&parsed)), Ok(parsed));
    }

    #[test]
    fn u64_rejects_fractions() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
