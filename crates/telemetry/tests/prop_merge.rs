//! Property tests for the merge laws the epoch barrier relies on: folding
//! per-worker recorders together must be associative, commutative, and
//! identity-respecting, so the aggregate telemetry is independent of the
//! work-stealing schedule (which worker saw which seed, and in what order
//! the workers finished).

use gauntlet_telemetry::{LatencyHistogram, Recorder, Stage};
use proptest::prelude::*;

/// Deterministically expand a compact seed into a sequence of recorder
/// operations, so each proptest case exercises a different mixed workload.
fn recorder_from(seed: u64) -> Recorder {
    let mut recorder = Recorder::new();
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..(seed % 17) + 1 {
        let roll = next();
        match roll % 4 {
            0 => {
                let stage = Stage::ALL[(roll >> 8) as usize % Stage::ALL.len()];
                recorder.record_stage(stage, (roll >> 16) % 100_000);
            }
            1 => recorder.count_pass(
                ["ConstantFolding", "Predication", "FlattenBlocks"][(roll >> 8) as usize % 3],
            ),
            2 => recorder.count_rule(
                ["ConstantFolding/fold_arith", "Predication/predicate_then"]
                    [(roll >> 8) as usize % 2],
            ),
            _ => recorder.record_solver_query((roll >> 8) % 10_000_000),
        }
    }
    recorder
}

fn histogram_from(seed: u64) -> LatencyHistogram {
    let mut histogram = LatencyHistogram::new();
    let mut state = seed | 1;
    for _ in 0..(seed % 13) + 1 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        histogram.record(state % 50_000_000);
    }
    histogram
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Histogram merge is associative and commutative, and merging the empty
    /// histogram is the identity.
    #[test]
    fn histogram_merge_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ha, hb, hc) = (histogram_from(a), histogram_from(b), histogram_from(c));

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Identity.
        let mut with_empty = ha.clone();
        with_empty.merge(&LatencyHistogram::new());
        prop_assert_eq!(&with_empty, &ha);

        // Derived percentiles agree however the merge was grouped.
        prop_assert_eq!(left.p50_us(), right.p50_us());
        prop_assert_eq!(left.p99_us(), right.p99_us());
        prop_assert_eq!(left.max_us(), right.max_us());
    }

    /// Recorder merge is schedule-independent: any permutation and grouping
    /// of per-worker recorders folds to the same aggregate.
    #[test]
    fn recorder_merge_is_schedule_independent(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ra, rb, rc) = (recorder_from(a), recorder_from(b), recorder_from(c));

        // Fold in every order of the 3-element symmetric group.
        let orders: [[&Recorder; 3]; 6] = [
            [&ra, &rb, &rc], [&ra, &rc, &rb], [&rb, &ra, &rc],
            [&rb, &rc, &ra], [&rc, &ra, &rb], [&rc, &rb, &ra],
        ];
        let folded: Vec<Recorder> = orders
            .iter()
            .map(|order| {
                let mut aggregate = Recorder::new();
                for recorder in order {
                    aggregate.merge(recorder);
                }
                aggregate
            })
            .collect();
        for other in &folded[1..] {
            prop_assert_eq!(&folded[0], other);
        }

        // And the grouped fold (a ⊕ (b ⊕ c)) matches too.
        let mut grouped_inner = rb.clone();
        grouped_inner.merge(&rc);
        let mut grouped = ra.clone();
        grouped.merge(&grouped_inner);
        prop_assert_eq!(&folded[0], &grouped);

        // The JSON rendering is a pure function of the aggregate.
        prop_assert_eq!(folded[0].to_json(), grouped.to_json());
    }
}
