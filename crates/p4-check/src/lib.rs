//! # p4-check — type checker and semantic checks for the P4-16 subset
//!
//! The checker enforces the static rules that make a program "type correct"
//! and "statically conforming" (levels 4–5 of McKeeman's taxonomy, paper
//! Table 1): every name resolves, expressions are well-typed, assignments
//! target writable l-values, arguments bound to `out`/`inout` parameters are
//! writable l-values, tables reference declared actions, and the package
//! instantiation matches the architecture's block signatures.
//!
//! Gauntlet's random program generator promises to emit only programs that
//! pass this checker (paper §4.2: a generated program rejected by the parser
//! or type checker is a bug in the generator, not the compiler); the
//! property tests in `p4-gen` enforce exactly that contract against this
//! implementation.

pub mod typecheck;

pub use typecheck::{
    check_program, check_program_with, program_well_typed, CheckError, CheckErrorKind, CheckOptions,
};
