//! The type checker proper.

use p4_ir::{
    type_of, Architecture, BinOp, Block, CallExpr, ControlDecl, Declaration, Expr, FunctionDecl,
    ParserDecl, Program, Scope, Statement, Transition, Type, TypeEnv, UnOp,
};
use std::collections::HashMap;
use std::fmt;

/// Classification of a check failure; used by tests and the campaign
/// reports to group diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckErrorKind {
    UnknownType,
    UnknownName,
    TypeMismatch,
    NotAnLValue,
    ReadOnlyTarget,
    BadSlice,
    BadCall,
    BadTable,
    BadPackage,
    UninitializedRead,
}

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    pub kind: CheckErrorKind,
    pub message: String,
    /// The declaration (control/parser/action/function) the error was found in.
    pub context: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] in `{}`: {}",
            self.kind, self.context, self.message
        )
    }
}

/// Options controlling strictness.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Warn (as errors) about reads of `out` parameters before any write.
    /// Reading such values is *undefined* rather than illegal in P4-16, so
    /// this defaults to off; Gauntlet's own semantics model them as fresh
    /// unknowns instead.
    pub reject_uninitialized_reads: bool,
    /// Stop checking once this many errors have been collected.  Callers
    /// that only need a yes/no verdict (the `p4-reduce` candidate gate runs
    /// the checker thousands of times per reduction) set this to 1 so a
    /// clearly broken candidate is rejected without checking the rest of
    /// the program.
    pub error_limit: Option<usize>,
}

/// Checks a whole program, returning all diagnostics found.
/// An empty vector means the program is well-typed.
pub fn check_program(program: &Program) -> Vec<CheckError> {
    check_program_with(program, &CheckOptions::default())
}

/// Fast boolean verdict: does the program typecheck?  Equivalent to
/// `check_program(program).is_empty()` but stops at the first error, which
/// makes it the right entry point for hot candidate-filtering loops.
pub fn program_well_typed(program: &Program) -> bool {
    check_program_with(
        program,
        &CheckOptions {
            error_limit: Some(1),
            ..CheckOptions::default()
        },
    )
    .is_empty()
}

/// Checks a whole program with explicit options.
pub fn check_program_with(program: &Program, options: &CheckOptions) -> Vec<CheckError> {
    let env = TypeEnv::from_program(program);
    let mut checker = Checker {
        env: &env,
        program,
        options,
        errors: Vec::new(),
        context: String::new(),
        callables: collect_callables(program),
    };
    checker.check();
    checker.errors
}

/// Signature of a callable object (action or function) visible to calls.
#[derive(Debug, Clone)]
struct CallableSig {
    params: Vec<p4_ir::Param>,
    /// Return type of the callable (kept for future call-in-expression
    /// checking; direct statement calls only need the parameter list).
    #[allow(dead_code)]
    return_type: Type,
}

fn collect_callables(program: &Program) -> HashMap<String, CallableSig> {
    let mut map = HashMap::new();
    // The implicit NoAction action always exists.
    map.insert(
        "NoAction".to_string(),
        CallableSig {
            params: Vec::new(),
            return_type: Type::Void,
        },
    );
    for decl in &program.declarations {
        match decl {
            Declaration::Action(a) => {
                map.insert(
                    a.name.clone(),
                    CallableSig {
                        params: a.params.clone(),
                        return_type: Type::Void,
                    },
                );
            }
            Declaration::Function(f) => {
                map.insert(
                    f.name.clone(),
                    CallableSig {
                        params: f.params.clone(),
                        return_type: f.return_type.clone(),
                    },
                );
            }
            Declaration::Control(c) => {
                for local in &c.locals {
                    if let Declaration::Action(a) = local {
                        map.insert(
                            a.name.clone(),
                            CallableSig {
                                params: a.params.clone(),
                                return_type: Type::Void,
                            },
                        );
                    }
                }
            }
            _ => {}
        }
    }
    map
}

struct Checker<'a> {
    env: &'a TypeEnv,
    program: &'a Program,
    options: &'a CheckOptions,
    errors: Vec<CheckError>,
    context: String,
    callables: HashMap<String, CallableSig>,
}

impl<'a> Checker<'a> {
    fn error(&mut self, kind: CheckErrorKind, message: impl Into<String>) {
        if self.at_error_limit() {
            return;
        }
        self.errors.push(CheckError {
            kind,
            message: message.into(),
            context: self.context.clone(),
        });
    }

    /// True once the configured error limit has been reached; the main
    /// declaration loop bails out early and `error` drops further
    /// diagnostics.
    fn at_error_limit(&self) -> bool {
        matches!(self.options.error_limit, Some(limit) if self.errors.len() >= limit)
    }

    fn check(&mut self) {
        self.check_package();
        for decl in &self.program.declarations {
            if self.at_error_limit() {
                return;
            }
            match decl {
                Declaration::Control(c) => self.check_control(c),
                Declaration::Parser(p) => self.check_parser(p),
                Declaration::Function(f) => self.check_function(f),
                Declaration::Action(a) => {
                    self.context = format!("action {}", a.name);
                    let mut scope = Scope::new();
                    self.declare_params(&mut scope, &a.params);
                    self.check_block(&a.body, &mut scope, &Type::Void);
                }
                Declaration::Header(h) => self.check_fields(&h.name, &h.fields),
                Declaration::Struct(s) => self.check_fields(&s.name, &s.fields),
                _ => {}
            }
        }
    }

    fn check_fields(&mut self, owner: &str, fields: &[p4_ir::Field]) {
        self.context = owner.to_string();
        for field in fields {
            if !self.type_exists(&field.ty) {
                self.error(
                    CheckErrorKind::UnknownType,
                    format!("field `{}` has unknown type {}", field.name, field.ty),
                );
            }
        }
    }

    fn type_exists(&self, ty: &Type) -> bool {
        match ty {
            Type::Named(name) => {
                !matches!(self.env.resolve(ty), Type::Named(_) if self.env.aggregate(name).is_none())
            }
            _ => true,
        }
    }

    fn check_package(&mut self) {
        self.context = "package".into();
        let Some(arch) = Architecture::by_name(&self.program.architecture) else {
            self.error(
                CheckErrorKind::BadPackage,
                format!("unknown architecture `{}`", self.program.architecture),
            );
            return;
        };
        if self.program.package.package.is_empty() {
            self.error(
                CheckErrorKind::BadPackage,
                "missing `main` package instantiation",
            );
            return;
        }
        if self.program.package.package != arch.package_name {
            self.error(
                CheckErrorKind::BadPackage,
                format!(
                    "package `{}` does not match architecture package `{}`",
                    self.program.package.package, arch.package_name
                ),
            );
        }
        for block in &arch.blocks {
            let Some(decl_name) = self.program.package.binding(&block.slot) else {
                self.error(
                    CheckErrorKind::BadPackage,
                    format!("architecture slot `{}` is not bound", block.slot),
                );
                continue;
            };
            let decl = self.program.find(decl_name);
            let params = match (block.kind, decl) {
                (p4_ir::BlockKind::Parser, Some(Declaration::Parser(p))) => &p.params,
                (
                    p4_ir::BlockKind::Control | p4_ir::BlockKind::Deparser,
                    Some(Declaration::Control(c)),
                ) => &c.params,
                (_, Some(_)) => {
                    self.error(
                        CheckErrorKind::BadPackage,
                        format!(
                            "declaration `{decl_name}` has the wrong kind for slot `{}`",
                            block.slot
                        ),
                    );
                    continue;
                }
                (_, None) => {
                    self.error(
                        CheckErrorKind::BadPackage,
                        format!(
                            "slot `{}` references unknown declaration `{decl_name}`",
                            block.slot
                        ),
                    );
                    continue;
                }
            };
            if params.len() != block.params.len() {
                self.error(
                    CheckErrorKind::BadPackage,
                    format!(
                        "`{decl_name}` has {} parameters, slot `{}` expects {}",
                        params.len(),
                        block.slot,
                        block.params.len()
                    ),
                );
            }
        }
    }

    fn declare_params(&mut self, scope: &mut Scope, params: &[p4_ir::Param]) {
        for param in params {
            if !self.type_exists(&param.ty) {
                self.error(
                    CheckErrorKind::UnknownType,
                    format!("parameter `{}` has unknown type {}", param.name, param.ty),
                );
            }
            scope.declare(param.name.clone(), self.env.resolve(&param.ty));
        }
    }

    fn declare_top_level_constants(&mut self, scope: &mut Scope) {
        for decl in &self.program.declarations {
            match decl {
                Declaration::Constant(c) => scope.declare(c.name.clone(), self.env.resolve(&c.ty)),
                Declaration::Variable { name, ty, .. } => {
                    scope.declare(name.clone(), self.env.resolve(ty))
                }
                _ => {}
            }
        }
    }

    fn check_control(&mut self, control: &ControlDecl) {
        self.context = format!("control {}", control.name);
        let mut scope = Scope::new();
        self.declare_top_level_constants(&mut scope);
        self.declare_params(&mut scope, &control.params);
        // Local declarations: variables, constants, actions, tables.
        let mut local_tables: Vec<&p4_ir::TableDecl> = Vec::new();
        let mut local_actions: HashMap<String, CallableSig> = HashMap::new();
        for local in &control.locals {
            match local {
                Declaration::Variable { name, ty, init } => {
                    if let Some(init) = init {
                        self.check_expr_type(init, &self.env.resolve(ty), &scope);
                    }
                    scope.declare(name.clone(), self.env.resolve(ty));
                }
                Declaration::Constant(c) => {
                    self.check_expr_type(&c.value, &self.env.resolve(&c.ty), &scope);
                    scope.declare(c.name.clone(), self.env.resolve(&c.ty));
                }
                Declaration::Action(a) => {
                    self.context = format!("control {} / action {}", control.name, a.name);
                    let mut action_scope = scope.clone();
                    action_scope.push();
                    self.declare_params(&mut action_scope, &a.params);
                    self.check_block(&a.body, &mut action_scope, &Type::Void);
                    local_actions.insert(
                        a.name.clone(),
                        CallableSig {
                            params: a.params.clone(),
                            return_type: Type::Void,
                        },
                    );
                    self.context = format!("control {}", control.name);
                }
                Declaration::Table(t) => local_tables.push(t),
                _ => {}
            }
        }
        // Tables may reference actions declared later in the locals list, so
        // check them after all actions are known.
        for table in local_tables {
            self.context = format!("control {} / table {}", control.name, table.name);
            for key in &table.keys {
                if self.expr_type(&key.expr, &scope).is_none() {
                    self.error(
                        CheckErrorKind::BadTable,
                        format!(
                            "table key `{}` is not well-typed",
                            p4_ir::print_expr(&key.expr)
                        ),
                    );
                }
            }
            let mut refs: Vec<&p4_ir::ActionRef> = table.actions.iter().collect();
            refs.push(&table.default_action);
            for action_ref in refs {
                let known = action_ref.name == "NoAction"
                    || local_actions.contains_key(&action_ref.name)
                    || self.callables.contains_key(&action_ref.name);
                if !known {
                    self.error(
                        CheckErrorKind::BadTable,
                        format!("table references unknown action `{}`", action_ref.name),
                    );
                }
            }
            if !table
                .actions
                .iter()
                .any(|a| a.name == table.default_action.name)
                && table.default_action.name != "NoAction"
            {
                self.error(
                    CheckErrorKind::BadTable,
                    format!(
                        "default action `{}` is not in the table's action list",
                        table.default_action.name
                    ),
                );
            }
        }
        self.context = format!("control {}", control.name);
        let mut apply_scope = scope;
        apply_scope.push();
        self.check_block(&control.apply, &mut apply_scope, &Type::Void);
    }

    fn check_parser(&mut self, parser: &ParserDecl) {
        self.context = format!("parser {}", parser.name);
        let mut scope = Scope::new();
        self.declare_top_level_constants(&mut scope);
        self.declare_params(&mut scope, &parser.params);
        for local in &parser.locals {
            if let Declaration::Variable { name, ty, .. } = local {
                scope.declare(name.clone(), self.env.resolve(ty));
            }
        }
        let state_names: Vec<&str> = parser
            .states
            .iter()
            .map(|s| s.name.as_str())
            .chain(["accept", "reject"])
            .collect();
        if !parser.states.iter().any(|s| s.name == "start") {
            self.error(CheckErrorKind::UnknownName, "parser has no `start` state");
        }
        for state in &parser.states {
            self.context = format!("parser {} / state {}", parser.name, state.name);
            let mut state_scope = scope.clone();
            state_scope.push();
            for stmt in &state.statements {
                self.check_statement(stmt, &mut state_scope, &Type::Void);
            }
            match &state.transition {
                Transition::Direct(next) => {
                    if !state_names.contains(&next.as_str()) {
                        self.error(
                            CheckErrorKind::UnknownName,
                            format!("transition to unknown state `{next}`"),
                        );
                    }
                }
                Transition::Select { selector, cases } => {
                    if self.expr_type(selector, &state_scope).is_none() {
                        self.error(
                            CheckErrorKind::TypeMismatch,
                            "select expression is not well-typed",
                        );
                    }
                    for case in cases {
                        if !state_names.contains(&case.next_state.as_str()) {
                            self.error(
                                CheckErrorKind::UnknownName,
                                format!("transition to unknown state `{}`", case.next_state),
                            );
                        }
                    }
                }
            }
        }
    }

    fn check_function(&mut self, function: &FunctionDecl) {
        self.context = format!("function {}", function.name);
        let mut scope = Scope::new();
        self.declare_top_level_constants(&mut scope);
        self.declare_params(&mut scope, &function.params);
        self.check_block(&function.body, &mut scope, &function.return_type.clone());
    }

    fn check_block(&mut self, block: &Block, scope: &mut Scope, return_type: &Type) {
        scope.push();
        for stmt in &block.statements {
            self.check_statement(stmt, scope, return_type);
        }
        scope.pop();
    }

    fn check_statement(&mut self, stmt: &Statement, scope: &mut Scope, return_type: &Type) {
        match stmt {
            Statement::Assign { lhs, rhs } => {
                if !lhs.is_lvalue() {
                    self.error(
                        CheckErrorKind::NotAnLValue,
                        format!("cannot assign to `{}`", p4_ir::print_expr(lhs)),
                    );
                    return;
                }
                let lhs_ty = self.expr_type(lhs, scope);
                match lhs_ty {
                    Some(ty) => self.check_expr_type(rhs, &ty, scope),
                    None => self.error(
                        CheckErrorKind::UnknownName,
                        format!("unknown assignment target `{}`", p4_ir::print_expr(lhs)),
                    ),
                }
            }
            Statement::Call(call) => self.check_call(call, scope),
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr_type(cond, &Type::Bool, scope);
                self.check_statement(then_branch, scope, return_type);
                if let Some(else_stmt) = else_branch {
                    self.check_statement(else_stmt, scope, return_type);
                }
            }
            Statement::Block(block) => self.check_block(block, scope, return_type),
            Statement::Declare { name, ty, init } => {
                if !self.type_exists(ty) {
                    self.error(
                        CheckErrorKind::UnknownType,
                        format!("variable `{name}` has unknown type {ty}"),
                    );
                }
                if let Some(init) = init {
                    self.check_expr_type(init, &self.env.resolve(ty), scope);
                }
                scope.declare(name.clone(), self.env.resolve(ty));
            }
            Statement::Constant { name, ty, value } => {
                self.check_expr_type(value, &self.env.resolve(ty), scope);
                scope.declare(name.clone(), self.env.resolve(ty));
            }
            Statement::Return(expr) => match (expr, return_type) {
                (None, Type::Void) => {}
                (Some(_), Type::Void) => self.error(
                    CheckErrorKind::TypeMismatch,
                    "void callable returns a value",
                ),
                (None, _) => self.error(CheckErrorKind::TypeMismatch, "missing return value"),
                (Some(e), ty) => self.check_expr_type(e, &self.env.resolve(ty), scope),
            },
            Statement::Exit | Statement::Empty => {}
        }
    }

    fn check_call(&mut self, call: &CallExpr, scope: &Scope) {
        let method = call.method();
        match method {
            // Built-in extern-style methods.
            "apply" | "setValid" | "setInvalid" | "isValid" | "emit" | "extract" => {
                // Receiver existence: the root of the receiver path must be
                // in scope or name a local table.
                if let Some(root) = call.target.first() {
                    let is_table = self
                        .program
                        .controls()
                        .flat_map(|c| c.locals.iter())
                        .any(|d| matches!(d, Declaration::Table(t) if &t.name == root));
                    if scope.lookup(root).is_none() && !is_table && root != "packet" {
                        self.error(
                            CheckErrorKind::UnknownName,
                            format!("call receiver `{root}` is not declared"),
                        );
                    }
                }
                for arg in &call.args {
                    if self.expr_type(arg, scope).is_none() && !arg.is_lvalue() {
                        self.error(
                            CheckErrorKind::BadCall,
                            format!("argument `{}` is not well-typed", p4_ir::print_expr(arg)),
                        );
                    }
                }
            }
            name => {
                let Some(sig) = self.callables.get(name).cloned() else {
                    self.error(
                        CheckErrorKind::BadCall,
                        format!("call to unknown callable `{name}`"),
                    );
                    return;
                };
                // Direct invocations must supply every parameter (control
                // plane arguments only exist for table-bound actions).
                if call.args.len() != sig.params.len() {
                    self.error(
                        CheckErrorKind::BadCall,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            sig.params.len(),
                            call.args.len()
                        ),
                    );
                    return;
                }
                for (arg, param) in call.args.iter().zip(&sig.params) {
                    if param.direction.requires_lvalue() && !arg.is_lvalue() {
                        self.error(
                            CheckErrorKind::NotAnLValue,
                            format!(
                                "argument for `{}` ({}) must be a writable l-value",
                                param.name, param.direction
                            ),
                        );
                    }
                    let expected = self.env.resolve(&param.ty);
                    self.check_expr_type(arg, &expected, scope);
                }
            }
        }
    }

    /// Computes the type of an expression, reporting unknown names.
    fn expr_type(&mut self, expr: &Expr, scope: &Scope) -> Option<Type> {
        // Report unresolved path roots explicitly for better diagnostics.
        let mut paths = Vec::new();
        expr.collect_paths(&mut paths);
        for path in paths {
            if scope.lookup(path).is_none() && !self.is_global_name(path) {
                self.error(
                    CheckErrorKind::UnknownName,
                    format!("`{path}` is not declared"),
                );
                return None;
            }
        }
        self.validate_expr(expr, scope);
        type_of(self.env, scope, expr).or_else(|| self.literal_type(expr))
    }

    fn literal_type(&self, expr: &Expr) -> Option<Type> {
        match expr {
            Expr::Int { width: None, .. } => None,
            _ => None,
        }
    }

    fn is_global_name(&self, name: &str) -> bool {
        self.callables.contains_key(name)
            || self.program.declarations.iter().any(|d| d.name() == name)
            || name == "packet"
    }

    /// Structural validity checks that `type_of` does not perform.
    fn validate_expr(&mut self, expr: &Expr, scope: &Scope) {
        match expr {
            Expr::Slice { base, hi, lo } => {
                self.validate_expr(base, scope);
                if hi < lo {
                    self.error(
                        CheckErrorKind::BadSlice,
                        format!("slice [{hi}:{lo}] has hi < lo"),
                    );
                } else if let Some(width) = type_of(self.env, scope, base).and_then(|t| t.width()) {
                    if *hi >= width {
                        self.error(
                            CheckErrorKind::BadSlice,
                            format!("slice [{hi}:{lo}] exceeds operand width {width}"),
                        );
                    }
                }
            }
            Expr::Binary { op, left, right } => {
                self.validate_expr(left, scope);
                self.validate_expr(right, scope);
                if matches!(op, BinOp::And | BinOp::Or) {
                    for side in [left, right] {
                        if let Some(ty) = type_of(self.env, scope, side) {
                            if ty != Type::Bool {
                                self.error(
                                    CheckErrorKind::TypeMismatch,
                                    format!("logical operator applied to non-boolean {ty}"),
                                );
                            }
                        }
                    }
                } else if !matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Concat) {
                    // Widths must agree for arithmetic and comparisons when
                    // both sides have a known width.
                    if let (Some(lw), Some(rw)) = (
                        type_of(self.env, scope, left).and_then(|t| t.width()),
                        type_of(self.env, scope, right).and_then(|t| t.width()),
                    ) {
                        if lw != rw {
                            self.error(
                                CheckErrorKind::TypeMismatch,
                                format!(
                                    "operands of `{}` have different widths ({lw} vs {rw})",
                                    op.symbol()
                                ),
                            );
                        }
                    }
                }
            }
            Expr::Unary { op, operand } => {
                self.validate_expr(operand, scope);
                if *op == UnOp::Not {
                    if let Some(ty) = type_of(self.env, scope, operand) {
                        if ty != Type::Bool {
                            self.error(
                                CheckErrorKind::TypeMismatch,
                                format!("`!` applied to non-boolean {ty}"),
                            );
                        }
                    }
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.validate_expr(cond, scope);
                self.validate_expr(then_expr, scope);
                self.validate_expr(else_expr, scope);
                if let Some(ty) = type_of(self.env, scope, cond) {
                    if ty != Type::Bool {
                        self.error(
                            CheckErrorKind::TypeMismatch,
                            "ternary condition must be boolean",
                        );
                    }
                }
            }
            Expr::Cast { expr, .. } => self.validate_expr(expr, scope),
            Expr::Member { base, member } => {
                self.validate_expr(base, scope);
                if let Some(base_ty) = type_of(self.env, scope, base) {
                    if base_ty.is_aggregate() && self.env.field_type(&base_ty, member).is_none() {
                        self.error(
                            CheckErrorKind::UnknownName,
                            format!("no field `{member}` in {base_ty}"),
                        );
                    }
                }
            }
            Expr::Call(call) => {
                for arg in &call.args {
                    self.validate_expr(arg, scope);
                }
            }
            _ => {}
        }
        let _ = self.options.reject_uninitialized_reads;
    }

    /// Checks that `expr` is compatible with `expected`.
    fn check_expr_type(&mut self, expr: &Expr, expected: &Type, scope: &Scope) {
        // Unsized integer literals adapt to any bit type.
        if let Expr::Int { width: None, .. } = expr {
            if expected.is_bits() {
                return;
            }
        }
        let Some(actual) = self.expr_type(expr, scope) else {
            // `expr_type` already reported the problem (or the expression
            // contains an unsized literal whose width is inferred from
            // context, which we accept).
            return;
        };
        let compatible = match (&actual, expected) {
            (a, b) if a == b => true,
            (Type::Bits { width: w1, .. }, Type::Bits { width: w2, .. }) => w1 == w2,
            _ => false,
        };
        if !compatible {
            self.error(
                CheckErrorKind::TypeMismatch,
                format!(
                    "expected {expected}, found {actual} in `{}`",
                    p4_ir::print_expr(expr)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{Block, Expr, Statement, Type};

    fn check_ingress(statements: Vec<Statement>) -> Vec<CheckError> {
        let program = builder::v1model_program(vec![], Block::new(statements));
        check_program(&program)
    }

    #[test]
    fn trivial_and_figure3_programs_are_clean() {
        assert_eq!(check_program(&builder::trivial_program()), Vec::new());
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        assert_eq!(check_program(&program), Vec::new());
    }

    #[test]
    fn detects_unknown_names() {
        let errors = check_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::path("nonexistent"),
        )]);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::UnknownName));
    }

    #[test]
    fn detects_unknown_fields() {
        let errors = check_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "nope"]),
            Expr::uint(1, 8),
        )]);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::UnknownName));
    }

    #[test]
    fn detects_width_mismatches() {
        let errors = check_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::uint(1, 16),
        )]);
        assert!(errors
            .iter()
            .any(|e| e.kind == CheckErrorKind::TypeMismatch));
    }

    #[test]
    fn accepts_unsized_literals_in_bit_context() {
        let errors = check_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::int(3),
        )]);
        assert_eq!(errors, Vec::new());
    }

    #[test]
    fn detects_non_lvalue_assignment_targets() {
        let errors = check_ingress(vec![Statement::Assign {
            lhs: Expr::uint(1, 8),
            rhs: Expr::uint(2, 8),
        }]);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::NotAnLValue));
    }

    #[test]
    fn detects_bad_slices() {
        let errors = check_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::slice(Expr::dotted(&["hdr", "h", "b"]), 9, 2),
        )]);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::BadSlice));
    }

    #[test]
    fn detects_non_boolean_conditions() {
        let errors = check_ingress(vec![Statement::if_then(
            Expr::dotted(&["hdr", "h", "a"]),
            Statement::Block(Block::empty()),
        )]);
        assert!(errors
            .iter()
            .any(|e| e.kind == CheckErrorKind::TypeMismatch));
    }

    #[test]
    fn detects_unknown_table_actions() {
        use p4_ir::{ActionRef, Declaration, KeyElement, MatchKind, TableDecl};
        let table = TableDecl {
            name: "t".into(),
            keys: vec![KeyElement {
                expr: Expr::dotted(&["hdr", "h", "a"]),
                match_kind: MatchKind::Exact,
            }],
            actions: vec![ActionRef::new("missing_action")],
            default_action: ActionRef::new("NoAction"),
        };
        let program = builder::v1model_program(
            vec![Declaration::Table(table)],
            Block::new(vec![Statement::call(vec!["t", "apply"], vec![])]),
        );
        let errors = check_program(&program);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::BadTable));
    }

    #[test]
    fn detects_out_argument_that_is_not_an_lvalue() {
        use p4_ir::{ActionDecl, Declaration, Direction, Param};
        let action = ActionDecl {
            name: "a".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(8))],
            body: Block::new(vec![Statement::assign(Expr::path("val"), Expr::uint(1, 8))]),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(vec!["a"], vec![Expr::uint(5, 8)])]),
        );
        let errors = check_program(&program);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::NotAnLValue));
    }

    #[test]
    fn detects_wrong_argument_count() {
        use p4_ir::{ActionDecl, Declaration, Direction, Param};
        let action = ActionDecl {
            name: "a".into(),
            params: vec![Param::new(Direction::In, "val", Type::bits(8))],
            body: Block::empty(),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(vec!["a"], vec![])]),
        );
        let errors = check_program(&program);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::BadCall));
    }

    #[test]
    fn detects_broken_package_bindings() {
        let mut program = builder::trivial_program();
        program
            .package
            .bindings
            .retain(|(slot, _)| slot != "egress");
        let errors = check_program(&program);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::BadPackage));
    }

    #[test]
    fn parser_without_start_state_is_rejected() {
        let mut program = builder::trivial_program();
        for decl in &mut program.declarations {
            if let p4_ir::Declaration::Parser(p) = decl {
                p.states.retain(|s| s.name != "start");
            }
        }
        let errors = check_program(&program);
        assert!(errors.iter().any(|e| e.kind == CheckErrorKind::UnknownName));
    }
}
