//! Quickstart: generate a random P4 program, compile it with the reference
//! nanopass compiler, and translation-validate every pass.
//!
//! Run with `cargo run --example quickstart [seed]`.

use gauntlet_core::{Gauntlet, GauntletOptions};
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_ir::print_program;
use p4c::Compiler;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);

    // 1. Random program generation (paper §4).
    let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
    let program = generator.generate();
    println!("=== generated program (seed {seed}) ===");
    println!("{}", print_program(&program));

    // 2. Compile with the reference front/mid end, capturing the program
    //    after every modifying pass (the p4test behaviour).
    let compiler = Compiler::reference();
    let result = match compiler.compile(&program) {
        Ok(result) => result,
        Err(error) => {
            println!("compiler error: {error}");
            std::process::exit(1);
        }
    };
    println!("=== compilation ===");
    println!("passes that modified the program:");
    for snapshot in result.snapshots.iter().skip(1) {
        println!(
            "  [{:>2}] {} ({})",
            snapshot.pass_index, snapshot.pass_name, snapshot.area
        );
    }
    println!(
        "passes with no effect: {}",
        result.unchanged_passes.join(", ")
    );

    // 3. Translation validation (paper §5): compare consecutive snapshots.
    let gauntlet = Gauntlet::new(GauntletOptions::default());
    let reports = gauntlet.validate_translation(&result);
    println!("=== translation validation ===");
    if reports.is_empty() {
        println!(
            "all {} pass transitions verified equivalent",
            result.snapshots.len().saturating_sub(1)
        );
    } else {
        for report in &reports {
            println!(
                "bug in pass {:?} ({:?}):\n{}",
                report.pass, report.kind, report.message
            );
        }
    }
}
