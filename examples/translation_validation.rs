//! Translation validation walkthrough on the paper's Figure 5f bug.
//!
//! A compiler whose `RemoveActionParameters` pass skips copy-out when an
//! inlined action exits is seeded, the Figure-5f program is compiled, and
//! Gauntlet pinpoints the pass together with a counterexample packet.
//!
//! Run with `cargo run --example translation_validation`.

use gauntlet_core::{Gauntlet, SeededBug};
use p4_ir::print_program;
use p4c::FrontEndBugClass;

fn main() {
    let bug = SeededBug::FrontEnd(FrontEndBugClass::ExitSkipsCopyOut);
    let program = bug.trigger_program();
    println!("=== input program (Figure 5f) ===");
    println!("{}", print_program(&program));

    let gauntlet = Gauntlet::default();

    println!("=== correct compiler ===");
    let clean = gauntlet.check_open_compiler(&p4c::Compiler::reference(), &program);
    println!(
        "reference pipeline: {}",
        if clean.clean {
            "all passes validated equivalent"
        } else {
            "unexpected reports!"
        }
    );

    println!(
        "=== compiler seeded with {:?} ===",
        FrontEndBugClass::ExitSkipsCopyOut
    );
    let outcome = gauntlet.check_open_compiler(&bug.build_compiler(), &program);
    if outcome.clean {
        println!("seeded bug was NOT detected (this should not happen)");
        std::process::exit(1);
    }
    for report in &outcome.reports {
        println!(
            "detected {:?} bug in pass `{}` on platform {}:",
            report.kind,
            report.pass.as_deref().unwrap_or("?"),
            report.platform
        );
        println!("{}", report.message);
    }
}
