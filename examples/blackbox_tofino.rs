//! Black-box testing of a closed-source back end via symbolic execution
//! (paper §6, Figure 4).
//!
//! The simulated Tofino compiler hides its intermediate representation, so
//! translation validation is impossible.  Instead Gauntlet derives
//! input/output test packets from the *input* program's semantics and
//! replays them on the compiled image through the PTF-style harness.
//!
//! Run with `cargo run --example blackbox_tofino`.

use p4_ir::print_program;
use p4_symbolic::{generate_tests, TestGenOptions};
use targets::{BackEndBugClass, Target, TofinoBackend};

fn main() {
    let bug = gauntlet_core::SeededBug::BackEnd(BackEndBugClass::TofinoSaturationWraps);
    let program = bug.trigger_program();
    println!("=== input program (TNA) ===");
    println!("{}", print_program(&program));

    // Generate tests from the program's symbolic semantics.
    let tests = generate_tests(&program, &TestGenOptions::default()).expect("test generation");
    println!("=== generated {} test case(s) ===", tests.len());
    for (index, test) in tests.iter().enumerate() {
        println!("test {index}: path [{}]", test.path);
        for (name, value) in &test.inputs {
            println!("    in  {name} = {value:?}");
        }
        for (name, value) in &test.expected {
            println!("    out {name} = {value:?}");
        }
    }

    // Replay on the correct back end and on one seeded with a lowering bug.
    for (label, backend) in [
        ("correct back end", TofinoBackend::new()),
        (
            "seeded TofinoSaturationWraps",
            TofinoBackend::with_bug(BackEndBugClass::TofinoSaturationWraps),
        ),
    ] {
        println!("=== {label} ===");
        match backend.compile(&program) {
            Err(error) => println!("compilation failed: {error}"),
            Ok(binary) => {
                let report = backend.run(&binary, &tests);
                println!("{} / {} tests passed", report.passed, report.total);
                for mismatch in &report.mismatches {
                    println!(
                        "  MISMATCH {}: expected {:?}, observed {:?} (path {})",
                        mismatch.field, mismatch.expected, mismatch.actual, mismatch.test_path
                    );
                }
            }
        }
    }
}
