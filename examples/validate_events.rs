//! Validate a `gauntlet-events-v1` JSONL event log: every line must parse
//! as a standalone JSON object and carry the schema tag, a `ts_ms`
//! timestamp, and an `event` name.  CI runs this over the event logs of
//! real campaigns — including the fleet coordinator's *merged* log — so a
//! malformed emitter fails the build, not a downstream consumer.
//!
//! ```text
//! cargo run --release --example validate_events -- PATH [--fleet] [--quiet]
//! ```
//!
//! Forward compatibility is part of the contract being checked:
//!
//! * An event kind outside [`KNOWN_EVENTS`] is a **warning**, not an error —
//!   a newer emitter must never break an older validator.
//! * `ts_ms` must be non-decreasing **per process stream**, not globally: a
//!   merged fleet log interleaves the coordinator's events with per-worker
//!   relays (tagged `"worker": N`), and only same-process order is
//!   meaningful.
//!
//! By default the log must be framed by `campaign_start`/`campaign_end`;
//! `--fleet` expects `fleet_start`/`fleet_end` instead (workers run with
//! heartbeats off, so per-campaign framing is not relayed).  Exits non-zero
//! (with the offending line number) on the first violation; on success
//! prints a one-line summary of the event counts.

use gauntlet_telemetry::{json, ProgressSink, EVENTS_SCHEMA, KNOWN_EVENTS};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fleet = args.iter().any(|a| a == "--fleet");
    let progress = ProgressSink::new(!args.iter().any(|a| a == "--quiet"));
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .expect("usage: validate_events PATH [--fleet] [--quiet]")
        .clone();
    let fail = |message: String| -> ! {
        // Failures print even under --quiet: a silent validator that exits
        // nonzero helps nobody in CI logs.
        eprintln!("{message}");
        std::process::exit(1);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => fail(format!("validate_events: cannot read {path}: {error}")),
    };

    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut unknown: BTreeMap<String, usize> = BTreeMap::new();
    // Monotonicity is tracked per process stream: the coordinator's own
    // events have no `worker` field, relayed worker events carry their slot.
    let mut last_ts: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        let event = match json::parse(line) {
            Ok(event) => event,
            Err(error) => fail(format!("{path}:{lineno}: not valid JSON: {error}")),
        };
        match event.get("schema").and_then(|s| s.as_str()) {
            Some(schema) if schema == EVENTS_SCHEMA => {}
            other => fail(format!(
                "{path}:{lineno}: schema tag is {other:?}, want {EVENTS_SCHEMA:?}"
            )),
        }
        let Some(ts) = event.get("ts_ms").and_then(|t| t.as_u64()) else {
            fail(format!("{path}:{lineno}: missing integer `ts_ms`"));
        };
        let stream = event.get("worker").and_then(|w| w.as_u64());
        let last = last_ts.entry(stream).or_insert(0);
        if ts < *last {
            let who = match stream {
                Some(worker) => format!("worker {worker}"),
                None => "the coordinator stream".to_string(),
            };
            fail(format!(
                "{path}:{lineno}: ts_ms went backwards within {who} ({ts} < {last})"
            ));
        }
        *last = ts;
        let Some(name) = event.get("event").and_then(|e| e.as_str()) else {
            fail(format!("{path}:{lineno}: missing string `event`"));
        };
        if !KNOWN_EVENTS.contains(&name) {
            *unknown.entry(name.to_string()).or_default() += 1;
        }
        *counts.entry(name.to_string()).or_default() += 1;
    }

    if counts.is_empty() {
        fail(format!("{path}: no events"));
    }
    let (start, end) = if fleet {
        ("fleet_start", "fleet_end")
    } else {
        ("campaign_start", "campaign_end")
    };
    if counts.get(start).copied().unwrap_or(0) == 0 || counts.get(end).copied().unwrap_or(0) == 0 {
        fail(format!("{path}: missing {start}/{end} framing"));
    }
    for (name, count) in &unknown {
        progress.note(&format!(
            "{path}: warning: unknown event kind `{name}` ({count} occurrence(s)) — \
             tolerated for forward compatibility"
        ));
    }
    let summary: Vec<String> = counts
        .iter()
        .map(|(name, count)| format!("{name}={count}"))
        .collect();
    println!(
        "{path}: {} event(s) OK across {} stream(s) ({})",
        counts.values().sum::<usize>(),
        last_ts.len(),
        summary.join(", ")
    );
}
