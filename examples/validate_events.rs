//! Validate a `gauntlet-events-v1` JSONL event log: every line must parse
//! as a standalone JSON object, carry the schema tag, a `ts_ms` timestamp,
//! and an `event` name.  CI runs this over the event log of a real campaign
//! so a malformed emitter fails the build, not a downstream consumer.
//!
//! ```text
//! cargo run --release --example validate_events -- PATH
//! ```
//!
//! Exits non-zero (with the offending line number) on the first violation;
//! on success prints a one-line summary of the event counts.

use gauntlet_telemetry::{json, EVENTS_SCHEMA};
use std::collections::BTreeMap;

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: validate_events PATH");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("validate_events: cannot read {path}: {error}");
            std::process::exit(1);
        }
    };

    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut last_ts = 0u64;
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        let event = match json::parse(line) {
            Ok(event) => event,
            Err(error) => {
                eprintln!("{path}:{lineno}: not valid JSON: {error}");
                std::process::exit(1);
            }
        };
        match event.get("schema").and_then(|s| s.as_str()) {
            Some(schema) if schema == EVENTS_SCHEMA => {}
            other => {
                eprintln!("{path}:{lineno}: schema tag is {other:?}, want {EVENTS_SCHEMA:?}");
                std::process::exit(1);
            }
        }
        let Some(ts) = event.get("ts_ms").and_then(|t| t.as_u64()) else {
            eprintln!("{path}:{lineno}: missing integer `ts_ms`");
            std::process::exit(1);
        };
        if ts < last_ts {
            eprintln!("{path}:{lineno}: ts_ms went backwards ({ts} < {last_ts})");
            std::process::exit(1);
        }
        last_ts = ts;
        let Some(name) = event.get("event").and_then(|e| e.as_str()) else {
            eprintln!("{path}:{lineno}: missing string `event`");
            std::process::exit(1);
        };
        *counts.entry(name.to_string()).or_default() += 1;
    }

    if counts.is_empty() {
        eprintln!("{path}: no events");
        std::process::exit(1);
    }
    if counts.get("campaign_start").copied().unwrap_or(0) == 0
        || counts.get("campaign_end").copied().unwrap_or(0) == 0
    {
        eprintln!("{path}: missing campaign_start/campaign_end framing");
        std::process::exit(1);
    }
    let summary: Vec<String> = counts
        .iter()
        .map(|(name, count)| format!("{name}={count}"))
        .collect();
    println!(
        "{path}: {} event(s) OK ({})",
        counts.values().sum::<usize>(),
        summary.join(", ")
    );
}
