//! Seed a bug, hunt it, reduce it: the full reporting workflow of paper §7.
//!
//! A compiler seeded with a semantic bug is hunted over a random seed range
//! with reduction enabled; every finding is delta-debugged down to a
//! minimal reproducer that still triggers the *same* bug (identical dedup
//! key) before the report is committed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reduce_bug -- [--jobs N] [--seeds S]
//! ```

use gauntlet_core::{render_reduction_summary, HuntConfig, ParallelCampaign, Platform, SeededBug};
use p4_gen::RandomProgramGenerator;
use p4_ir::print_program;

fn parse_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let jobs = parse_flag("--jobs", 1);
    let seeds = parse_flag("--seeds", 40);

    // Seed a miscompilation into the open compiler.
    let bug = SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == Platform::P4c && !b.is_crash_class())
        .expect("catalogue has a P4C semantic bug");
    println!(
        "hunting {seeds} random programs against `{}` ({jobs} job(s), reduction on) ...",
        bug.name()
    );

    let config = HuntConfig {
        jobs,
        seed_count: seeds,
        reduce_reports: true,
        ..HuntConfig::default()
    };
    let generator_config = config.generator.clone();
    let hunt = ParallelCampaign::new(config).run(|| bug.build_compiler());
    println!(
        "hunt + reduction finished in {:?} ({} program(s) checked, {} finding(s))",
        hunt.elapsed, hunt.programs_checked, hunt.total_bugs
    );
    println!();
    println!("{}", render_reduction_summary(&hunt));

    // Show the first finding in full: original vs minimized reproducer.
    let Some(outcome) = hunt.outcomes.first() else {
        println!("no findings in this seed range; try more --seeds");
        return;
    };
    let report = &outcome.reports[0];
    let original = RandomProgramGenerator::new(generator_config, outcome.seed).generate();
    let Some(stats) = report.reduction else {
        // Should not happen for the seeded catalogue (the hunt warns via
        // `reduction_failures` if an oracle ever fails to reproduce).
        println!("seed {}: finding could not be reduced", outcome.seed);
        return;
    };
    println!(
        "seed {}: {}",
        outcome.seed,
        report.message.lines().next().unwrap_or("")
    );
    println!(
        "original program: {} statements ({} AST nodes)",
        stats.initial_statements,
        original.size()
    );
    println!(
        "minimized program: {} statements ({} AST nodes, {:.0}% of the original, {} oracle calls)",
        stats.final_statements,
        stats.final_nodes,
        stats.statement_ratio() * 100.0,
        stats.oracle_calls
    );
    println!();
    println!("--- minimized reproducer ---");
    println!(
        "{}",
        report
            .minimized
            .as_deref()
            .expect("reduction attaches the source")
    );
    println!("--- original program (for comparison) ---");
    println!("{}", print_program(&original));
}
