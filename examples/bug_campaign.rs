//! Full bug-finding campaign: regenerates the shape of the paper's Tables 2
//! and 3 from the seeded-bug catalogue, demonstrates the parallel
//! bug-hunting engine over a random seed range, and finishes with an N-way
//! differential hunt across all registered back ends (BMv2, Tofino, and the
//! reference interpreter) with per-target majority-vote attribution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bug_campaign -- [--jobs N] [--programs-per-bug P] \
//!     [--hunt-seeds S] [--coverage 1] [--corpus PATH] [--mutate 1] \
//!     [--mutations-per-seed M] [--cache 0] [--portfolio 1] \
//!     [--events PATH] [--report PATH] [--quiet]
//! ```
//!
//! `--coverage 1` turns the hunts coverage-guided: pass-rule coverage is
//! accumulated, generator weights adapt each epoch, and the report gains a
//! coverage block; `--corpus PATH` additionally persists the
//! coverage-advancing programs across runs.  `--mutate 1` adds the second
//! bug-finding dimension: every hunted program (and every replayed corpus
//! entry) spawns `--mutations-per-seed` semantics-preserving mutants whose
//! compiled forms are proved equivalent to the compiled seed, the report
//! gains a mutation block, and a hunt against a compiler with seeded
//! pre-snapshot corruption demonstrates a detection translation validation
//! provably cannot make.  `--cache 0` disables the pool-shared epoch
//! validation cache (on by default; reports are identical either way) and
//! `--portfolio 1` races hard equivalence queries across diverse SAT
//! configurations.
//!
//! Observability (all strictly observation-only — stdout stays
//! byte-identical): `--events PATH` writes a `gauntlet-events-v1` JSONL
//! event log for the main hunt, `--report PATH` writes its
//! `gauntlet-report-v1` JSON document, and `--quiet` silences the stderr
//! progress heartbeat and notes.

use gauntlet_core::{
    render_detection_matrix, render_table2, render_table3, run_campaign, CampaignConfig,
    CoverageOptions, HuntConfig, MetamorphicOptions, ParallelCampaign, SeededBug, TelemetryOptions,
};
use gauntlet_telemetry::ProgressSink;

fn parse_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_string_flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let jobs = parse_flag("--jobs", 1);
    let random_programs_per_bug = parse_flag("--programs-per-bug", 2);
    let hunt_seeds = parse_flag("--hunt-seeds", 100);
    let coverage = if parse_flag("--coverage", 0) != 0 {
        Some(CoverageOptions {
            corpus: parse_string_flag("--corpus"),
            ..CoverageOptions::default()
        })
    } else {
        None
    };
    let epoch_cache = parse_flag("--cache", 1) != 0;
    let portfolio = parse_flag("--portfolio", 0) != 0;
    let quiet = has_flag("--quiet");
    let events = parse_string_flag("--events");
    let report_path = parse_string_flag("--report");
    // All stderr narration goes through one sink so `--quiet` silences
    // everything at once; stdout (the deterministic artifact) is untouched.
    let progress = ProgressSink::new(!quiet);
    // The main hunt gets the event log; the later hunts reuse progress-only
    // telemetry so the JSONL file is not truncated by a second campaign.
    let hunt_telemetry = Some(TelemetryOptions {
        events: events.clone(),
        progress: !quiet,
        ..TelemetryOptions::default()
    });
    let progress_telemetry = Some(TelemetryOptions {
        events: None,
        progress: !quiet,
        ..TelemetryOptions::default()
    });
    let mutation = if parse_flag("--mutate", 0) != 0 {
        Some(MetamorphicOptions {
            mutants_per_seed: parse_flag(
                "--mutations-per-seed",
                MetamorphicOptions::default().mutants_per_seed,
            ),
            ..MetamorphicOptions::default()
        })
    } else {
        None
    };

    // Part 1: the seeded-bug table campaign (paper Tables 2 and 3).
    let config = CampaignConfig {
        random_programs_per_bug,
        jobs,
        ..CampaignConfig::default()
    };
    println!(
        "running campaign: {} seeded bug classes, {} random program(s) per class, {} job(s) ...",
        SeededBug::catalogue().len(),
        config.random_programs_per_bug,
        jobs
    );
    let start = std::time::Instant::now();
    let report = run_campaign(&config);
    println!("campaign finished in {:?}", start.elapsed());
    println!();
    println!("{}", render_table2(&report));
    println!("{}", render_table3(&report));
    println!("{}", render_detection_matrix(&report));

    // Part 2: the parallel hunt over a random seed range, against a compiler
    // seeded with one semantic bug so there is something to find.
    let buggy = SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == gauntlet_core::Platform::P4c && !b.is_crash_class())
        .expect("catalogue has a P4C semantic bug");
    println!(
        "hunting {} random programs against a compiler seeded with `{}` ({} job(s)) ...",
        hunt_seeds,
        buggy.name(),
        jobs
    );
    let hunt = ParallelCampaign::new(HuntConfig {
        jobs,
        seed_count: hunt_seeds,
        bug_quota: if coverage.is_some() || mutation.is_some() {
            None
        } else {
            Some(5)
        },
        coverage: coverage.clone(),
        mutation: mutation.clone(),
        epoch_cache,
        portfolio,
        telemetry: hunt_telemetry,
        ..HuntConfig::default()
    })
    .run(|| buggy.build_compiler());
    println!(
        "hunt finished in {:?} ({:.1} programs/s, per-worker loads {:?})",
        hunt.elapsed,
        hunt.throughput(),
        hunt.per_worker
    );
    if let Some(cache) = &hunt.cache {
        // Run-descriptive like `elapsed` (quota overshoot makes lookup
        // counts schedule-dependent), so the stderr sink: stdout stays
        // byte-identical across `--jobs`, and `--quiet` silences it.
        progress.note(&format!(
            "epoch cache: {} epoch(s), semantics {}/{} hit, verdicts {}/{} hit, {} portfolio race(s)",
            cache.epochs,
            cache.stats.semantics_hits,
            cache.stats.semantics_lookups(),
            cache.stats.verdict_hits,
            cache.stats.verdict_lookups(),
            cache.portfolio_races
        ));
    }
    if let Some(path) = &report_path {
        match std::fs::write(path, hunt.to_json()) {
            Ok(()) => progress.note(&format!("wrote gauntlet-report-v1 to {path}")),
            Err(error) => progress.note(&format!("could not write report {path}: {error}")),
        }
    }
    println!("{}", hunt.render());

    // Part 3: N-way differential testgen — every generated test replayed on
    // all three registered back ends, with a seeded BMv2 defect that the
    // majority vote must pin on the right target.
    let diff_targets = vec![
        "bmv2+Bmv2ExitIgnored".to_string(),
        "tofino".to_string(),
        "ref-interp".to_string(),
    ];
    println!(
        "3-way differential hunt over {} programs across {:?} ({} job(s)) ...",
        hunt_seeds, diff_targets, jobs
    );
    let diff = ParallelCampaign::new(HuntConfig {
        jobs,
        seed_count: hunt_seeds,
        targets: diff_targets,
        coverage,
        epoch_cache,
        portfolio,
        telemetry: progress_telemetry.clone(),
        ..HuntConfig::default()
    })
    .run(p4c::Compiler::reference);
    println!(
        "differential hunt finished in {:?} ({:.1} programs/s)",
        diff.elapsed,
        diff.throughput()
    );
    println!("{}", diff.render());
    println!("{}", render_table2(&diff.campaign_summary()));
    assert!(
        diff.outcomes
            .iter()
            .flat_map(|o| &o.reports)
            .all(|r| r.attributed_to.as_deref() == Some("bmv2")),
        "the 3-way vote must attribute every finding to the seeded bmv2 target"
    );

    // Part 4 (with --mutate): the metamorphic showcase — hunt a compiler
    // whose driver corrupts the program *before the first snapshot*.
    // Translation validation is blind to it by construction; the mutant
    // families convict it.
    if let Some(mutation) = mutation {
        let driver_bug = SeededBug::catalogue()
            .into_iter()
            .find(|b| matches!(b, SeededBug::Driver(_)))
            .expect("catalogue has a driver bug");
        println!(
            "metamorphic hunt: {} programs x {} mutants against `{}` ({} job(s)) ...",
            hunt_seeds,
            mutation.mutants_per_seed,
            driver_bug.name(),
            jobs
        );
        let metamorphic = ParallelCampaign::new(HuntConfig {
            jobs,
            seed_count: hunt_seeds,
            mutation: Some(mutation),
            epoch_cache,
            portfolio,
            telemetry: progress_telemetry,
            ..HuntConfig::default()
        })
        .run(|| driver_bug.build_compiler());
        println!(
            "metamorphic hunt finished in {:?} ({:.1} programs/s)",
            metamorphic.elapsed,
            metamorphic.throughput()
        );
        println!("{}", metamorphic.render());
        let summary = metamorphic
            .mutation
            .as_ref()
            .expect("mutation block present");
        assert!(
            summary.divergent > 0,
            "the metamorphic oracle must convict the pre-snapshot corruption"
        );
    }
}
