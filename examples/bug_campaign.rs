//! Full bug-finding campaign: regenerates the shape of the paper's Tables 2
//! and 3 from the seeded-bug catalogue, then demonstrates the parallel
//! bug-hunting engine over a random seed range.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bug_campaign -- [--jobs N] [--programs-per-bug P] [--hunt-seeds S]
//! ```

use gauntlet_core::{
    render_detection_matrix, render_table2, render_table3, run_campaign, CampaignConfig,
    HuntConfig, ParallelCampaign, SeededBug,
};

fn parse_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let jobs = parse_flag("--jobs", 1);
    let random_programs_per_bug = parse_flag("--programs-per-bug", 2);
    let hunt_seeds = parse_flag("--hunt-seeds", 100);

    // Part 1: the seeded-bug table campaign (paper Tables 2 and 3).
    let config = CampaignConfig {
        random_programs_per_bug,
        jobs,
        ..CampaignConfig::default()
    };
    println!(
        "running campaign: {} seeded bug classes, {} random program(s) per class, {} job(s) ...",
        SeededBug::catalogue().len(),
        config.random_programs_per_bug,
        jobs
    );
    let start = std::time::Instant::now();
    let report = run_campaign(&config);
    println!("campaign finished in {:?}", start.elapsed());
    println!();
    println!("{}", render_table2(&report));
    println!("{}", render_table3(&report));
    println!("{}", render_detection_matrix(&report));

    // Part 2: the parallel hunt over a random seed range, against a compiler
    // seeded with one semantic bug so there is something to find.
    let buggy = SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == gauntlet_core::Platform::P4c && !b.is_crash_class())
        .expect("catalogue has a P4C semantic bug");
    println!(
        "hunting {} random programs against a compiler seeded with `{}` ({} job(s)) ...",
        hunt_seeds,
        buggy.name(),
        jobs
    );
    let hunt = ParallelCampaign::new(HuntConfig {
        jobs,
        seed_count: hunt_seeds,
        bug_quota: Some(5),
        ..HuntConfig::default()
    })
    .run(|| buggy.build_compiler());
    println!(
        "hunt finished in {:?} ({:.1} programs/s, per-worker loads {:?})",
        hunt.elapsed,
        hunt.throughput(),
        hunt.per_worker
    );
    println!("{}", hunt.render());
}
