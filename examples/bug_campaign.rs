//! Full bug-finding campaign: regenerates the shape of the paper's Tables 2
//! and 3 from the seeded-bug catalogue.
//!
//! Run with `cargo run --release --example bug_campaign [random_programs_per_bug]`.

use gauntlet_core::{render_detection_matrix, render_table2, render_table3, run_campaign, CampaignConfig};

fn main() {
    let random_programs_per_bug: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let config = CampaignConfig { random_programs_per_bug, ..CampaignConfig::default() };
    println!(
        "running campaign: {} seeded bug classes, {} random program(s) per class ...",
        gauntlet_core::SeededBug::catalogue().len(),
        config.random_programs_per_bug
    );
    let report = run_campaign(&config);
    println!();
    println!("{}", render_table2(&report));
    println!("{}", render_table3(&report));
    println!("{}", render_detection_matrix(&report));
}
