//! The `gauntlet` binary: fleet campaigns from the command line.
//!
//! ```text
//! gauntlet fleet hunt --seeds 100 --workers 2 --coverage --checkpoint fleet.ckpt
//! gauntlet fleet status --checkpoint fleet.ckpt
//! gauntlet fleet resume --checkpoint fleet.ckpt
//! gauntlet report report.json
//! gauntlet fleet-worker        # spawned by the coordinator, not by hand
//! ```
//!
//! Flag parsing is hand-rolled (the workspace is fully offline; no clap).

use gauntlet_fleet::{
    checkpoint::Checkpoint, coordinator, worker, CompilerSpec, FleetMode, FleetOptions,
    FleetOutcome, FleetSpec,
};
use std::time::Duration;

const USAGE: &str = "\
gauntlet — Gauntlet campaign driver

USAGE:
  gauntlet fleet hunt [FLAGS]       run a multi-process campaign
  gauntlet fleet resume [FLAGS]     continue from --checkpoint
  gauntlet fleet status --checkpoint PATH
  gauntlet report FILE              render a gauntlet-report-v1 JSON file
  gauntlet fleet-worker             (internal) shard executor

FLEET HUNT FLAGS:
  --workers N             worker processes (default 2)
  --jobs N                threads per worker (default 1)
  --seed-start N          first seed (default 0)
  --seeds N               seed count (default 100)
  --shard-size N          seeds per lease (default 25)
  --compiler NAME         `reference` or a SeededBug name (default reference)
  --generator NAME        tiny | default | tofino (default tiny)
  --mode MODE             deterministic | throughput (default deterministic)
  --coverage              account pass-rule coverage and build a corpus
  --corpus PATH           write the merged corpus here (implies --coverage)
  --diversity             swarm mode: per-slice generator perturbation and
                          disjoint pair-frontier partitions (implies --coverage)
  --mutants N             metamorphic mutants per seed (default 0)
  --reduce                delta-debug committed findings
  --target SPEC           differential target (repeatable)
  --checkpoint PATH       checkpoint file (enables resume/status)
  --checkpoint-every N    shards between checkpoints (default 1)
  --report PATH           write the merged gauntlet-report-v1 JSON here
  --triage PATH           write the gauntlet-triage-v1 JSON here
  --events PATH           merged JSONL event log
  --quiet                 no status line, no worker stderr

FAULT-INJECTION / RUNTIME FLAGS (hunt and resume):
  --chaos-kill W:F        kill worker W after its F-th delivered fragment
  --chaos-stall W:F       park worker W instead of its next assignment
  --stop-after-checkpoints N   stop (resumably) after N checkpoints
  --lease-timeout-ms N    kill workers whose lease exceeds N ms
  --max-respawns N        replacement processes allowed (default 8)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(error) = run(&args) {
        eprintln!("gauntlet: {error}");
        std::process::exit(2);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("fleet-worker") => worker::serve(),
        Some("fleet") => fleet(&args[1..]),
        Some("report") => report(&args[1..]),
        None | Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (see `gauntlet --help`)")),
    }
}

/// `W:F` pairs for the chaos flags.
fn parse_pair(text: &str) -> Result<(usize, usize), String> {
    let (worker, fragments) = text
        .split_once(':')
        .ok_or_else(|| format!("expected `WORKER:FRAGMENTS`, got `{text}`"))?;
    Ok((
        worker
            .parse()
            .map_err(|_| format!("bad worker index `{worker}`"))?,
        fragments
            .parse()
            .map_err(|_| format!("bad fragment count `{fragments}`"))?,
    ))
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value `{value}` for {flag}"))
}

/// Pull the value of `--flag VALUE`.
fn value<'a>(args: &'a [String], index: &mut usize, flag: &str) -> Result<&'a str, String> {
    *index += 1;
    args.get(*index)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn worker_command() -> Result<Vec<String>, String> {
    let exe = std::env::current_exe()
        .map_err(|error| format!("cannot locate the gauntlet binary: {error}"))?;
    Ok(vec![exe.display().to_string(), "fleet-worker".to_string()])
}

#[derive(Default)]
struct OutputPaths {
    report: Option<String>,
    triage: Option<String>,
}

/// Parse the runtime (non-spec) flags shared by hunt and resume.  Returns
/// `true` when the flag was consumed.
fn runtime_flag(
    options: &mut FleetOptions,
    outputs: &mut OutputPaths,
    args: &[String],
    index: &mut usize,
) -> Result<bool, String> {
    match args[*index].as_str() {
        "--quiet" => options.quiet = true,
        "--events" => options.events = Some(value(args, index, "--events")?.to_string()),
        "--report" => outputs.report = Some(value(args, index, "--report")?.to_string()),
        "--triage" => outputs.triage = Some(value(args, index, "--triage")?.to_string()),
        "--chaos-kill" => {
            options.chaos_kill = Some(parse_pair(value(args, index, "--chaos-kill")?)?)
        }
        "--chaos-stall" => {
            options.chaos_stall = Some(parse_pair(value(args, index, "--chaos-stall")?)?)
        }
        "--stop-after-checkpoints" => {
            options.stop_after_checkpoints = Some(parse_number(
                "--stop-after-checkpoints",
                value(args, index, "--stop-after-checkpoints")?,
            )?)
        }
        "--lease-timeout-ms" => {
            options.lease_timeout = Some(Duration::from_millis(parse_number(
                "--lease-timeout-ms",
                value(args, index, "--lease-timeout-ms")?,
            )?))
        }
        "--max-respawns" => {
            options.max_respawns =
                parse_number("--max-respawns", value(args, index, "--max-respawns")?)?
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn finish(outcome: FleetOutcome, outputs: &OutputPaths) -> Result<(), String> {
    if let Some(path) = &outputs.triage {
        std::fs::write(path, outcome.triage.to_json())
            .map_err(|error| format!("cannot write triage `{path}`: {error}"))?;
    }
    match &outcome.report {
        Some(report) => {
            if let Some(path) = &outputs.report {
                std::fs::write(path, report.to_json())
                    .map_err(|error| format!("cannot write report `{path}`: {error}"))?;
            }
            print!("{}", report.render());
            print!("{}", outcome.triage.render());
            Ok(())
        }
        None => {
            // Interrupted (stop_after_checkpoints): resumable, so not an
            // error — but say so and skip the report outputs.
            println!(
                "fleet: interrupted after {} checkpoint(s); resume with `gauntlet fleet resume`",
                outcome.stats.checkpoints_written
            );
            print!("{}", outcome.triage.render());
            Ok(())
        }
    }
}

fn fleet(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("hunt") => fleet_hunt(&args[1..]),
        Some("resume") => fleet_resume(&args[1..]),
        Some("status") => fleet_status(&args[1..]),
        _ => Err("usage: gauntlet fleet <hunt|resume|status> [flags]".into()),
    }
}

fn fleet_hunt(args: &[String]) -> Result<(), String> {
    let mut spec = FleetSpec::default();
    let mut options = FleetOptions::new(FleetSpec::default(), worker_command()?);
    let mut outputs = OutputPaths::default();
    let mut index = 0;
    while index < args.len() {
        if runtime_flag(&mut options, &mut outputs, args, &mut index)? {
            index += 1;
            continue;
        }
        match args[index].as_str() {
            "--workers" => {
                spec.workers = parse_number("--workers", value(args, &mut index, "--workers")?)?
            }
            "--jobs" => {
                spec.jobs_per_worker = parse_number("--jobs", value(args, &mut index, "--jobs")?)?
            }
            "--seed-start" => {
                spec.seed_start =
                    parse_number("--seed-start", value(args, &mut index, "--seed-start")?)?
            }
            "--seeds" => {
                spec.seed_count = parse_number("--seeds", value(args, &mut index, "--seeds")?)?
            }
            "--shard-size" => {
                spec.shard_size =
                    parse_number("--shard-size", value(args, &mut index, "--shard-size")?)?
            }
            "--compiler" => {
                spec.compiler = CompilerSpec::from_name(value(args, &mut index, "--compiler")?)
            }
            "--generator" => spec.generator = value(args, &mut index, "--generator")?.to_string(),
            "--mode" => {
                let name = value(args, &mut index, "--mode")?;
                spec.mode =
                    FleetMode::from_name(name).ok_or_else(|| format!("unknown mode `{name}`"))?;
            }
            "--coverage" => spec.coverage = true,
            "--corpus" => {
                spec.corpus = Some(value(args, &mut index, "--corpus")?.to_string());
                spec.coverage = true;
            }
            "--diversity" => {
                spec.diversity = true;
                spec.coverage = true;
            }
            "--mutants" => {
                spec.mutants_per_seed =
                    parse_number("--mutants", value(args, &mut index, "--mutants")?)?
            }
            "--reduce" => spec.reduce_reports = true,
            "--target" => spec
                .targets
                .push(value(args, &mut index, "--target")?.to_string()),
            "--checkpoint" => {
                spec.checkpoint = Some(value(args, &mut index, "--checkpoint")?.to_string())
            }
            "--checkpoint-every" => {
                spec.checkpoint_every = parse_number(
                    "--checkpoint-every",
                    value(args, &mut index, "--checkpoint-every")?,
                )?
            }
            other => return Err(format!("unknown fleet hunt flag `{other}`")),
        }
        index += 1;
    }
    options.spec = spec;
    finish(coordinator::hunt(options)?, &outputs)
}

fn fleet_resume(args: &[String]) -> Result<(), String> {
    let mut options = FleetOptions::new(FleetSpec::default(), worker_command()?);
    let mut outputs = OutputPaths::default();
    let mut checkpoint_path: Option<String> = None;
    let mut index = 0;
    while index < args.len() {
        if runtime_flag(&mut options, &mut outputs, args, &mut index)? {
            index += 1;
            continue;
        }
        match args[index].as_str() {
            "--checkpoint" => {
                checkpoint_path = Some(value(args, &mut index, "--checkpoint")?.to_string())
            }
            other => return Err(format!("unknown fleet resume flag `{other}`")),
        }
        index += 1;
    }
    let path = checkpoint_path.ok_or("fleet resume needs --checkpoint PATH")?;
    let checkpoint = Checkpoint::load(&path)?;
    if checkpoint.complete {
        println!("fleet: checkpoint `{path}` is already complete");
    }
    finish(coordinator::resume(options, checkpoint)?, &outputs)
}

fn fleet_status(args: &[String]) -> Result<(), String> {
    let mut checkpoint_path: Option<String> = None;
    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--checkpoint" => {
                checkpoint_path = Some(value(args, &mut index, "--checkpoint")?.to_string())
            }
            other => return Err(format!("unknown fleet status flag `{other}`")),
        }
        index += 1;
    }
    let path = checkpoint_path.ok_or("fleet status needs --checkpoint PATH")?;
    print!("{}", Checkpoint::load(&path)?.render_status());
    Ok(())
}

fn report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: gauntlet report FILE".into());
    };
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read `{path}`: {error}"))?;
    let value = gauntlet_telemetry::json::parse(&text)?;
    let report = gauntlet_core::hunt_result_from_json(&value)?;
    print!("{}", report.render());
    Ok(())
}
