//! # Gauntlet — a Rust reproduction of "Gauntlet: Finding Bugs in Compilers
//! for Programmable Packet Processing" (OSDI '20)
//!
//! This facade crate re-exports the workspace so the root-level integration
//! tests (`tests/`) and runnable examples (`examples/`) can exercise every
//! layer.  The pipeline, crate by crate:
//!
//! | crate | role |
//! |-------|------|
//! | [`p4_ir`] | the P4 intermediate representation: AST, types, printer |
//! | [`p4_check`] | the reference type checker |
//! | [`p4_parser`] | parser round-tripping the printer's output |
//! | [`p4_gen`] | random well-typed program generation (paper §4) |
//! | [`p4c`] | the nanopass compiler under test, with seedable bug classes |
//! | [`p4_mutate`] | semantics-preserving mutation: the metamorphic (EMI-style) oracle (§8) |
//! | [`smt`] | the QF_BV solver (terms → bit-blasting → CDCL SAT) |
//! | [`p4_symbolic`] | symbolic interpretation, equivalence, test generation (§5–6) |
//! | [`p4_reduce`] | delta-debugging test-case reduction with pluggable bug oracles (§7) |
//! | [`targets`] | the `Target` trait + registry: BMv2, Tofino, and reference-interpreter back ends |
//! | [`gauntlet_core`] | the three techniques glued together, plus campaigns |
//! | [`gauntlet_fleet`] | crash-tolerant multi-process campaigns: coordinator, workers, triage, checkpoint/resume |
//!
//! Start with `cargo run --example quickstart`, then see the top-level
//! `README.md` and `docs/REPRODUCING.md`.  The `gauntlet` binary
//! (`src/main.rs`) drives fleet campaigns: `gauntlet fleet hunt ...`.

pub use gauntlet_core;
pub use gauntlet_fleet;
pub use p4_check;
pub use p4_gen;
pub use p4_ir;
pub use p4_mutate;
pub use p4_parser;
pub use p4_reduce;
pub use p4_symbolic;
pub use p4c;
pub use smt;
pub use targets;
