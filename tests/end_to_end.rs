//! End-to-end integration tests spanning every crate in the workspace:
//! generator → compiler → translation validation → test generation → targets.

use gauntlet_core::{BugKind, Gauntlet, SeededBug};
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4c::{Compiler, FrontEndBugClass};

/// Random programs compiled by the *correct* compiler must never trigger a
/// report: no crashes, no rejections, no semantic differences.  This is the
/// "false alarm" discipline the paper describes in §5.2 — a report on a
/// correct compiler would be a bug in our interpreter or validator.
#[test]
fn random_programs_produce_no_false_alarms_on_the_reference_compiler() {
    let gauntlet = Gauntlet::default();
    let compiler = Compiler::reference();
    for seed in 0..8 {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        let outcome = gauntlet.check_open_compiler(&compiler, &program);
        let real: Vec<_> = outcome
            .reports
            .iter()
            .filter(|r| !matches!(r.kind, BugKind::InvalidTransformation))
            .collect();
        assert!(
            real.is_empty(),
            "seed {seed}: false alarm on the reference compiler: {real:#?}\n{}",
            p4_ir::print_program(&program)
        );
    }
}

/// Every Figure-5-style seeded bug class is detected by its trigger program
/// using the technique appropriate to its platform (back-end bugs go
/// through the registry-built `Target` trait objects).
#[test]
fn every_seeded_bug_class_is_detected_by_its_trigger_program() {
    let gauntlet = Gauntlet::default();
    for bug in SeededBug::catalogue() {
        let program = bug.trigger_program();
        let reports = bug.detect(&gauntlet, &program);
        assert!(
            !reports.is_empty(),
            "{} was not detected by its trigger program",
            bug.name()
        );
        // Crash classes produce crash-like reports; semantic classes produce
        // semantic reports.
        if bug.is_crash_class() {
            assert!(
                reports.iter().any(|r| r.kind.is_crash_like()),
                "{}: expected a crash-like report, got {reports:#?}",
                bug.name()
            );
        } else {
            // Miscompilations surface as semantic findings — or, for the
            // driver-corruption class only the metamorphic oracle can see,
            // as metamorphic findings.
            assert!(
                reports
                    .iter()
                    .any(|r| matches!(r.kind, BugKind::Semantic | BugKind::Metamorphic)),
                "{}: expected a miscompilation report, got {reports:#?}",
                bug.name()
            );
        }
    }
}

/// Semantic bugs found by translation validation are attributed to the pass
/// that was seeded (the paper's "pinpoint the erroneous pass" property).
#[test]
fn translation_validation_pinpoints_the_seeded_pass() {
    let gauntlet = Gauntlet::default();
    let cases = [
        (
            FrontEndBugClass::DefUseDropsParameterWrites,
            "SimplifyDefUse",
        ),
        (FrontEndBugClass::ExitSkipsCopyOut, "RemoveActionParameters"),
        (FrontEndBugClass::PredicationSwapsBranches, "Predication"),
        (
            FrontEndBugClass::ConstantFoldingNoWraparound,
            "ConstantFolding",
        ),
    ];
    for (class, expected_pass) in cases {
        let bug = SeededBug::FrontEnd(class);
        let outcome = gauntlet.check_open_compiler(&bug.build_compiler(), &bug.trigger_program());
        let pass = outcome
            .reports
            .iter()
            .find(|r| r.kind == BugKind::Semantic)
            .and_then(|r| r.pass.clone())
            .unwrap_or_else(|| panic!("{class:?}: no semantic report"));
        assert_eq!(
            pass, expected_pass,
            "{class:?} attributed to the wrong pass"
        );
    }
}

/// The intermediate program emitted after every pass re-parses and prints
/// back to the identical text (the "invalid transformation" invariant).
#[test]
fn every_emitted_intermediate_program_reparses() {
    let compiler = Compiler::reference();
    for seed in 20..26 {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        let result = compiler
            .compile(&program)
            .expect("reference compiler accepts the program");
        for snapshot in &result.snapshots {
            let reparsed = p4_parser::parse_program(&snapshot.printed).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}, pass {}: emitted program no longer parses: {e}",
                    snapshot.pass_name
                )
            });
            assert_eq!(
                p4_ir::print_program(&reparsed),
                snapshot.printed,
                "seed {seed}, pass {}: print/parse round-trip diverges",
                snapshot.pass_name
            );
        }
    }
}

/// Crash bugs carry the offending pass name so they can be de-duplicated per
/// assertion message, as the paper does with P4C's assert messages.
#[test]
fn crash_reports_identify_the_crashing_pass() {
    let gauntlet = Gauntlet::default();
    let bug = SeededBug::FrontEnd(FrontEndBugClass::TypeInferenceShiftCrash);
    let outcome = gauntlet.check_open_compiler(&bug.build_compiler(), &bug.trigger_program());
    let report = outcome.reports.first().expect("crash detected");
    assert!(report.kind.is_crash_like());
    assert_eq!(report.pass.as_deref(), Some("ConstantFolding"));
    assert!(report.message.contains("width") || !report.message.is_empty());
}
