//! Acceptance tests for the epoch-scoped validation cache and portfolio
//! SAT: both knobs must be *semantically invisible* — the rendered report
//! and the saved corpus are byte-identical with caching on or off, with
//! portfolio racing on or off, at `--jobs 1` and `--jobs 4` — and the
//! pool-wide cache counters must reconcile exactly with the per-session
//! tallies summed over every worker.

use gauntlet_core::{
    CacheSummary, CoverageOptions, HuntConfig, HuntReport, MetamorphicOptions, ParallelCampaign,
    Platform, SeededBug,
};
use p4_gen::GeneratorConfig;
use std::path::PathBuf;

mod common;
use common::full_acceptance;

/// Seed budget: the full matrix runs 50-seed hunts in CI, a 10-seed smoke
/// variant by default.
fn budget() -> usize {
    if full_acceptance() {
        50
    } else {
        10
    }
}

/// The compiler under test: the catalogue's first P4C semantic (non-crash)
/// seeded bug — the same selection as the `bug_campaign` example and the
/// committed trajectory bench — so hunts produce real counterexamples and
/// the solver path (not just structural discharge) is exercised.
fn hunted_compiler() -> p4c::Compiler {
    SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == Platform::P4c && !b.is_crash_class())
        .expect("catalogue has a P4C semantic bug")
        .build_compiler()
}

/// A hunt over the fixed seed range with both oracle dimensions on
/// (translation validation + metamorphic mutation), parameterised by the
/// three knobs under test.
fn hunt(cache: bool, jobs: usize, portfolio: bool) -> HuntReport {
    ParallelCampaign::new(HuntConfig {
        jobs,
        seed_start: 0,
        seed_count: budget(),
        generator: GeneratorConfig::tiny(),
        mutation: Some(MetamorphicOptions::default()),
        epoch_cache: cache,
        portfolio,
        ..HuntConfig::default()
    })
    .run(hunted_compiler)
}

/// A scratch path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gauntlet-perf-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// The headline determinism claim: across the whole knob matrix — cache
/// on/off × portfolio on/off × `--jobs` 1/4 — the rendered report is
/// byte-identical.  Cached SAT verdicts carry canonical models and
/// portfolio races are verdict-preserving, so no combination may change a
/// single byte of output.
#[test]
fn reports_are_byte_identical_across_cache_jobs_and_portfolio() {
    let baseline = hunt(false, 1, false);
    let rendered = baseline.render();
    assert!(
        baseline.total_bugs > 0,
        "the seeded bug must be visible, or the matrix proves nothing"
    );
    // Findings carry counterexamples: the canonical-model discipline is
    // actually load-bearing in this comparison.
    assert!(rendered.contains("semantic difference"), "{rendered}");
    for (cache, jobs, portfolio) in [
        (true, 1, false),
        (false, 4, false),
        (true, 4, false),
        (false, 1, true),
        (true, 1, true),
        (false, 4, true),
        (true, 4, true),
    ] {
        let variant = hunt(cache, jobs, portfolio);
        assert_eq!(
            rendered,
            variant.render(),
            "cache={cache} jobs={jobs} portfolio={portfolio} changed the report"
        );
        assert_eq!(baseline.outcomes.len(), variant.outcomes.len());
        assert_eq!(baseline.total_bugs, variant.total_bugs);
    }
}

/// The coverage feedback loop (adaptive weights + corpus admission) is
/// downstream of validation, so the epoch cache must leave the saved
/// corpus byte-identical too, at any `--jobs`.
#[test]
fn corpus_bytes_are_identical_with_cache_on_and_off() {
    let corpus_hunt = |cache: bool, jobs: usize, path: &PathBuf| -> HuntReport {
        let _ = std::fs::remove_file(path);
        ParallelCampaign::new(HuntConfig {
            jobs,
            seed_start: 0,
            seed_count: budget(),
            generator: GeneratorConfig::tiny(),
            coverage: Some(CoverageOptions {
                adapt: true,
                adapt_every: budget().div_ceil(2).max(1),
                corpus: Some(path.display().to_string()),
                ..CoverageOptions::default()
            }),
            epoch_cache: cache,
            ..HuntConfig::default()
        })
        .run(p4c::Compiler::reference)
    };
    let path_off = scratch("corpus-cache-off.txt");
    let path_on_1 = scratch("corpus-cache-on-jobs1.txt");
    let path_on_4 = scratch("corpus-cache-on-jobs4.txt");
    let off = corpus_hunt(false, 2, &path_off);
    let on_1 = corpus_hunt(true, 1, &path_on_1);
    let on_4 = corpus_hunt(true, 4, &path_on_4);
    assert_eq!(off.render(), on_1.render());
    assert_eq!(off.render(), on_4.render());
    assert_eq!(off.coverage, on_1.coverage);
    assert_eq!(off.coverage, on_4.coverage);
    let bytes_off = std::fs::read(&path_off).expect("corpus saved with cache off");
    let bytes_on_1 = std::fs::read(&path_on_1).expect("corpus saved with cache on");
    let bytes_on_4 = std::fs::read(&path_on_4).expect("corpus saved at jobs 4");
    assert!(!bytes_off.is_empty());
    assert_eq!(bytes_off, bytes_on_1, "cache changed the corpus bytes");
    assert_eq!(bytes_off, bytes_on_4, "jobs changed the corpus bytes");
    for path in [path_off, path_on_1, path_on_4] {
        let _ = std::fs::remove_file(path);
    }
}

/// Cross-epoch reuse must be semantically invisible too.  A coverage-
/// guided hunt whose adaptation interval cuts the seed range into several
/// epochs exercises the campaign-lifetime cache across epoch barriers
/// (semantics memo, verdict memo, and interner all survive into the next
/// epoch); the rendered report, the coverage block, and the saved corpus
/// must still be byte-identical with the cache on or off, at `--jobs` 1
/// and 4.
#[test]
fn multi_epoch_reports_and_corpus_are_identical_across_cache_and_jobs() {
    // Strictly less than the seed count, so the hunt crosses epoch
    // boundaries (ceil(budget / epoch_len) >= 3 epochs).
    let epoch_len = (budget() / 3).max(2);
    let epoch_hunt = |cache: bool, jobs: usize, path: &PathBuf| -> HuntReport {
        let _ = std::fs::remove_file(path);
        ParallelCampaign::new(HuntConfig {
            jobs,
            seed_start: 0,
            seed_count: budget(),
            generator: GeneratorConfig::tiny(),
            coverage: Some(CoverageOptions {
                adapt: true,
                adapt_every: epoch_len,
                corpus: Some(path.display().to_string()),
                ..CoverageOptions::default()
            }),
            mutation: Some(MetamorphicOptions::default()),
            epoch_cache: cache,
            ..HuntConfig::default()
        })
        .run(hunted_compiler)
    };
    let base_path = scratch("multi-epoch-baseline.txt");
    let baseline = epoch_hunt(false, 1, &base_path);
    let baseline_bytes = std::fs::read(&base_path).expect("baseline corpus saved");
    let _ = std::fs::remove_file(&base_path);
    assert!(baseline.total_bugs > 0, "the seeded bug must be visible");
    for (cache, jobs) in [(false, 4), (true, 1), (true, 4)] {
        let path = scratch(&format!("multi-epoch-cache{cache}-jobs{jobs}.txt"));
        let variant = epoch_hunt(cache, jobs, &path);
        assert_eq!(
            baseline.render(),
            variant.render(),
            "cache={cache} jobs={jobs} changed the multi-epoch report"
        );
        assert_eq!(baseline.coverage, variant.coverage);
        let bytes = std::fs::read(&path).expect("variant corpus saved");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            baseline_bytes, bytes,
            "cache={cache} jobs={jobs} changed the corpus bytes"
        );
        if cache {
            let summary = variant.cache.expect("cache summary present");
            assert!(
                summary.epochs > 1,
                "the matrix must actually cross epoch boundaries: {summary:?}"
            );
        }
    }
}

/// Exact accounting under the parallel pool: the pool-wide [`CacheStats`]
/// (counted inside the shared cache) and the per-session tallies (summed
/// over every worker session of both oracle dimensions) must reconcile
/// *exactly* at the lookup level — every hit and miss attributed, none
/// dropped, none double-counted — even with four workers racing.
#[test]
fn cache_counters_reconcile_with_session_tallies() {
    for jobs in [1, 4] {
        let report = hunt(true, jobs, false);
        let summary = report.cache.expect("cache summary present when enabled");
        assert_eq!(summary.epochs, 1, "mutation-only hunts run one epoch");
        let (cache, sessions) = (summary.stats, summary.sessions);
        assert_eq!(
            cache.semantics_hits, sessions.semantics_hits,
            "jobs={jobs}: semantics hits diverge: {summary:?}"
        );
        assert_eq!(
            cache.semantics_misses, sessions.semantics_misses,
            "jobs={jobs}: semantics misses diverge: {summary:?}"
        );
        assert_eq!(
            cache.verdict_hits, sessions.verdict_hits,
            "jobs={jobs}: verdict hits diverge: {summary:?}"
        );
        assert_eq!(
            cache.verdict_misses, sessions.verdict_misses,
            "jobs={jobs}: verdict misses diverge: {summary:?}"
        );
        // The hunt did real work through the cache on both layers.
        assert!(cache.semantics_lookups() > 0, "jobs={jobs}: {summary:?}");
        assert!(cache.verdict_lookups() > 0, "jobs={jobs}: {summary:?}");
        assert!(
            sessions.solver_checks > 0,
            "jobs={jobs}: seeded bug must force solving: {summary:?}"
        );
    }
}

/// With no bug quota every seed is processed exactly once, so the cache
/// counters themselves are schedule-independent: the full summary is equal
/// at `--jobs 1` and `--jobs 4` (misses count distinct work by
/// construction — the miss is recorded at insert, so a racing loser counts
/// as a hit, exactly like a sequential second lookup).
#[test]
fn cache_counters_are_schedule_independent_without_a_quota() {
    let sequential = hunt(true, 1, false);
    let parallel = hunt(true, 4, false);
    assert_eq!(
        sequential.cache.expect("summary on"),
        parallel.cache.expect("summary on"),
        "quota-free hunts must produce identical cache accounting"
    );
}

/// The summary block appears exactly when a knob that produces it is on,
/// and never leaks into the rendered report (it is run-descriptive, like
/// `elapsed`).
#[test]
fn cache_summary_presence_follows_the_knobs() {
    let off = hunt(false, 2, false);
    assert!(off.cache.is_none(), "no knobs, no summary");
    let cached = hunt(true, 2, false);
    let summary = cached.cache.expect("cache knob produces the summary");
    assert!(summary.stats.semantics_lookups() > 0);
    let portfolio_only = hunt(false, 2, true);
    let races = portfolio_only
        .cache
        .expect("portfolio knob produces it too");
    // Private-cache sessions still tally; the pool-wide stats stay zero
    // because no shared epoch cache existed.
    assert_eq!(races.epochs, 0);
    assert_eq!(races.stats, Default::default());
    assert!(races.sessions.semantics_hits + races.sessions.semantics_misses > 0);
    for report in [&off, &cached, &portfolio_only] {
        let rendered = report.render();
        assert!(
            !rendered.to_lowercase().contains("cache"),
            "the render must not depend on run-descriptive cache data:\n{rendered}"
        );
    }
}

/// Portfolio racing keeps the race *count* deterministic per seed range:
/// escalation triggers on a fixed conflict budget over a deterministic
/// query stream, so the tally is schedule-independent too.
#[test]
fn portfolio_race_count_is_schedule_independent() {
    let sequential = hunt(false, 1, true);
    let parallel = hunt(false, 4, true);
    let races_1 = sequential.cache.expect("summary on").portfolio_races;
    let races_4 = parallel.cache.expect("summary on").portfolio_races;
    assert_eq!(races_1, races_4, "portfolio race tallies diverged");
}

/// `CacheSummary` is plain data with an exhaustive equality: a copy round-
/// trips and a default is all-zero (the shape the golden-report fixture
/// relies on).
#[test]
fn cache_summary_default_is_all_zero() {
    let summary = CacheSummary::default();
    assert_eq!(summary.epochs, 0);
    assert_eq!(summary.stats.semantics_lookups(), 0);
    assert_eq!(summary.stats.verdict_lookups(), 0);
    assert_eq!(summary.sessions.solver_checks, 0);
    assert_eq!(summary.portfolio_races, 0);
}
