//! Acceptance tests for the metamorphic mutation oracle (`p4-mutate`):
//! a seeded miscompilation applied identically to every per-pass snapshot
//! is *provably invisible* to plain translation validation, yet a seeded
//! campaign with `HuntConfig::mutation` enabled detects it — and the whole
//! mutation dimension obeys the engine's byte-identical-across-`--jobs`
//! determinism contract.

use gauntlet_core::{
    BugKind, Gauntlet, HuntConfig, HuntReport, MetamorphicChecker, MetamorphicOptions,
    ParallelCampaign, CAMPAIGN_MUTATION_SEED,
};
use p4c::{Compiler, DriverBugClass};

/// A compiler whose driver silently drops the final ingress write *before*
/// the first snapshot: every snapshot pair is self-consistent, so per-pass
/// translation validation cannot see the lost write.
fn corrupted_compiler() -> Compiler {
    let mut compiler = Compiler::reference();
    compiler.seed_input_corruption(DriverBugClass::SnapshotDropsFinalWrite);
    compiler
}

fn mutation_hunt(jobs: usize, seeds: usize) -> HuntReport {
    ParallelCampaign::new(HuntConfig {
        jobs,
        seed_start: 0,
        seed_count: seeds,
        mutation: Some(MetamorphicOptions::default()),
        ..HuntConfig::default()
    })
    .run(corrupted_compiler)
}

/// The headline claim: translation validation misses the pre-snapshot
/// corruption on every one of the hunt's programs, while the metamorphic
/// campaign over the same seed range convicts it.
#[test]
fn mutation_campaign_detects_what_translation_validation_provably_misses() {
    const SEEDS: usize = 20;

    // (1) Plain hunt (no mutation): silent — the corruption is applied
    // identically to every snapshot, so the pass chain validates clean.
    let blind = ParallelCampaign::new(HuntConfig {
        jobs: 2,
        seed_start: 0,
        seed_count: SEEDS,
        ..HuntConfig::default()
    })
    .run(corrupted_compiler);
    let real: Vec<_> = blind
        .outcomes
        .iter()
        .flat_map(|o| &o.reports)
        .filter(|r| !matches!(r.kind, BugKind::InvalidTransformation))
        .collect();
    assert!(
        real.is_empty(),
        "translation validation should be blind to pre-snapshot corruption: {real:#?}"
    );

    // (2) The same seed range with the metamorphic oracle enabled: caught.
    let hunt = mutation_hunt(2, SEEDS);
    let summary = hunt.mutation.clone().expect("mutation block present");
    assert!(summary.mutants_checked > 0);
    assert!(
        summary.divergent > 0,
        "no metamorphic divergence in {} mutants:\n{}",
        summary.mutants_checked,
        hunt.render()
    );
    let divergences: Vec<_> = hunt
        .outcomes
        .iter()
        .flat_map(|o| &o.reports)
        .filter(|r| r.kind == BugKind::Metamorphic)
        .collect();
    assert_eq!(divergences.len(), summary.divergent);
    for report in &divergences {
        assert!(
            report.message.starts_with("mutation chain `"),
            "{}",
            report.message
        );
    }

    // (3) Mutation coverage is reportable, mirroring pass-rule coverage.
    assert!(summary.rules_fired() > 0);
    assert_eq!(summary.rules_total, 10);
    let rendered = hunt.render();
    assert!(rendered.contains("mutator rules applied"), "{rendered}");
    let table2 = gauntlet_core::render_table2(&hunt.campaign_summary());
    assert!(table2.contains("mutator rules applied"), "{table2}");
}

/// Determinism: mutant derivation is a pure function of the seed and all
/// findings commit at the ordered-commit point, so the rendered report is
/// byte-identical at `--jobs 1` and `--jobs 4`.
#[test]
fn mutation_hunt_is_byte_identical_across_jobs() {
    let sequential = mutation_hunt(1, 16);
    let parallel = mutation_hunt(4, 16);
    assert_eq!(sequential.render(), parallel.render());
    assert_eq!(sequential.mutation, parallel.mutation);
    assert!(sequential.total_bugs > 0, "{}", sequential.render());
}

/// The false-alarm discipline extends to the new oracle: a mutation hunt
/// over the *reference* compiler proves every mutant equivalent.
#[test]
fn mutation_hunt_on_the_reference_compiler_finds_nothing() {
    let report = ParallelCampaign::new(HuntConfig {
        jobs: 2,
        seed_start: 100,
        seed_count: 10,
        mutation: Some(MetamorphicOptions::default()),
        ..HuntConfig::default()
    })
    .run(Compiler::reference);
    let metamorphic: Vec<_> = report
        .outcomes
        .iter()
        .flat_map(|o| &o.reports)
        .filter(|r| r.kind == BugKind::Metamorphic)
        .collect();
    assert!(
        metamorphic.is_empty(),
        "metamorphic false alarms on the reference compiler: {metamorphic:#?}"
    );
    let summary = report.mutation.expect("mutation block present");
    assert!(summary.mutants_checked > 0);
    assert_eq!(summary.divergent, 0);
}

/// A pass that crashes on the opaque locals only mutants contain — so the
/// crash can *never* reproduce on the unmutated seed program, and reduction
/// must route through the metamorphic oracle (which replays the mutant
/// family) rather than the plain crash oracle.
struct OpaquePanic;

impl p4c::Pass for OpaquePanic {
    fn name(&self) -> &str {
        "OpaquePanic"
    }

    fn run(&self, program: &mut p4_ir::Program) -> Result<(), p4c::Diagnostic> {
        for control in program.controls() {
            p4_ir::for_each_statement_list(&control.apply, &mut |list| {
                for stmt in list {
                    if let p4_ir::Statement::Declare { name, .. } = stmt {
                        assert!(
                            !name.starts_with("__opq"),
                            "OpaquePanic: cannot lower opaque local"
                        );
                    }
                }
            });
        }
        Ok(())
    }
}

/// Crashes that fire only on a mutant reduce through the metamorphic
/// oracle: with `reduce_reports` on, every committed finding still carries
/// a minimized reproducer and the failure tally stays zero.
#[test]
fn mutant_only_crashes_reduce_through_the_metamorphic_oracle() {
    let factory = || {
        let mut passes: Vec<Box<dyn p4c::Pass>> = vec![Box::new(OpaquePanic)];
        passes.extend(p4c::passes::default_pipeline());
        Compiler::with_passes(passes)
    };
    let report = ParallelCampaign::new(HuntConfig {
        jobs: 2,
        seed_count: 12,
        mutation: Some(MetamorphicOptions::default()),
        reduce_reports: true,
        ..HuntConfig::default()
    })
    .run(factory);
    let crashes: Vec<_> = report
        .outcomes
        .iter()
        .flat_map(|o| &o.reports)
        .filter(|r| r.kind == BugKind::Crash)
        .collect();
    assert!(
        !crashes.is_empty(),
        "the opaque guard must trip the crash somewhere:\n{}",
        report.render()
    );
    assert_eq!(
        report.reduction_failures,
        0,
        "mutation-origin findings must reduce through their own oracle:\n{}",
        report.render()
    );
    for crash in &crashes {
        assert!(crash.minimized.is_some(), "{}", crash.message);
        assert!(
            crash.message.contains("via mutation chain"),
            "{}",
            crash.message
        );
    }
}

/// Replayed corpus entries honour the reduction contract too: with
/// coverage+corpus, mutation, and reduction all enabled, a replay-only
/// campaign commits only reduced findings.
#[test]
fn replayed_corpus_findings_are_reduced() {
    let corpus = std::env::temp_dir().join(format!(
        "gauntlet-metamorphic-corpus-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&corpus);
    let coverage = Some(gauntlet_core::CoverageOptions {
        corpus: Some(corpus.display().to_string()),
        ..gauntlet_core::CoverageOptions::default()
    });
    // Seed the corpus (no mutation yet, so the corpus is purely
    // coverage-driven).
    ParallelCampaign::new(HuntConfig {
        jobs: 2,
        seed_count: 20,
        coverage: coverage.clone(),
        ..HuntConfig::default()
    })
    .run(corrupted_compiler);

    // Replay-only campaign with mutation + reduction.
    let replay = ParallelCampaign::new(HuntConfig {
        jobs: 2,
        seed_count: 0,
        coverage,
        mutation: Some(MetamorphicOptions::default()),
        reduce_reports: true,
        ..HuntConfig::default()
    })
    .run(corrupted_compiler);
    assert_eq!(replay.programs_checked, 0);
    let summary = replay.mutation.clone().expect("mutation block present");
    assert!(summary.mutants_checked > 0, "corpus should not be empty");
    assert_eq!(replay.reduction_failures, 0, "{}", replay.render());
    for outcome in &replay.outcomes {
        for report in &outcome.reports {
            assert!(
                report.minimized.is_some(),
                "replayed finding not reduced: {}",
                report.message
            );
        }
    }
    let _ = std::fs::remove_file(&corpus);
}

/// The paper-shaped single-program story, end to end: trigger program,
/// blind TV, convicting mutant family, minimised chain in the dedup key.
#[test]
fn trigger_program_walkthrough() {
    let gauntlet = Gauntlet::default();
    let trigger = gauntlet_core::SeededBug::catalogue()
        .into_iter()
        .find(|b| b.name() == "SnapshotDropsFinalWrite")
        .expect("driver bug in the catalogue")
        .trigger_program();

    assert!(
        gauntlet
            .check_open_compiler(&corrupted_compiler(), &trigger)
            .clean,
        "TV must validate the corrupted compile clean"
    );

    let mut checker = MetamorphicChecker::new(corrupted_compiler());
    let outcome = gauntlet.check_mutants(
        &mut checker,
        &trigger,
        &MetamorphicOptions::default(),
        CAMPAIGN_MUTATION_SEED,
    );
    let report = outcome
        .reports
        .iter()
        .find(|r| r.kind == BugKind::Metamorphic)
        .expect("divergence detected");
    // The chain in the dedup key is ddmin-minimised (1-minimal: dropping
    // any single mutation loses the divergence) and stays within the
    // configured chain budget.
    let first_line = report.message.lines().next().unwrap();
    let chain = first_line
        .split('`')
        .nth(1)
        .expect("chain between backticks");
    let options = MetamorphicOptions::default();
    assert!(
        chain.split('>').count() <= options.max_chain,
        "chain exceeds the budget: {first_line}"
    );

    // And the minimised key reproduces through the reduction oracle — the
    // lock-step property program reduction relies on.
    let mut oracle =
        p4_reduce::MetamorphicOracle::new(corrupted_compiler(), options, CAMPAIGN_MUTATION_SEED);
    use p4_reduce::Oracle;
    assert!(
        oracle.reproduces(&trigger, &report.dedup_key()),
        "oracle lost the dedup key `{}`",
        report.dedup_key()
    );
}
