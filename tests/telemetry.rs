//! End-to-end tests of the telemetry flight recorder's hard invariant:
//! telemetry is strictly observation-only.  The deterministic artifacts —
//! the rendered report, the `gauntlet-report-v1` `result` half, and the
//! persisted corpus bytes — must be byte-identical with telemetry on or
//! off, at any `--jobs`.  The JSONL event log itself must be well-formed:
//! every line parses, carries the schema tag, and the campaign is framed by
//! `campaign_start`/`campaign_end` events.

use gauntlet_core::{CoverageOptions, HuntConfig, HuntReport, ParallelCampaign, TelemetryOptions};
use gauntlet_telemetry::{json, Stage, EVENTS_SCHEMA};
use p4_gen::GeneratorConfig;
use std::path::PathBuf;

mod common;
use common::full_acceptance;

fn budget() -> usize {
    if full_acceptance() {
        40
    } else {
        12
    }
}

/// A scratch path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gauntlet-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// One coverage-guided hunt (coverage exercises the corpus writer, the
/// feedback loop, and the epoch cache at once) with telemetry on or off.
fn hunt(jobs: usize, telemetry: Option<TelemetryOptions>, corpus: &PathBuf) -> HuntReport {
    let _ = std::fs::remove_file(corpus);
    ParallelCampaign::new(HuntConfig {
        jobs,
        seed_start: 0,
        seed_count: budget(),
        generator: GeneratorConfig::tiny(),
        coverage: Some(CoverageOptions {
            corpus: Some(corpus.display().to_string()),
            ..CoverageOptions::default()
        }),
        telemetry,
        ..HuntConfig::default()
    })
    .run(p4c::Compiler::reference)
}

/// Telemetry options with the heartbeat silenced (tests must not spam
/// stderr) and, optionally, an event log.
fn quiet_telemetry(events: Option<String>) -> TelemetryOptions {
    TelemetryOptions {
        events,
        progress: false,
        ..TelemetryOptions::default()
    }
}

/// The determinism matrix: telemetry {off, on} x jobs {1, 4} — all four
/// cells must produce byte-identical rendered reports, byte-identical
/// deterministic JSON, and byte-identical corpus files.
#[test]
fn deterministic_artifacts_are_identical_across_the_telemetry_matrix() {
    let mut cells = Vec::new();
    for (label, jobs, telemetry) in [
        ("off-jobs1", 1, None),
        ("off-jobs4", 4, None),
        ("on-jobs1", 1, Some(quiet_telemetry(None))),
        ("on-jobs4", 4, Some(quiet_telemetry(None))),
    ] {
        let corpus = scratch(&format!("corpus-{label}.txt"));
        let report = hunt(jobs, telemetry, &corpus);
        let corpus_bytes = std::fs::read(&corpus).expect("corpus written");
        cells.push((label, report, corpus_bytes));
    }
    let (_, baseline, baseline_corpus) = &cells[0];
    for (label, report, corpus_bytes) in &cells[1..] {
        assert_eq!(
            report.render(),
            baseline.render(),
            "rendered report differs in cell {label}"
        );
        assert_eq!(
            report.deterministic_json(),
            baseline.deterministic_json(),
            "deterministic JSON differs in cell {label}"
        );
        assert_eq!(
            corpus_bytes, baseline_corpus,
            "corpus bytes differ in cell {label}"
        );
    }
    // The run halves differ by construction (telemetry present or not).
    assert!(baseline.telemetry.is_none());
    assert!(cells[2].1.telemetry.is_some());
}

/// The flight recorder aggregated at the epoch barrier must be
/// schedule-independent: identical counters (spans, per-pass, per-rule,
/// solver-query count) at `--jobs 1` and `--jobs 4`.  Only the *timings*
/// may differ between runs.
#[test]
fn recorder_counters_are_schedule_independent() {
    let sequential = hunt(1, Some(quiet_telemetry(None)), &scratch("counters-1.txt"));
    let parallel = hunt(4, Some(quiet_telemetry(None)), &scratch("counters-4.txt"));
    let one = sequential.telemetry.expect("recorder present");
    let four = parallel.telemetry.expect("recorder present");
    for stage in Stage::ALL {
        assert_eq!(
            one.stage(stage).spans,
            four.stage(stage).spans,
            "span count for {} differs across --jobs",
            stage.name()
        );
    }
    assert_eq!(one.passes(), four.passes(), "per-pass counters differ");
    assert_eq!(one.rules(), four.rules(), "per-rule counters differ");
    assert_eq!(
        one.solver().count(),
        four.solver().count(),
        "solver query count differs"
    );
}

/// The event log is well-formed JSONL: every line parses on its own,
/// carries the `gauntlet-events-v1` schema tag and a timestamp, and the
/// stream is framed by `campaign_start` and `campaign_end`.
#[test]
fn event_log_is_well_formed_and_schema_tagged() {
    let events_path = scratch("events.jsonl");
    let _ = std::fs::remove_file(&events_path);
    let report = hunt(
        2,
        Some(quiet_telemetry(Some(events_path.display().to_string()))),
        &scratch("corpus-events.txt"),
    );
    let text = std::fs::read_to_string(&events_path).expect("event log written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "event log is empty");
    let mut names = Vec::new();
    for (index, line) in lines.iter().enumerate() {
        let event =
            json::parse(line).unwrap_or_else(|e| panic!("line {} unparsable: {e}", index + 1));
        assert_eq!(
            event.get("schema").and_then(|s| s.as_str()),
            Some(EVENTS_SCHEMA),
            "line {} lacks the schema tag",
            index + 1
        );
        assert!(
            event.get("ts_ms").and_then(|t| t.as_u64()).is_some(),
            "line {} lacks ts_ms",
            index + 1
        );
        names.push(
            event
                .get("event")
                .and_then(|e| e.as_str())
                .expect("event name")
                .to_string(),
        );
    }
    assert_eq!(names.first().map(String::as_str), Some("campaign_start"));
    assert_eq!(names.last().map(String::as_str), Some("campaign_end"));
    // One seed event per committed seed, in seed order.
    let seeds = names.iter().filter(|n| *n == "seed").count();
    assert_eq!(seeds, report.programs_checked);
}
