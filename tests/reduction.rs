//! Integration tests for the reduction subsystem wired through the
//! campaign engine — the acceptance contract of the `p4-reduce` PR:
//! on a seeded-bug hunt every committed finding carries a minimized
//! reproducer that (a) reproduces the same dedup key through its oracle,
//! (b) is at most 40% of the original program's statement count on median,
//! and (c) is byte-identical across `--jobs` settings.

use gauntlet_core::{Gauntlet, HuntConfig, ParallelCampaign, Platform, SeededBug};
use p4_gen::RandomProgramGenerator;
use p4_reduce::statement_count;

fn seeded_semantic_bug() -> SeededBug {
    SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == Platform::P4c && !b.is_crash_class())
        .expect("catalogue has a P4C semantic bug")
}

mod common;
use common::full_acceptance;

#[test]
fn seeded_hunt_reduces_every_report() {
    let full = full_acceptance();
    let bug = seeded_semantic_bug();
    let base = HuntConfig {
        seed_count: if full { 50 } else { 10 },
        reduce_reports: true,
        ..HuntConfig::default()
    };

    let sequential = ParallelCampaign::new(HuntConfig {
        jobs: 1,
        ..base.clone()
    })
    .run(|| bug.build_compiler());
    assert!(
        sequential.total_bugs > 0,
        "the seeded bug must fire somewhere in {} programs",
        base.seed_count
    );
    assert_eq!(
        sequential.reduction_failures, 0,
        "every finding's oracle must reproduce its dedup key"
    );

    // (c) Byte-identical reports (including minimized sources and stats)
    // across thread counts.
    let parallel = ParallelCampaign::new(HuntConfig {
        jobs: 8,
        ..base.clone()
    })
    .run(|| bug.build_compiler());
    assert_eq!(sequential.render(), parallel.render());
    for (a, b) in sequential.outcomes.iter().zip(parallel.outcomes.iter()) {
        assert_eq!(a.seed, b.seed);
        for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
            assert_eq!(ra.minimized, rb.minimized, "seed {}", a.seed);
            assert_eq!(ra.reduction, rb.reduction, "seed {}", a.seed);
        }
    }

    let mut ratios: Vec<f64> = Vec::new();
    for outcome in &sequential.outcomes {
        let original = RandomProgramGenerator::new(base.generator.clone(), outcome.seed).generate();
        let original_statements = statement_count(&original);
        for report in &outcome.reports {
            // Every committed finding carries a minimized reproducer.
            let minimized_src = report
                .minimized
                .as_deref()
                .unwrap_or_else(|| panic!("seed {}: report not reduced", outcome.seed));
            let stats = report
                .reduction
                .expect("stats accompany the minimized source");
            assert_eq!(
                stats.initial_statements, original_statements,
                "seed {}",
                outcome.seed
            );

            // (a) The minimized source re-parses, typechecks, and
            // reproduces the identical dedup key through its oracle.
            let minimized = p4_parser::parse_program(minimized_src)
                .unwrap_or_else(|e| panic!("seed {}: minimized does not parse: {e}", outcome.seed));
            assert!(
                p4_check::check_program(&minimized).is_empty(),
                "seed {}: minimized reproducer is ill-typed",
                outcome.seed
            );
            assert_eq!(statement_count(&minimized), stats.final_statements);
            let mut oracle = Gauntlet::open_compiler_oracle(report, bug.build_compiler());
            assert!(
                oracle.reproduces(&minimized, &report.dedup_key()),
                "seed {}: minimized reproducer lost the bug `{}`",
                outcome.seed,
                report.dedup_key()
            );

            ratios.push(stats.final_statements as f64 / stats.initial_statements.max(1) as f64);
        }
    }

    // (b) Median size at most 40% of the original statement count — the
    // CI-enforced threshold, judged only at the full 50-seed budget (the
    // smoke sample is too small for a stable median).
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = ratios[ratios.len() / 2];
    if full {
        assert!(
            median <= 0.40,
            "median reduced size {:.0}% exceeds the 40% bound (ratios: {ratios:?})",
            median * 100.0
        );
    }
}

/// Reduction with the symbolic-execution (black-box) oracle: a padded BMv2
/// trigger shrinks while the STF replay keeps failing identically.
#[test]
fn testgen_oracle_reduces_a_backend_trigger() {
    use p4_ir::{builder, Block, Expr, Statement};
    let bug = SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == Platform::Bmv2)
        .expect("catalogue has a BMv2 bug");

    // The exit-ignored trigger padded with irrelevant metadata writes.
    let mut statements = vec![
        Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(3, 8)),
        Statement::assign(Expr::dotted(&["meta", "tmp"]), Expr::uint(9, 16)),
    ];
    statements.extend(
        bug.trigger_program()
            .control("ingress_impl")
            .expect("skeleton ingress")
            .apply
            .statements
            .clone(),
    );
    let program = builder::v1model_program(vec![], Block::new(statements));

    let gauntlet = Gauntlet::default();
    let reports = bug.detect(&gauntlet, &program);
    assert!(
        !reports.is_empty(),
        "padded trigger must still expose the bug"
    );
    let mut report = reports[0].clone();
    let target = report.dedup_key();

    let mut oracle = bug.oracle(gauntlet.options.max_tests);
    assert!(gauntlet.reduce_report(&mut *oracle, &program, &mut report));
    let stats = report.reduction.expect("stats attached");
    assert!(
        stats.final_statements < stats.initial_statements,
        "the padding should reduce away: {stats:?}"
    );
    let minimized = p4_parser::parse_program(report.minimized.as_deref().expect("minimized"))
        .expect("minimized parses");
    assert!(oracle.reproduces(&minimized, &target));
}
