//! Helpers shared by the integration-test binaries.

/// Whether the full acceptance budget is enabled.  The 50-seed hunts
/// dominate `cargo test -q` wall-clock, so the default run uses a 10-seed
/// smoke variant; CI sets `GAUNTLET_FULL_ACCEPTANCE=1` and keeps enforcing
/// the statistical thresholds at the full budget.
pub fn full_acceptance() -> bool {
    std::env::var("GAUNTLET_FULL_ACCEPTANCE").as_deref() == Ok("1")
}
