//! Golden snapshot tests for report rendering: fixture `HuntReport`s pinned
//! against verbatim `render`/`render_table2`/`render_table3` output.
//!
//! The totals-row defect fixed in the reduction PR had no pinned-output
//! regression test — a formatting change could silently corrupt every
//! rendered campaign artifact.  These fixtures cover the per-seed report
//! blocks (including reduction stats and attribution tags), the Table 2/3
//! analogues with their margin columns, and the coverage and mutation
//! blocks added by the coverage-guided and metamorphic dimensions.

use gauntlet_core::{
    render_table2, render_table3, BugKind, BugReport, CompilerArea, CoverageSummary, HuntReport,
    MutationSummary, Platform, SeedOutcome, Technique,
};
use std::time::Duration;

/// A hunt fixture exercising every rendered feature at once: a reduced
/// translation-validation finding, a differential finding with attribution,
/// a metamorphic divergence, plus coverage and mutation blocks.
fn fixture_hunt() -> HuntReport {
    let mut semantic = BugReport::new(
        BugKind::Semantic,
        Platform::P4c,
        CompilerArea::FrontEnd,
        Technique::TranslationValidation,
        Some("SimplifyDefUse".into()),
        "semantic difference in block `ingress`:\n  hdr.h.a: Bv(8w1) -> Bv(8w0)".into(),
    );
    semantic.minimized = Some("<minimized program>".into());
    semantic.reduction = Some(p4_reduce::ReductionStats {
        initial_statements: 24,
        final_statements: 2,
        initial_nodes: 60,
        final_nodes: 5,
        oracle_calls: 31,
        typecheck_rejections: 4,
        accepted_steps: 6,
        rounds: 2,
    });
    let differential = BugReport::new(
        BugKind::Semantic,
        Platform::Bmv2,
        CompilerArea::BackEnd,
        Technique::SymbolicExecution,
        None,
        "stf differential mismatch on `hdr.h.a`: consensus Bv(8w1), observed Bv(8w2) (3 of 8 tests failed, 3-way)".into(),
    )
    .attributed_to("bmv2");
    let metamorphic = BugReport::new(
        BugKind::Metamorphic,
        Platform::P4c,
        CompilerArea::FrontEnd,
        Technique::MetamorphicMutation,
        None,
        "mutation chain `OpaqueGuard` diverges on `hdr.h.a`\nsemantic difference in block `ingress`:\n  hdr.h.a: Bv(8w7) -> Bv(8w0)".into(),
    );
    HuntReport {
        outcomes: vec![
            SeedOutcome {
                seed: 3,
                reports: vec![semantic, differential],
            },
            SeedOutcome {
                seed: 7,
                reports: vec![metamorphic],
            },
        ],
        programs_checked: 50,
        total_bugs: 3,
        elapsed: Duration::from_millis(1234),
        per_worker: vec![26, 24],
        reduction_failures: 0,
        coverage: Some(CoverageSummary {
            fired: vec![
                "ConstantFolding/fold_arith".into(),
                "Predication/predicate_then".into(),
                "StrengthReduction/add_zero_identity".into(),
            ],
            rules_total: 39,
            constructs_seen: 17,
            corpus_size: 3,
            corpus_added: 1,
            rules_over_time: vec![(25, 2), (50, 3)],
        }),
        mutation: Some(MutationSummary {
            mutants_checked: 96,
            divergent: 1,
            fired: vec![
                "AlgebraicRewrite/xor_zero".into(),
                "ControlFlowWrap/block_wrap".into(),
                "OpaqueGuard/opaque_false_branch".into(),
                "ReorderIndependent/swap_independent".into(),
            ],
            rules_total: 10,
        }),
        // Run-descriptive like `elapsed`: must not influence the render.
        cache: Some(gauntlet_core::CacheSummary::default()),
    }
}

const EXPECTED_RENDER: &str = "\
programs checked: 50, seeds with bugs: 2, bug reports: 3
seed 3:
  [Semantic/P4C/Front End] pass SimplifyDefUse: semantic difference in block `ingress`:
    minimized: 24 -> 2 statements (31 oracle calls, 6 steps)
  [Semantic/BMv2/Back End] pass -: stf differential mismatch on `hdr.h.a`: consensus Bv(8w1), observed Bv(8w2) (3 of 8 tests failed, 3-way) [attributed: bmv2]
seed 7:
  [Metamorphic/P4C/Front End] pass -: mutation chain `OpaqueGuard` diverges on `hdr.h.a`
coverage: 3/39 pass-rewrite rules fired, 17 construct pairs seen
corpus: 3 program(s) (1 added this hunt)
coverage over time (programs:rules): 25:2 50:3
mutation: 96 mutant(s) checked, 1 divergent, 4/10 mutator rules applied
";

const EXPECTED_TABLE2: &str = "\
Table 2 (reproduction): distinct seeded bugs detected
Bug Type          P4C     BMv2   Tofino  RefIntp    Model    Total
Crash               0        0        0        0        0        0
Semantic            2        1        0        0        0        3
Total               2        1        0        0        0        3

Per-target attribution (differential/testgen majority vote):
bmv2                1

coverage: 3/39 pass-rewrite rules fired, 17 construct pairs seen
corpus: 3 program(s) (1 added this hunt)
coverage over time (programs:rules): 25:2 50:3

mutation: 96 mutant(s) checked, 1 divergent, 4/10 mutator rules applied
";

const EXPECTED_TABLE3: &str = "\
Table 3 (reproduction): distinct seeded bugs by compiler area
Location         Bugs
Front End           2
Mid End             0
Back End            1
Total               3
";

#[test]
fn hunt_render_is_pinned_verbatim() {
    assert_eq!(fixture_hunt().render(), EXPECTED_RENDER);
}

#[test]
fn campaign_summary_table2_is_pinned_verbatim() {
    let summary = fixture_hunt().campaign_summary();
    assert_eq!(render_table2(&summary), EXPECTED_TABLE2);
}

#[test]
fn campaign_summary_table3_is_pinned_verbatim() {
    let summary = fixture_hunt().campaign_summary();
    assert_eq!(render_table3(&summary), EXPECTED_TABLE3);
}

/// The totals-row regression fixed in the reduction PR, pinned numerically:
/// per-platform totals under their columns plus both margins.
#[test]
fn table2_totals_row_carries_per_platform_totals_and_margins() {
    let summary = fixture_hunt().campaign_summary();
    let text = render_table2(&summary);
    let totals: Vec<usize> = text
        .lines()
        .find(|line| line.starts_with("Total"))
        .expect("total row")
        .split_whitespace()
        .skip(1)
        .map(|v| v.parse().expect("numeric"))
        .collect();
    // P4C (semantic TV + metamorphic), BMv2, Tofino, RefInterp, Model, grand.
    assert_eq!(totals, vec![2, 1, 0, 0, 0, 3]);
}

/// Metamorphic findings count as semantic (non-crash) miscompilations in
/// the Table 2 buckets.
#[test]
fn metamorphic_kind_is_not_crash_like() {
    assert!(!BugKind::Metamorphic.is_crash_like());
}
