//! Golden snapshot tests for report rendering: fixture `HuntReport`s pinned
//! against verbatim `render`/`render_table2`/`render_table3` output.
//!
//! The totals-row defect fixed in the reduction PR had no pinned-output
//! regression test — a formatting change could silently corrupt every
//! rendered campaign artifact.  These fixtures cover the per-seed report
//! blocks (including reduction stats and attribution tags), the Table 2/3
//! analogues with their margin columns, and the coverage and mutation
//! blocks added by the coverage-guided and metamorphic dimensions.

use gauntlet_core::{
    render_table2, render_table3, BugKind, BugReport, CompilerArea, CoverageSummary,
    DiversitySummary, HuntReport, MutationSummary, Platform, SeedOutcome, Technique,
};
use gauntlet_telemetry::json;
use std::time::Duration;

/// A hunt fixture exercising every rendered feature at once: a reduced
/// translation-validation finding, a differential finding with attribution,
/// a metamorphic divergence, plus coverage and mutation blocks.
fn fixture_hunt() -> HuntReport {
    let mut semantic = BugReport::new(
        BugKind::Semantic,
        Platform::P4c,
        CompilerArea::FrontEnd,
        Technique::TranslationValidation,
        Some("SimplifyDefUse".into()),
        "semantic difference in block `ingress`:\n  hdr.h.a: Bv(8w1) -> Bv(8w0)".into(),
    );
    semantic.minimized = Some("<minimized program>".into());
    semantic.reduction = Some(p4_reduce::ReductionStats {
        initial_statements: 24,
        final_statements: 2,
        initial_nodes: 60,
        final_nodes: 5,
        oracle_calls: 31,
        typecheck_rejections: 4,
        accepted_steps: 6,
        rounds: 2,
    });
    let differential = BugReport::new(
        BugKind::Semantic,
        Platform::Bmv2,
        CompilerArea::BackEnd,
        Technique::SymbolicExecution,
        None,
        "stf differential mismatch on `hdr.h.a`: consensus Bv(8w1), observed Bv(8w2) (3 of 8 tests failed, 3-way)".into(),
    )
    .attributed_to("bmv2");
    let metamorphic = BugReport::new(
        BugKind::Metamorphic,
        Platform::P4c,
        CompilerArea::FrontEnd,
        Technique::MetamorphicMutation,
        None,
        "mutation chain `OpaqueGuard` diverges on `hdr.h.a`\nsemantic difference in block `ingress`:\n  hdr.h.a: Bv(8w7) -> Bv(8w0)".into(),
    );
    HuntReport {
        outcomes: vec![
            SeedOutcome {
                seed: 3,
                reports: vec![semantic, differential],
            },
            SeedOutcome {
                seed: 7,
                reports: vec![metamorphic],
            },
        ],
        programs_checked: 50,
        total_bugs: 3,
        elapsed: Duration::from_millis(1234),
        per_worker: vec![26, 24],
        reduction_failures: 0,
        coverage: Some(CoverageSummary {
            fired: vec![
                "ConstantFolding/fold_arith".into(),
                "Predication/predicate_then".into(),
                "StrengthReduction/add_zero_identity".into(),
            ],
            rules_total: 39,
            constructs_seen: 17,
            corpus_size: 3,
            corpus_added: 1,
            rules_over_time: vec![(25, 2), (50, 3)],
            pairs: vec![
                "ConstantFolding/fold_arith->Predication/predicate_then".into(),
                "ConstantFolding/fold_arith->StrengthReduction/add_zero_identity".into(),
            ],
            pairs_total: 627,
        }),
        mutation: Some(MutationSummary {
            mutants_checked: 96,
            divergent: 1,
            fired: vec![
                "AlgebraicRewrite/xor_zero".into(),
                "ControlFlowWrap/block_wrap".into(),
                "OpaqueGuard/opaque_false_branch".into(),
                "ReorderIndependent/swap_independent".into(),
            ],
            rules_total: 10,
        }),
        diversity: Some(DiversitySummary {
            slices: 2,
            distinct_bugs: [("slice-0".to_string(), 2), ("slice-1".to_string(), 1)]
                .into_iter()
                .collect(),
        }),
        // Run-descriptive like `elapsed`: must not influence the render.
        cache: Some(gauntlet_core::CacheSummary::default()),
        telemetry: None,
    }
}

const EXPECTED_RENDER: &str = "\
programs checked: 50, seeds with bugs: 2, bug reports: 3
seed 3:
  [Semantic/P4C/Front End] pass SimplifyDefUse: semantic difference in block `ingress`:
    minimized: 24 -> 2 statements (31 oracle calls, 6 steps)
  [Semantic/BMv2/Back End] pass -: stf differential mismatch on `hdr.h.a`: consensus Bv(8w1), observed Bv(8w2) (3 of 8 tests failed, 3-way) [attributed: bmv2]
seed 7:
  [Metamorphic/P4C/Front End] pass -: mutation chain `OpaqueGuard` diverges on `hdr.h.a`
coverage: 3/39 pass-rewrite rules fired, 17 construct pairs seen
interactions: 2/627 cross-pass rule pairs observed
corpus: 3 program(s) (1 added this hunt)
coverage over time (programs:rules): 25:2 50:3
mutation: 96 mutant(s) checked, 1 divergent, 4/10 mutator rules applied
diversity: 2 slice(s); distinct bugs per slice: slice-0:2 slice-1:1
";

const EXPECTED_TABLE2: &str = "\
Table 2 (reproduction): distinct seeded bugs detected
Bug Type          P4C     BMv2   Tofino  RefIntp    Model    Total
Crash               0        0        0        0        0        0
Semantic            2        1        0        0        0        3
Total               2        1        0        0        0        3

Per-target attribution (differential/testgen majority vote):
bmv2                1

coverage: 3/39 pass-rewrite rules fired, 17 construct pairs seen
interactions: 2/627 cross-pass rule pairs observed
corpus: 3 program(s) (1 added this hunt)
coverage over time (programs:rules): 25:2 50:3

mutation: 96 mutant(s) checked, 1 divergent, 4/10 mutator rules applied
";

const EXPECTED_TABLE3: &str = "\
Table 3 (reproduction): distinct seeded bugs by compiler area
Location         Bugs
Front End           2
Mid End             0
Back End            1
Total               3
";

#[test]
fn hunt_render_is_pinned_verbatim() {
    assert_eq!(fixture_hunt().render(), EXPECTED_RENDER);
}

#[test]
fn campaign_summary_table2_is_pinned_verbatim() {
    let summary = fixture_hunt().campaign_summary();
    assert_eq!(render_table2(&summary), EXPECTED_TABLE2);
}

#[test]
fn campaign_summary_table3_is_pinned_verbatim() {
    let summary = fixture_hunt().campaign_summary();
    assert_eq!(render_table3(&summary), EXPECTED_TABLE3);
}

/// The totals-row regression fixed in the reduction PR, pinned numerically:
/// per-platform totals under their columns plus both margins.
#[test]
fn table2_totals_row_carries_per_platform_totals_and_margins() {
    let summary = fixture_hunt().campaign_summary();
    let text = render_table2(&summary);
    let totals: Vec<usize> = text
        .lines()
        .find(|line| line.starts_with("Total"))
        .expect("total row")
        .split_whitespace()
        .skip(1)
        .map(|v| v.parse().expect("numeric"))
        .collect();
    // P4C (semantic TV + metamorphic), BMv2, Tofino, RefInterp, Model, grand.
    assert_eq!(totals, vec![2, 1, 0, 0, 0, 3]);
}

/// Metamorphic findings count as semantic (non-crash) miscompilations in
/// the Table 2 buckets.
#[test]
fn metamorphic_kind_is_not_crash_like() {
    assert!(!BugKind::Metamorphic.is_crash_like());
}

// ---------------------------------------------------------------------------
// gauntlet-report-v1: the machine-readable report
// ---------------------------------------------------------------------------

/// The fixture hunt's full `gauntlet-report-v1` document, pinned verbatim.
/// Key order is part of the schema contract (the serde shim is a no-op, so
/// the emitter writes keys in a fixed order); any change here is a schema
/// change and must bump the version tag.
const EXPECTED_JSON: &str = concat!(
    r#"{"schema":"gauntlet-report-v1","result":{"programs_checked":50,"seeds_with_bugs":2,"total_bugs":3,"reduction_failures":0,"#,
    r#""outcomes":[{"seed":3,"reports":[{"kind":"Semantic","platform":"P4C","area":"Front End","technique":"TranslationValidation","pass":"SimplifyDefUse","message":"semantic difference in block `ingress`:\n  hdr.h.a: Bv(8w1) -> Bv(8w0)","attributed_to":null,"minimized":"<minimized program>","reduction":{"initial_statements":24,"final_statements":2,"initial_nodes":60,"final_nodes":5,"oracle_calls":31,"typecheck_rejections":4,"accepted_steps":6,"rounds":2}},"#,
    r#"{"kind":"Semantic","platform":"BMv2","area":"Back End","technique":"SymbolicExecution","pass":null,"message":"stf differential mismatch on `hdr.h.a`: consensus Bv(8w1), observed Bv(8w2) (3 of 8 tests failed, 3-way)","attributed_to":"bmv2","minimized":null,"reduction":null}]},"#,
    r#"{"seed":7,"reports":[{"kind":"Metamorphic","platform":"P4C","area":"Front End","technique":"MetamorphicMutation","pass":null,"message":"mutation chain `OpaqueGuard` diverges on `hdr.h.a`\nsemantic difference in block `ingress`:\n  hdr.h.a: Bv(8w7) -> Bv(8w0)","attributed_to":null,"minimized":null,"reduction":null}]}],"#,
    r#""summary":{"by_platform":{"BMv2/semantic":1,"P4C/semantic":2},"by_area":{"Back End":1,"Front End":2},"by_attribution":{"bmv2":1},"total_detected":3},"#,
    r#""coverage":{"fired":["ConstantFolding/fold_arith","Predication/predicate_then","StrengthReduction/add_zero_identity"],"rules_total":39,"constructs_seen":17,"corpus_size":3,"corpus_added":1,"rules_over_time":[[25,2],[50,3]],"pairs":["ConstantFolding/fold_arith->Predication/predicate_then","ConstantFolding/fold_arith->StrengthReduction/add_zero_identity"],"pairs_total":627},"#,
    r#""mutation":{"mutants_checked":96,"divergent":1,"fired":["AlgebraicRewrite/xor_zero","ControlFlowWrap/block_wrap","OpaqueGuard/opaque_false_branch","ReorderIndependent/swap_independent"],"rules_total":10},"#,
    r#""diversity":{"slices":2,"distinct_bugs":{"slice-0":2,"slice-1":1}}},"#,
    r#""run":{"elapsed_us":1234000,"per_worker":[26,24],"cache":{"epochs":0,"stats":{"semantics_hits":0,"semantics_misses":0,"verdict_hits":0,"verdict_misses":0},"sessions":{"semantics_hits":0,"semantics_misses":0,"trivial_checks":0,"solver_checks":0,"cached_checks":0,"verdict_hits":0,"verdict_misses":0},"portfolio_races":0},"telemetry":null}}"#,
);

#[test]
fn report_json_is_pinned_verbatim() {
    assert_eq!(fixture_hunt().to_json(), EXPECTED_JSON);
}

/// The deterministic half is exactly the `result` object of the full
/// document — what the determinism matrix test compares across runs.
#[test]
fn deterministic_json_is_the_result_half() {
    let hunt = fixture_hunt();
    assert!(hunt.to_json().contains(&hunt.deterministic_json()));
}

fn counter_map(value: &json::Json) -> std::collections::BTreeMap<String, usize> {
    value
        .as_counter_map()
        .expect("counter map")
        .into_iter()
        .map(|(key, count)| (key, count as usize))
        .collect()
}

fn u64_field(value: &json::Json, key: &str) -> u64 {
    value
        .get(key)
        .and_then(|field| field.as_u64())
        .unwrap_or_else(|| panic!("u64 field {key}"))
}

fn string_array(value: &json::Json) -> Vec<String> {
    value
        .as_array()
        .expect("array")
        .iter()
        .map(|item| item.as_str().expect("string").to_string())
        .collect()
}

/// The derivability guarantee: `render_table2` and `render_table3` can be
/// reproduced from the parsed JSON document alone, without the original
/// `HuntReport`.  The reconstruction goes through `CampaignReport`, proving
/// the summary/coverage/mutation blocks carry everything the tables need.
#[test]
fn tables_are_derivable_from_the_json_report() {
    let hunt = fixture_hunt();
    let parsed = json::parse(&hunt.to_json()).expect("report JSON parses");
    let result = parsed.get("result").expect("result half");
    let summary = result.get("summary").expect("summary block");

    let coverage = result.get("coverage").and_then(|block| match block {
        json::Json::Null => None,
        block => Some(CoverageSummary {
            fired: string_array(block.get("fired").expect("fired")),
            rules_total: u64_field(block, "rules_total") as usize,
            constructs_seen: u64_field(block, "constructs_seen") as usize,
            corpus_size: u64_field(block, "corpus_size") as usize,
            corpus_added: u64_field(block, "corpus_added") as usize,
            rules_over_time: block
                .get("rules_over_time")
                .and_then(|t| t.as_array())
                .expect("trajectory")
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().expect("pair");
                    (
                        pair[0].as_u64().expect("programs") as usize,
                        pair[1].as_u64().expect("rules") as usize,
                    )
                })
                .collect(),
            pairs: string_array(block.get("pairs").expect("pairs")),
            pairs_total: u64_field(block, "pairs_total") as usize,
        }),
    });
    let mutation = result.get("mutation").and_then(|block| match block {
        json::Json::Null => None,
        block => Some(MutationSummary {
            mutants_checked: u64_field(block, "mutants_checked") as usize,
            divergent: u64_field(block, "divergent") as usize,
            fired: string_array(block.get("fired").expect("fired")),
            rules_total: u64_field(block, "rules_total") as usize,
        }),
    });

    let reconstructed = gauntlet_core::CampaignReport {
        outcomes: Vec::new(),
        by_platform: counter_map(summary.get("by_platform").expect("by_platform")),
        by_area: counter_map(summary.get("by_area").expect("by_area")),
        by_attribution: counter_map(summary.get("by_attribution").expect("by_attribution")),
        false_alarms: 0,
        total_detected: u64_field(summary, "total_detected") as usize,
        coverage,
        mutation,
    };

    let direct = hunt.campaign_summary();
    assert_eq!(render_table2(&reconstructed), render_table2(&direct));
    assert_eq!(render_table3(&reconstructed), render_table3(&direct));
    assert_eq!(render_table2(&reconstructed), EXPECTED_TABLE2);
    assert_eq!(render_table3(&reconstructed), EXPECTED_TABLE3);
}
