//! End-to-end tests of the coverage-guided campaign: guided hunts must beat
//! the unguided baseline at equal seed budget, the whole feedback loop must
//! stay byte-identical across `--jobs`, and corpus replay alone must
//! reproduce the saved coverage fingerprint (serialization round-trip).

use gauntlet_core::{Corpus, CoverageOptions, HuntConfig, HuntReport, ParallelCampaign};
use p4_gen::GeneratorConfig;
use std::path::PathBuf;

mod common;
use common::full_acceptance;

/// Seed budget shared by the guided and unguided hunts.
fn budget() -> usize {
    if full_acceptance() {
        50
    } else {
        10
    }
}

/// Epoch length scaled to the budget (two adaptation epochs either way).
fn adapt_every() -> usize {
    budget().div_ceil(2).max(1)
}

fn hunt_with_pairs(
    adapt: bool,
    pairs: bool,
    jobs: usize,
    seeds: usize,
    corpus: Option<String>,
) -> HuntReport {
    ParallelCampaign::new(HuntConfig {
        jobs,
        seed_start: 0,
        seed_count: seeds,
        generator: GeneratorConfig::tiny(),
        coverage: Some(CoverageOptions {
            adapt,
            adapt_every: adapt_every(),
            corpus,
            pairs,
        }),
        ..HuntConfig::default()
    })
    .run(p4c::Compiler::reference)
}

fn hunt(adapt: bool, jobs: usize, seeds: usize, corpus: Option<String>) -> HuntReport {
    hunt_with_pairs(adapt, true, jobs, seeds, corpus)
}

/// A scratch path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gauntlet-coverage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// The headline claim: with an identical seed budget, closing the
/// generate→compile→validate loop fires at least 20% more distinct
/// pass-rewrite rules than hunting with static weights.
#[test]
fn guided_hunt_beats_unguided_baseline_at_equal_budget() {
    let unguided = hunt(false, 2, budget(), None);
    let guided = hunt(true, 2, budget(), None);
    let baseline = unguided.coverage.expect("coverage accounting on");
    let steered = guided.coverage.expect("coverage accounting on");
    assert_eq!(unguided.programs_checked, budget());
    assert_eq!(guided.programs_checked, budget());
    assert!(
        steered.rules_fired() >= baseline.rules_fired(),
        "guided coverage must not regress: {} vs {}",
        steered.rules_fired(),
        baseline.rules_fired()
    );
    // The CI-enforced thresholds (strict gain, >= 20%) hold at the full
    // 50-seed budget; the 10-seed smoke run only guards the plumbing.
    if full_acceptance() {
        assert!(
            steered.rules_fired() > baseline.rules_fired(),
            "guided coverage must be strictly higher: {} vs {}",
            steered.rules_fired(),
            baseline.rules_fired()
        );
        assert!(
            steered.rules_fired() as f64 >= baseline.rules_fired() as f64 * 1.2,
            "guided coverage must be >= 20% higher: guided {} vs unguided {} (of {})",
            steered.rules_fired(),
            baseline.rules_fired(),
            steered.rules_total
        );
    }
    // The trajectory is monotone and ends at the reported total.
    let mut last = 0;
    for &(_, rules) in &steered.rules_over_time {
        assert!(
            rules >= last,
            "coverage can only grow: {:?}",
            steered.rules_over_time
        );
        last = rules;
    }
    assert_eq!(last, steered.rules_fired());
}

/// The pair-steering claim (ISSUE 10): feeding uncovered *cross-pass rule
/// pairs* to the weight adapter alongside unfired rules observes at least
/// 15% more distinct pairs than rule-only steering at the same seed budget
/// — interactions are where historical miscompiles hide, so the frontier is
/// worth steering towards directly.
#[test]
fn pair_steering_beats_rule_only_steering_at_equal_budget() {
    let rule_only = hunt_with_pairs(true, false, 2, budget(), None);
    let pair_steered = hunt_with_pairs(true, true, 2, budget(), None);
    let baseline = rule_only.coverage.expect("coverage accounting on");
    let steered = pair_steered.coverage.expect("coverage accounting on");
    // Pair *tracking* is always on; only the steering signal differs.
    assert!(baseline.pairs_total > 0 && steered.pairs_total > 0);
    assert!(
        steered.pairs_fired() > 0 && baseline.pairs_fired() > 0,
        "both modes must observe cross-pass pairs: {} vs {}",
        steered.pairs_fired(),
        baseline.pairs_fired()
    );
    // The CI-enforced threshold holds at the full 50-seed budget; the
    // 10-seed smoke run only guards the plumbing (a handful of seeds is
    // inside run-to-run noise for the steering comparison itself).
    if full_acceptance() {
        assert!(
            steered.pairs_fired() >= baseline.pairs_fired(),
            "pair steering must not regress pair coverage: {} vs {}",
            steered.pairs_fired(),
            baseline.pairs_fired()
        );
        assert!(
            steered.pairs_fired() as f64 >= baseline.pairs_fired() as f64 * 1.15,
            "pair steering must observe >= 15% more distinct pairs: {} vs {} (of {})",
            steered.pairs_fired(),
            baseline.pairs_fired(),
            steered.pairs_total
        );
    }
    // Every observed pair's members were individually observed as rules.
    for pair in &steered.pairs {
        let (first, second) = pair.split_once("->").expect("pair key shape");
        assert!(steered.fired.iter().any(|rule| rule == first), "{pair}");
        assert!(steered.fired.iter().any(|rule| rule == second), "{pair}");
    }
}

/// Determinism: coverage accumulation, weight adaptation, corpus admission,
/// and the rendered report are all byte-identical at `--jobs 1` vs
/// `--jobs 4`.
#[test]
fn guided_hunt_is_byte_identical_across_jobs() {
    let corpus_1 = scratch("corpus-jobs1.txt");
    let corpus_4 = scratch("corpus-jobs4.txt");
    let _ = std::fs::remove_file(&corpus_1);
    let _ = std::fs::remove_file(&corpus_4);
    let sequential = hunt(true, 1, budget(), Some(corpus_1.display().to_string()));
    let parallel = hunt(true, 4, budget(), Some(corpus_4.display().to_string()));
    assert_eq!(sequential.render(), parallel.render());
    assert_eq!(sequential.coverage, parallel.coverage);
    let bytes_1 = std::fs::read(&corpus_1).expect("corpus saved at jobs 1");
    let bytes_4 = std::fs::read(&corpus_4).expect("corpus saved at jobs 4");
    assert_eq!(bytes_1, bytes_4, "corpus files must be byte-identical");
    assert!(!bytes_1.is_empty());
    let _ = std::fs::remove_file(&corpus_1);
    let _ = std::fs::remove_file(&corpus_4);
}

/// Plateau regression: replaying the saved corpus alone (no fresh
/// generation) reproduces the corpus's coverage fingerprint exactly —
/// guarding the corpus serialization round-trip and the invariant that
/// every rule ever fired is covered by some kept program.
#[test]
fn corpus_replay_alone_reproduces_the_saved_fingerprint() {
    let corpus_path = scratch("corpus-plateau.txt");
    let _ = std::fs::remove_file(&corpus_path);
    let first = hunt(true, 2, budget(), Some(corpus_path.display().to_string()));
    let first_coverage = first.coverage.expect("coverage accounting on");
    let corpus = Corpus::load(&corpus_path).expect("corpus saved");
    assert!(!corpus.is_empty());
    // Every rule the hunt fired is covered by a kept program — and every
    // observed cross-pass pair likewise (admission tests the full signal).
    assert_eq!(corpus.fingerprint(), first_coverage.fired);
    assert_eq!(corpus.pair_fingerprint(), first_coverage.pairs);

    // Replay-only campaign: zero fresh seeds, corpus loaded.
    let replay = hunt(true, 2, 0, Some(corpus_path.display().to_string()));
    let replay_coverage = replay.coverage.expect("coverage accounting on");
    assert_eq!(replay.programs_checked, 0);
    assert_eq!(
        replay_coverage.fired, first_coverage.fired,
        "corpus replay must reproduce the fingerprint exactly"
    );
    assert_eq!(
        replay_coverage.pairs, first_coverage.pairs,
        "corpus replay must reproduce the pair fingerprint exactly"
    );
    assert_eq!(replay_coverage.corpus_added, 0, "replay admits nothing new");
    assert_eq!(replay_coverage.corpus_size, corpus.len());
    let _ = std::fs::remove_file(&corpus_path);
}

/// The coverage block renders into both report forms.
#[test]
fn coverage_block_renders_in_reports() {
    let report = hunt(true, 2, 10, None);
    let rendered = report.render();
    assert!(rendered.contains("pass-rewrite rules fired"), "{rendered}");
    assert!(rendered.contains("cross-pass rule pairs"), "{rendered}");
    assert!(rendered.contains("corpus:"), "{rendered}");
    let table2 = gauntlet_core::render_table2(&report.campaign_summary());
    assert!(table2.contains("pass-rewrite rules fired"), "{table2}");
}
