//! N-way differential testgen: the acceptance contract of the unified
//! `Target` redesign.  A campaign configured with three registry targets
//! runs every generated test on all of them, majority-votes per output
//! field, and attributes each divergence to the target that disagrees (or
//! to the test-generation model when the targets are unanimous against it)
//! — byte-identically across `--jobs` settings.

use gauntlet_core::{render_table2, BugKind, Gauntlet, HuntConfig, ParallelCampaign, Platform};
use p4_ir::{builder, Block, Expr, Statement};
use targets::{Target, TargetRegistry};

fn three_way(specs: [&str; 3]) -> Vec<Box<dyn Target>> {
    let registry = TargetRegistry::builtin();
    specs
        .iter()
        .map(|spec| registry.build_spec(spec).expect("builtin spec"))
        .collect()
}

/// The exit trigger: a target that drops `exit` keeps executing and
/// observes `hdr.h.a == 2` where the model expects `1`.
fn exit_program() -> p4_ir::Program {
    builder::v1model_program(
        vec![],
        Block::new(vec![
            Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
            Statement::Exit,
            Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
        ]),
    )
}

/// A seeded backend bug in exactly one of three targets is attributed to
/// that target — whichever of the three it is.
#[test]
fn seeded_bug_in_one_target_is_attributed_to_that_target() {
    let gauntlet = Gauntlet::default();
    let cases = [
        (
            ["bmv2+Bmv2ExitIgnored", "tofino", "ref-interp"],
            "bmv2",
            Platform::Bmv2,
        ),
        (
            ["bmv2", "tofino+TofinoExitIgnored", "ref-interp"],
            "tofino",
            Platform::Tofino,
        ),
        (
            ["bmv2", "tofino", "ref-interp+Bmv2ExitIgnored"],
            "ref-interp",
            Platform::RefInterp,
        ),
    ];
    for (specs, culprit, platform) in cases {
        let outcome = gauntlet.check_differential(&three_way(specs), &exit_program());
        assert!(!outcome.clean, "{specs:?}: seeded bug not detected");
        for report in &outcome.reports {
            assert_eq!(
                report.attributed_to.as_deref(),
                Some(culprit),
                "{specs:?}: misattributed: {report:#?}"
            );
            assert_eq!(report.platform, platform);
            assert_eq!(report.kind, BugKind::Semantic);
        }
    }
}

/// All targets correct → all agree with the model → clean.
#[test]
fn all_agree_case_is_clean() {
    let gauntlet = Gauntlet::default();
    let outcome = gauntlet.check_differential(
        &three_way(["bmv2", "tofino", "ref-interp"]),
        &exit_program(),
    );
    assert!(outcome.clean, "{:#?}", outcome.reports);
}

/// Every target seeded with the same observable defect: the targets agree
/// with each other and unanimously out-vote the model, so the finding is
/// attributed to the model (i.e. the shared stages / our own oracle).
#[test]
fn model_vs_all_targets_disagreement_is_attributed_to_the_model() {
    let gauntlet = Gauntlet::default();
    let targets = three_way([
        "bmv2+Bmv2ExitIgnored",
        "tofino+TofinoExitIgnored",
        "ref-interp+Bmv2ExitIgnored",
    ]);
    let outcome = gauntlet.check_differential(&targets, &exit_program());
    assert_eq!(outcome.reports.len(), 1, "{:#?}", outcome.reports);
    let report = &outcome.reports[0];
    assert_eq!(report.attributed_to.as_deref(), Some("model"));
    assert_eq!(report.platform, Platform::Model);
    assert_eq!(report.kind, BugKind::Semantic);
}

/// The acceptance criterion end to end: a hunt configured with three
/// targets (one seeded) runs 3-way differential testgen over random
/// programs, the rendered report is byte-identical at every `--jobs`
/// value, and `render_table2` of the summary carries the per-target
/// attribution.
#[test]
fn three_way_hunt_is_byte_identical_across_jobs_and_attributes_per_target() {
    let base = HuntConfig {
        seed_start: 0,
        seed_count: 30,
        targets: vec![
            "bmv2+Bmv2ExitIgnored".to_string(),
            "tofino".to_string(),
            "ref-interp".to_string(),
        ],
        ..HuntConfig::default()
    };
    let sequential = ParallelCampaign::new(HuntConfig {
        jobs: 1,
        ..base.clone()
    })
    .run(p4c::Compiler::reference);
    let parallel =
        ParallelCampaign::new(HuntConfig { jobs: 4, ..base }).run(p4c::Compiler::reference);
    assert_eq!(sequential.render(), parallel.render());
    assert_eq!(sequential.programs_checked, 30);

    // The generator emits `exit` statements, so the seeded BMv2 defect
    // must fire somewhere in 30 programs — and every finding must be
    // pinned on bmv2 by the 3-way vote.
    let attributed: Vec<_> = sequential
        .outcomes
        .iter()
        .flat_map(|o| &o.reports)
        .filter(|r| r.attributed_to.is_some())
        .collect();
    assert!(
        !attributed.is_empty(),
        "seeded bmv2 exit bug never fired over 30 random programs"
    );
    assert!(
        attributed
            .iter()
            .all(|r| r.attributed_to.as_deref() == Some("bmv2")),
        "misattributed findings: {attributed:#?}"
    );

    // Table 2 over the hunt summary shows the per-target attribution.
    let summary = sequential.campaign_summary();
    assert_eq!(
        summary.by_attribution.keys().collect::<Vec<_>>(),
        vec!["bmv2"]
    );
    let table = render_table2(&summary);
    assert!(table.contains("Per-target attribution"), "{table}");
    assert!(table.lines().any(|l| l.starts_with("bmv2")), "{table}");
    // The render is itself deterministic across jobs.
    assert_eq!(table, render_table2(&parallel.campaign_summary()));
}

/// An unknown target spec fails fast with the list of known targets.
#[test]
#[should_panic(expected = "unknown target spec")]
fn invalid_target_spec_fails_fast() {
    let config = HuntConfig {
        seed_count: 1,
        targets: vec!["netronome".to_string()],
        ..HuntConfig::default()
    };
    ParallelCampaign::new(config).run(p4c::Compiler::reference);
}
