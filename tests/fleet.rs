//! Fleet-mode acceptance: the multi-process campaign service must be
//! *exactly* as trustworthy as the in-process engine it wraps.
//!
//! The contracts pinned here:
//!
//! 1. **Determinism** — a two-worker fleet's merged report renders
//!    byte-identical to a single-process `ParallelCampaign` over the same
//!    seed range, and the merged corpus matches byte-for-byte.
//! 2. **Crash tolerance** — killing a worker mid-epoch (after it has taken
//!    a fresh lease) reassigns the lease and still converges on the
//!    byte-identical report.
//! 3. **Checkpoint/resume** — a run stopped after its first checkpoint
//!    resumes from disk and reaches the same final report and corpus.
//! 4. **Hang tolerance** — a stalled worker is killed by the lease timeout
//!    and its shard completes elsewhere.
//!
//! All of these drive the *real* `gauntlet` binary as worker processes
//! (`CARGO_BIN_EXE_gauntlet`), not an in-process simulation.

use gauntlet_core::{Corpus, ParallelCampaign, Platform, SeededBug};
use gauntlet_fleet::{coordinator, Checkpoint, CompilerSpec, FleetMode, FleetOptions, FleetSpec};
use std::path::PathBuf;
use std::time::Duration;

fn worker_command() -> Vec<String> {
    vec![
        env!("CARGO_BIN_EXE_gauntlet").to_string(),
        "fleet-worker".to_string(),
    ]
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gauntlet-fleet-test-{}-{name}", std::process::id()))
}

/// A spec whose seeded bug is guaranteed to produce findings through the
/// open-compiler oracles (P4C platform, not crash-killed), with coverage on
/// so the corpus contract is exercised too.
fn spec(seeds: usize, shard_size: usize) -> FleetSpec {
    let bug = SeededBug::catalogue()
        .into_iter()
        .find(|bug| bug.platform() == Platform::P4c && !bug.is_crash_class())
        .expect("catalogue has an open-compiler semantic bug");
    FleetSpec {
        workers: 2,
        seed_count: seeds,
        shard_size,
        compiler: CompilerSpec::Seeded(bug.name()),
        coverage: true,
        mode: FleetMode::Deterministic,
        ..FleetSpec::default()
    }
}

/// The single-process ground truth for a spec: report plus corpus bytes.
fn baseline(spec: &FleetSpec, tag: &str) -> (String, String) {
    let corpus_path = scratch(&format!("baseline-{tag}.corpus"));
    let _ = std::fs::remove_file(&corpus_path);
    let mut config = spec.hunt_config().expect("hunt config");
    config.coverage.as_mut().expect("coverage on").corpus = Some(corpus_path.display().to_string());
    let compiler = spec.compiler.clone();
    let report = ParallelCampaign::new(config).run(move || compiler.build());
    assert!(report.total_bugs > 0, "the seeded bug must be detectable");
    let corpus = Corpus::load_or_empty(&corpus_path).expect("baseline corpus");
    let _ = std::fs::remove_file(&corpus_path);
    (report.render(), corpus.to_text())
}

#[test]
fn two_worker_fleet_matches_the_single_process_campaign_byte_for_byte() {
    let spec = spec(12, 3);
    let (expect_render, expect_corpus) = baseline(&spec, "determinism");

    let mut options = FleetOptions::new(spec.clone(), worker_command());
    options.quiet = true;
    let outcome = coordinator::hunt(options).expect("fleet hunt");
    let report = outcome.report.expect("completed run has a report");

    assert_eq!(report.render(), expect_render);
    assert_eq!(outcome.corpus.to_text(), expect_corpus);
    // The merged pair coverage is part of both artifacts: the render's
    // `interactions:` line and the corpus's `% pairs=` lines just compared
    // byte-for-byte, and the merged block must actually carry pairs.
    let coverage = report.coverage.as_ref().expect("coverage on");
    assert!(!coverage.pairs.is_empty(), "cross-pass pairs observed");
    assert!(report.diversity.is_none(), "uniform fleet has no diversity");
    assert!(!outcome.interrupted);
    assert_eq!(outcome.stats.shards_total, 4);
    assert_eq!(outcome.stats.worker_deaths, 0);
    // Triage agrees with the report: every distinct dedup key, summed.
    assert_eq!(
        outcome.triage.occurrences() as usize,
        report.total_bugs,
        "triage folds every report occurrence exactly once"
    );

    // Worker-count independence is not just 1-vs-2: a three-worker fleet
    // over the same seed range produces the same bytes again.
    let mut three = spec;
    three.workers = 3;
    let mut options = FleetOptions::new(three, worker_command());
    options.quiet = true;
    let outcome = coordinator::hunt(options).expect("three-worker fleet hunt");
    let report = outcome.report.expect("completed run has a report");
    assert_eq!(report.render(), expect_render);
    assert_eq!(outcome.corpus.to_text(), expect_corpus);
}

#[test]
fn killing_a_worker_mid_epoch_reassigns_the_lease_and_stays_deterministic() {
    let spec = spec(12, 2);
    let (expect_render, expect_corpus) = baseline(&spec, "chaos");

    let mut options = FleetOptions::new(spec, worker_command());
    options.quiet = true;
    // Kill worker 0 right after its first delivered fragment — at that
    // point it has just been handed a fresh lease, which must be recovered.
    options.chaos_kill = Some((0, 1));
    let outcome = coordinator::hunt(options).expect("fleet hunt survives the kill");
    let report = outcome.report.expect("completed run has a report");

    assert!(outcome.stats.worker_deaths >= 1, "the chaos kill happened");
    assert!(
        outcome.stats.leases_reassigned >= 1,
        "the stranded shard was reassigned"
    );
    assert_eq!(report.render(), expect_render);
    assert_eq!(outcome.corpus.to_text(), expect_corpus);
}

#[test]
fn checkpointed_runs_resume_to_the_identical_final_report() {
    let mut spec = spec(12, 3);
    let checkpoint_path = scratch("resume.ckpt");
    let _ = std::fs::remove_file(&checkpoint_path);
    spec.checkpoint = Some(checkpoint_path.display().to_string());
    let (expect_render, expect_corpus) = baseline(&spec, "resume");

    // Phase 1: stop (orderly but incomplete) after the first checkpoint.
    let mut options = FleetOptions::new(spec.clone(), worker_command());
    options.quiet = true;
    options.stop_after_checkpoints = Some(1);
    let interrupted = coordinator::hunt(options).expect("interrupted hunt");
    assert!(interrupted.interrupted);
    assert!(interrupted.report.is_none());
    assert!(interrupted.stats.checkpoints_written >= 1);

    // Phase 2: resume from disk and finish.
    let checkpoint = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    assert!(!checkpoint.complete);
    let done = checkpoint.fragments.len();
    assert!(
        (1..4).contains(&done),
        "stopped part-way ({done} of 4 shards)"
    );
    let mut options = FleetOptions::new(spec, worker_command());
    options.quiet = true;
    let outcome = coordinator::resume(options, checkpoint).expect("fleet resume");
    let report = outcome.report.expect("resumed run completes");

    assert_eq!(report.render(), expect_render);
    assert_eq!(outcome.corpus.to_text(), expect_corpus);
    assert_eq!(
        report.total_bugs,
        outcome.triage.occurrences() as usize,
        "resume does not double-fold checkpointed fragments into triage"
    );

    // The final checkpoint on disk is complete and status-renderable.
    let last = Checkpoint::load(&checkpoint_path).expect("final checkpoint");
    assert!(last.complete);
    assert!(last.remaining_shards().is_empty());
    assert!(last.render_status().contains("COMPLETE"));
    let _ = std::fs::remove_file(&checkpoint_path);
}

/// Swarm diversity under chaos (ISSUE 10 satellite): a diverse fleet that
/// is chaos-killed, checkpointed, and resumed must converge on the same
/// merged `coverage.pairs`, diversity block, and corpus bytes as an
/// uninterrupted run of the same spec — slices are a pure function of the
/// spec, never of which worker process held a lease.
#[test]
fn diversity_pair_state_survives_chaos_kill_and_resume() {
    let mut base = spec(12, 3);
    base.workers = 3;
    base.diversity = true;

    // The uninterrupted reference run.
    let mut options = FleetOptions::new(base.clone(), worker_command());
    options.quiet = true;
    let reference = coordinator::hunt(options).expect("diverse fleet hunt");
    let reference_report = reference.report.expect("completed run has a report");
    let reference_coverage = reference_report.coverage.clone().expect("coverage on");
    let reference_diversity = reference_report
        .diversity
        .clone()
        .expect("diverse fleet reports a diversity block");
    assert_eq!(reference_diversity.slices, 3);
    assert_eq!(reference_diversity.distinct_bugs.len(), 3);
    assert!(!reference_coverage.pairs.is_empty());
    // Triage provenance is per-configuration, not per-process.
    for entry in reference.triage.entries() {
        for provenance in entry.workers.keys() {
            assert!(provenance.starts_with("slice-"), "{provenance}");
        }
    }

    // Chaos run of the same spec: kill a worker mid-epoch, stop after the
    // first checkpoint, resume from disk.
    let checkpoint_path = scratch("diversity.ckpt");
    let _ = std::fs::remove_file(&checkpoint_path);
    let mut chaos_spec = base.clone();
    chaos_spec.checkpoint = Some(checkpoint_path.display().to_string());
    let mut options = FleetOptions::new(chaos_spec.clone(), worker_command());
    options.quiet = true;
    options.chaos_kill = Some((0, 1));
    options.stop_after_checkpoints = Some(1);
    let interrupted = coordinator::hunt(options).expect("interrupted hunt");
    assert!(interrupted.interrupted);

    let checkpoint = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut options = FleetOptions::new(chaos_spec, worker_command());
    options.quiet = true;
    let resumed = coordinator::resume(options, checkpoint).expect("fleet resume");
    let resumed_report = resumed.report.expect("resumed run completes");

    assert_eq!(resumed_report.render(), reference_report.render());
    assert_eq!(
        resumed_report.coverage.as_ref().expect("coverage on").pairs,
        reference_coverage.pairs,
        "merged pair coverage must survive kill + resume byte-identically"
    );
    assert_eq!(
        resumed_report.diversity.as_ref().expect("diversity block"),
        &reference_diversity
    );
    assert_eq!(resumed.corpus.to_text(), reference.corpus.to_text());
    let _ = std::fs::remove_file(&checkpoint_path);
}

#[test]
fn a_stalled_worker_is_killed_by_the_lease_timeout_and_the_hunt_completes() {
    let spec = spec(8, 2);
    let (expect_render, _) = baseline(&spec, "stall");

    let mut options = FleetOptions::new(spec, worker_command());
    options.quiet = true;
    // Worker 1's first assignment is withheld (the worker parks); only the
    // lease timeout can recover the shard.
    options.chaos_stall = Some((1, 0));
    options.lease_timeout = Some(Duration::from_millis(300));
    let outcome = coordinator::hunt(options).expect("fleet hunt survives the stall");
    let report = outcome.report.expect("completed run has a report");

    assert!(
        outcome.stats.worker_deaths >= 1,
        "the stalled worker was killed"
    );
    assert!(outcome.stats.leases_reassigned >= 1);
    assert_eq!(report.render(), expect_render);
}

#[test]
fn merged_event_log_validates_per_process_streams() {
    let mut spec = spec(6, 3);
    spec.coverage = false;
    let events_path = scratch("events.jsonl");
    let _ = std::fs::remove_file(&events_path);

    let mut options = FleetOptions::new(spec, worker_command());
    options.quiet = true;
    options.events = Some(events_path.display().to_string());
    let outcome = coordinator::hunt(options).expect("fleet hunt");
    assert!(outcome.report.is_some());

    let text = std::fs::read_to_string(&events_path).expect("event log exists");
    let mut saw_fleet_start = false;
    let mut saw_fleet_end = false;
    let mut worker_streams = std::collections::BTreeSet::new();
    for line in text.lines() {
        let event = gauntlet_telemetry::json::parse(line).expect("every line parses");
        assert_eq!(
            event.get("schema").and_then(|s| s.as_str()),
            Some("gauntlet-events-v1")
        );
        match event.get("event").and_then(|e| e.as_str()) {
            Some("fleet_start") => saw_fleet_start = true,
            Some("fleet_end") => saw_fleet_end = true,
            _ => {}
        }
        if let Some(worker) = event.get("worker").and_then(|w| w.as_u64()) {
            worker_streams.insert(worker);
        }
    }
    assert!(saw_fleet_start && saw_fleet_end, "fleet framing present");
    assert!(
        !worker_streams.is_empty(),
        "worker events were relayed with provenance"
    );
    let _ = std::fs::remove_file(&events_path);
}
