//! Differential integration tests: the symbolic semantics, the compiled
//! program, and the concrete targets must all agree on generated inputs.
//!
//! This is the cross-check that keeps Gauntlet's oracle honest: the symbolic
//! interpreter (used for translation validation and expected-output
//! computation) and the concrete execution engine (used as the simulated
//! switch) are independent implementations, so agreement on random programs
//! is strong evidence that neither is skewing the bug counts.

use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_symbolic::{generate_tests, TestGenOptions};
use p4c::Compiler;
use targets::{Bmv2Target, Target};

/// For random programs: generate tests from the *input* program, compile
/// for the BMv2 target (which runs the same reference pipeline), and replay
/// the tests on the compiled artifact.  Everything must pass.
#[test]
fn symbolic_expectations_match_concrete_execution_of_the_compiled_program() {
    let target = Bmv2Target::new();
    let options = TestGenOptions {
        max_tests: 4,
        ..TestGenOptions::default()
    };
    let mut checked_programs = 0;
    for seed in 100..112 {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        let Ok(tests) = generate_tests(&program, &options) else {
            continue;
        };
        if tests.is_empty() {
            continue;
        }
        let artifact = target
            .compile(&program)
            .expect("reference compiler accepts");
        let report = target.run(&artifact, &tests);
        assert!(
            report.mismatches.is_empty(),
            "seed {seed}: compiled program disagrees with symbolic expectation: {:#?}\n{}",
            report.mismatches,
            p4_ir::print_program(&program)
        );
        checked_programs += 1;
    }
    assert!(
        checked_programs >= 8,
        "too few programs exercised ({checked_programs})"
    );
}

/// Skipping an optimization pass (Different Optimization Levels, §2.1) must
/// not change semantics: the program compiled with and without
/// `StrengthReduction` validates as equivalent.
#[test]
fn omitting_optimization_passes_preserves_semantics() {
    for seed in 200..205 {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        let full = Compiler::reference()
            .compile(&program)
            .expect("compiles")
            .program;
        let mut reduced_compiler = Compiler::reference();
        reduced_compiler.remove_pass("StrengthReduction");
        reduced_compiler.remove_pass("LocalCopyPropagation");
        let reduced = reduced_compiler
            .compile(&program)
            .expect("compiles")
            .program;
        let verdict = p4_symbolic::check_equivalence(&full, &reduced).expect("comparable");
        assert!(
            verdict.is_equal(),
            "seed {seed}: omitting optimizations changed semantics\n{}",
            p4_ir::print_program(&program)
        );
    }
}

/// The parser and the ToP4 printer round-trip the output of every compiler
/// stage for the Figure-5 trigger programs as well.
#[test]
fn trigger_programs_survive_the_full_pipeline_roundtrip() {
    for bug in gauntlet_core::SeededBug::catalogue() {
        let program = bug.trigger_program();
        let printed = p4_ir::print_program(&program);
        let reparsed =
            p4_parser::parse_program(&printed).unwrap_or_else(|e| panic!("{}: {e}", bug.name()));
        assert_eq!(p4_ir::print_program(&reparsed), printed, "{}", bug.name());
        // And the type checker accepts the re-parsed form.
        assert!(
            p4_check::check_program(&reparsed).is_empty(),
            "{}",
            bug.name()
        );
    }
}

/// Generated tofino-flavoured programs compile on the simulated Tofino back
/// end (or are rejected with a proper restriction diagnostic, never a crash).
#[test]
fn tofino_backend_never_crashes_on_generated_tna_programs() {
    let backend = targets::TofinoBackend::new();
    for seed in 300..315 {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tofino(), seed);
        let program = generator.generate();
        match backend.compile(&program) {
            Ok(_) => {}
            Err(error) => assert!(
                !error.is_crash(),
                "seed {seed}: correct Tofino back end crashed: {error}"
            ),
        }
    }
}

/// Every builtin registry target stays silent on random programs when
/// unseeded: compile + replay through the uniform `Target` interface must
/// produce no findings on a correct toolchain (the §5.2 false-alarm
/// discipline, extended to all registered back ends).
#[test]
fn registry_targets_produce_no_false_alarms_on_random_programs() {
    let gauntlet = gauntlet_core::Gauntlet::default();
    let registry = targets::TargetRegistry::builtin();
    for name in registry.names() {
        let target = registry.build(&name).expect("builtin");
        for seed in 400..408 {
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
            let program = generator.generate();
            let outcome = gauntlet.check_target(&*target, &program);
            assert!(
                outcome.clean,
                "seed {seed}: false alarm on correct `{name}`: {:#?}\n{}",
                outcome.reports,
                p4_ir::print_program(&program)
            );
        }
    }
}
